//! Offline drop-in subset of the `parking_lot` API, backed by
//! `std::sync`. The build environment has no crates.io access, so the
//! workspace vendors the tiny slice of the API it actually uses: a
//! `Mutex` with a `const` constructor and a poison-free `lock()`.

use std::sync::PoisonError;

/// A mutual-exclusion lock with parking_lot's ergonomics: `const new`
/// and a `lock()` that returns the guard directly (poisoning is
/// swallowed, matching parking_lot's behaviour of not poisoning).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex (usable in `static` initializers).
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static GLOBAL: Mutex<Option<u32>> = Mutex::new(None);

    #[test]
    fn const_static_and_lock() {
        let mut g = GLOBAL.lock();
        *g = Some(7);
        drop(g);
        assert_eq!(*GLOBAL.lock(), Some(7));
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let _g = m.lock();
        assert!(m.try_lock().is_none());
    }
}
