//! Offline drop-in subset of the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of criterion's API its bench targets use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`, [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Semantics:
//! - Under `cargo bench` (cargo passes `--bench` to the target) each
//!   routine is timed for `sample_size` samples and a median/min/max
//!   line is printed.
//! - Under `cargo test` (no `--bench` argument) every benchmark is
//!   skipped so the test suite never pays for expensive bench bodies.

use std::time::{Duration, Instant};

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion {
            sample_size: 10,
            bench_mode,
        }
    }
}

impl Criterion {
    /// Override the number of samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one routine under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, self.bench_mode, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            bench_mode: self.bench_mode,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    bench_mode: bool,
}

impl BenchmarkGroup {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one routine under `group/id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.bench_mode, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F>(id: &str, samples: usize, bench_mode: bool, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if !bench_mode {
        println!("{id:<40} skipped (run with `cargo bench`)");
        return;
    }
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
    };
    for _ in 0..samples {
        f(&mut b);
    }
    b.samples.sort_unstable();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    let min = b.samples.first().copied().unwrap_or_default();
    let max = b.samples.last().copied().unwrap_or_default();
    println!(
        "{id:<40} median {:>12?}  (min {:?}, max {:?}, n={})",
        median,
        min,
        max,
        b.samples.len()
    );
}

/// Times a single routine; one `iter` call contributes one sample.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Run `routine` once and record its wall-clock time as a sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        drop(std::hint::black_box(out));
    }
}

/// Prevent the compiler from optimizing a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate the bench binary's `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_skips_routine() {
        let mut c = Criterion {
            sample_size: 10,
            bench_mode: false,
        };
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(!ran, "routines must not run under cargo test");
    }

    #[test]
    fn bench_mode_collects_samples() {
        let mut c = Criterion {
            sample_size: 3,
            bench_mode: true,
        };
        let mut calls = 0;
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("count", |b| {
            calls += 1;
            b.iter(|| black_box(2) * 2);
        });
        g.finish();
        assert_eq!(calls, 3);
    }
}
