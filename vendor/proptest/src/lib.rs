//! Offline drop-in subset of the `proptest` property-testing framework.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of proptest's API its test suites use: the
//! [`proptest!`] macro, range / tuple / regex-string / `prop_oneof!`
//! strategies, `proptest::collection::vec`, `any::<T>()`, `prop_map`,
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Generation is deterministic: each test derives its RNG stream from a
//! hash of the test name, so failures reproduce across runs.

pub mod collection;
pub mod strategy;

/// Generated cases per property (smaller than upstream's 256 to keep
/// the suite fast; streams are deterministic so coverage is stable).
pub const CASES: u32 = 64;

/// Outcome of one generated case: rejected by `prop_assume!`, or failed
/// an assertion.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not meet an assumption; it is skipped, not failed.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

/// Deterministic RNG used for value generation (splitmix64 stream).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derive a stream from a test name, so each property test draws
    /// reproducible values independent of other tests.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The prelude every property-test module imports.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
    pub use crate::{TestCaseError, TestRng};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`](crate::CASES) generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut _rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut _cases: u32 = 0;
                let mut _attempts: u32 = 0;
                while _cases < $crate::CASES {
                    _attempts += 1;
                    if _attempts > $crate::CASES * 20 {
                        panic!("prop_assume! rejected too many cases");
                    }
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut _rng);)+
                    let mut _case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    match _case() {
                        ::std::result::Result::Ok(()) => _cases += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed at case {}: {}",
                                   stringify!($name), _cases, msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} == {} (left: {:?}, right: {:?})",
                        stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Skip (not fail) the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}
