//! Value-generation strategies: ranges, tuples, maps, unions, and a
//! small regex-subset string generator.

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Generate any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy that always yields one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Box a strategy for use in heterogeneous collections ([`Union`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build a union over the given arms (must be non-empty).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty integer range strategy");
                let off = rng.below(span as u64) as i128;
                ((self.start as i128) + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                assert!(span > 0, "empty integer range strategy");
                let off = rng.below(span as u64) as i128;
                ((*self.start() as i128) + off) as $t
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Finite, sign-balanced, spanning several magnitudes.
                ((rng.next_u64() as i64) as $t) * 1e-6
            }
        }
    )*};
}

float_strategies!(f32, f64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategies {
    ($(($($n:tt $s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
);

/// String literals act as regex-subset strategies, as in upstream
/// proptest. Supported syntax: literal characters, `.` (any printable
/// ASCII), `[a-z ]` character classes with ranges, and `{m}` / `{m,n}`
/// repetition suffixes.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Clone, Debug)]
enum Atom {
    Dot,
    Class(Vec<char>),
    Literal(char),
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Dot,
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated [..] in pattern {pattern:?}"));
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let lo = prev.take().expect("range start");
                            let hi = chars.next().expect("range end");
                            for v in (lo as u32)..=(hi as u32) {
                                set.extend(char::from_u32(v));
                            }
                        }
                        c => {
                            if let Some(p) = prev.replace(c) {
                                set.push(p);
                            }
                        }
                    }
                }
                set.extend(prev);
                assert!(
                    !set.is_empty(),
                    "empty character class in pattern {pattern:?}"
                );
                Atom::Class(set)
            }
            '\\' => Atom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("trailing backslash in pattern {pattern:?}")),
            ),
            c => Atom::Literal(c),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("repeat min"),
                    n.trim().parse::<usize>().expect("repeat max"),
                ),
                None => {
                    let n = spec.trim().parse::<usize>().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            match &atom {
                Atom::Dot => out.push((0x20 + rng.below(0x5f) as u8) as char),
                Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                Atom::Literal(c) => out.push(*c),
            }
        }
    }
    out
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3u64..17).generate(&mut r);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut r);
            assert!((-2.0..2.0).contains(&f));
            let i = (-500i64..500).generate(&mut r);
            assert!((-500..500).contains(&i));
        }
    }

    #[test]
    fn regex_subset_patterns() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z ]{0,40}".generate(&mut r);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
            let t = ".{0,24}".generate(&mut r);
            assert!(t.len() <= 24);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
            let w = "[a-z]{5,12}".generate(&mut r);
            assert!((5..=12).contains(&w.len()));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut r = rng();
        let u = crate::prop_oneof![
            (0u64..10).prop_map(|v| v * 2),
            (100u64..110).prop_map(|v| v),
        ];
        for _ in 0..100 {
            let v = u.generate(&mut r);
            assert!(v < 20 || (100..110).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut r = rng();
        for _ in 0..100 {
            let v = crate::collection::vec(0u32..5, 2..9).generate(&mut r);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
