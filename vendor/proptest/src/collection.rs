//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

/// Generate vectors whose elements come from `elem` and whose length is
/// uniform in `size`.
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(
        size.start < size.end,
        "empty size range for collection::vec"
    );
    VecStrategy { elem, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}
