#!/usr/bin/env bash
# Cross-check API.md against the routes the daemon actually registers.
#
# The daemon is the source of truth: `pwnd serve --print-routes` prints
# one "METHOD /pattern" line per registered route. API.md must document
# exactly that set — each endpoint as a `### `METHOD /pattern`` heading.
# A documented-but-unregistered endpoint (or the reverse) fails CI.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
bin="${PWND_BIN:-$repo/target/release/pwnd}"
if [ ! -x "$bin" ]; then
    bin="$repo/target/debug/pwnd"
fi
if [ ! -x "$bin" ]; then
    echo "check-api-docs: no pwnd binary; run 'cargo build' first (or set PWND_BIN)" >&2
    exit 1
fi

registered="$("$bin" serve --print-routes | LC_ALL=C sort)"
documented="$(grep -E '^### `(GET|HEAD|POST|PUT|DELETE) /' "$repo/API.md" \
    | sed -E 's/^### `([^`]*)`.*/\1/' | LC_ALL=C sort)"

if diff <(printf '%s\n' "$registered") <(printf '%s\n' "$documented") >/dev/null; then
    count="$(printf '%s\n' "$registered" | wc -l | tr -d ' ')"
    echo "check-api-docs: API.md documents all $count registered routes"
else
    echo "check-api-docs: API.md drifts from the registered routes" >&2
    echo "--- registered (pwnd serve --print-routes)  +++ documented (API.md headings)" >&2
    diff <(printf '%s\n' "$registered") <(printf '%s\n' "$documented") >&2 || true
    exit 1
fi
