//! Cross-crate tests of the fault-injection layer: faults-off runs stay
//! byte-identical, faulted runs are reproducible, and the degraded
//! coverage they cause is surfaced all the way up in the analysis
//! report.

use pwnd::{Experiment, ExperimentConfig, FaultProfile};

/// The acceptance bar for the fault layer: with `FaultProfile::none()`
/// (the default), the published dataset must be byte-for-byte what it
/// was before the layer existed. Two independent runs of the default
/// config prove the plumbing (plan compilation, seq stamping, gap
/// bookkeeping) adds nothing observable.
#[test]
fn default_config_export_is_stable_and_gap_free() {
    let a = Experiment::new(ExperimentConfig::quick(7)).run();
    let b = Experiment::new(ExperimentConfig::quick(7)).run();
    let json = a.dataset_json();
    assert_eq!(json, b.dataset_json());
    // The legacy JSON shape: no coverage, no gap records.
    assert!(!json.contains("\"coverage\""));
    assert!(!json.contains("\"gaps\""));
    assert_eq!(a.ground_truth.notifications_lost, 0);
    assert_eq!(a.ground_truth.duplicate_notifications, 0);
    assert_eq!(a.ground_truth.monitoring_gaps, 0);
}

#[test]
fn heavy_faults_are_reproducible_and_degrade_coverage() {
    let mut cfg = ExperimentConfig::quick(7);
    cfg.faults.profile = FaultProfile::heavy();
    cfg.faults.confirm_failures = 3;

    let a = Experiment::new(cfg.clone()).run();
    let b = Experiment::new(cfg).run();
    // Same seed + same profile → identical artifact, faults included.
    assert_eq!(a.dataset_json(), b.dataset_json());

    // The fault layer actually bit: notifications were lost, some were
    // redelivered and deduplicated, and blind windows were recorded.
    assert!(a.ground_truth.notifications_lost > 0);
    assert!(a.ground_truth.duplicate_notifications > 0);
    assert!(a.ground_truth.monitoring_gaps > 0);
    assert_eq!(a.dataset.gaps.len(), a.ground_truth.monitoring_gaps);

    // Every account carries a coverage figure in [0, 1], and the gaps
    // pushed at least one below full coverage.
    let covs: Vec<f64> = a
        .dataset
        .accounts
        .iter()
        .map(|r| r.coverage.expect("faulted run reports coverage"))
        .collect();
    assert!(covs.iter().all(|c| (0.0..=1.0).contains(c)));
    assert!(covs.iter().any(|c| *c < 1.0));

    // The degradation reaches the rendered report.
    let analysis = a.analysis();
    let stats = analysis
        .coverage
        .as_ref()
        .expect("analysis surfaces coverage for faulted runs");
    assert!(stats.mean < 1.0);
    assert!(stats.degraded_accounts > 0);
    let text = analysis.render();
    assert!(text.contains("Monitoring coverage"));
}

/// Fault-free analysis keeps its legacy shape: no coverage section.
#[test]
fn fault_free_report_has_no_coverage_section() {
    let out = Experiment::new(ExperimentConfig::quick(7)).run();
    let analysis = out.analysis();
    assert!(analysis.coverage.is_none());
    assert!(!analysis.render().contains("Monitoring coverage"));
}
