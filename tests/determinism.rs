//! Cross-run determinism regression gate: two *fresh* experiment runs
//! from the same seed and config must produce byte-identical artifacts.
//! This is the property the pwnd-lint rules exist to protect — if a
//! wall-clock read, hash-order iteration, or ambient RNG draw ever
//! sneaks past the linter, this test is the backstop that catches the
//! divergence.

use pwnd::{Experiment, ExperimentConfig, RunOutput};

fn fresh_run(seed: u64) -> RunOutput {
    Experiment::new(ExperimentConfig::quick(seed)).run()
}

#[test]
fn same_seed_runs_export_byte_identical_json() {
    let a = fresh_run(1701);
    let b = fresh_run(1701);
    assert_eq!(a.dataset_json(), b.dataset_json());
}

#[test]
fn same_seed_runs_render_byte_identical_analysis() {
    let a = fresh_run(77).analysis().render();
    let b = fresh_run(77).analysis().render();
    assert_eq!(a, b);
}

#[test]
fn different_seeds_actually_diverge() {
    // Guards against the trivial failure mode where "deterministic"
    // means "constant": the seed must still steer the run.
    let a = fresh_run(1).dataset_json();
    let b = fresh_run(2).dataset_json();
    assert_ne!(a, b);
}
