//! End-to-end tests of the breach-intelligence query daemon (`pwnd
//! serve`): every versioned endpoint is byte-stable across server
//! restarts, `/v1/stats` agrees exactly with the offline `pwnd report`
//! aggregates, concurrent clients never observe a 5xx, and the token
//! bucket answers overload with `429` + `Retry-After`.

use pwnd::core::fleet::FleetConfig;
use pwnd::serve::loadgen::{self, LoadgenOptions};
use pwnd::serve::{QueryIndex, RateLimit, ServeOptions, Server, ROUTES};
use pwnd::store::{run_fleet_store, store_overview};
use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

/// A fresh scratch directory under the system temp dir, unique per
/// test name so concurrently running tests never collide.
fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pwnd-serve-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// One parsed HTTP response: status code, raw header lines, body.
struct Response {
    status: u16,
    headers: Vec<String>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        let prefix = format!("{}:", name.to_ascii_lowercase());
        self.headers
            .iter()
            .find(|h| h.to_ascii_lowercase().starts_with(&prefix))
            .map(|h| h[prefix.len()..].trim())
    }
}

/// Issue one `GET` (or another method) over a fresh connection.
fn request(server: &Server, method: &str, path: &str) -> Response {
    let mut stream = TcpStream::connect(server.addr()).expect("connect to the daemon");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read full response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("unparseable status line: {status_line}"));
    Response {
        status,
        headers: lines.map(str::to_owned).collect(),
        body: body.to_owned(),
    }
}

fn get(server: &Server, path: &str) -> Response {
    request(server, "GET", path)
}

/// Bind a server over `index` on an ephemeral port with `threads`
/// workers and no rate limit.
fn spawn(index: &Arc<QueryIndex>, threads: usize) -> Server {
    let opts = ServeOptions {
        threads,
        ..ServeOptions::default()
    };
    Server::bind("127.0.0.1:0", Arc::clone(index), opts).expect("bind ephemeral port")
}

#[test]
fn responses_are_byte_stable_across_restarts_and_match_offline_report() {
    let dir = test_dir("stable");
    run_fleet_store(&FleetConfig::new(23, 60, 1), &dir).unwrap();
    let index = Arc::new(QueryIndex::from_store(&dir).unwrap());

    // One concrete path per route pattern, plus a sweep over every
    // account and every populated range bucket.
    let mut paths = vec![
        "/v1/healthz".to_owned(),
        "/v1/stats".to_owned(),
        "/v1/outlets".to_owned(),
    ];
    for id in index.account_ids() {
        paths.push(format!("/v1/account/{id}/timeline"));
        paths.push(format!("/v1/account/{id}/accesses"));
    }
    for prefix in index.range_prefixes() {
        paths.push(format!("/v1/range/{prefix}"));
    }
    assert!(paths.len() > ROUTES.len(), "sweep covers every route");

    let first = spawn(&index, 4);
    let baseline: Vec<String> = paths.iter().map(|p| get(&first, p).body).collect();
    for (path, body) in paths.iter().zip(&baseline) {
        assert!(body.ends_with('\n'), "{path}: body is newline-terminated");
        // Re-asking the same server is trivially stable.
        assert_eq!(&get(&first, path).body, body, "{path} drifted in-process");
    }
    first.shutdown();

    // A brand-new process-equivalent (fresh index from the same bytes,
    // fresh server) must reproduce every body byte for byte.
    let reloaded = Arc::new(QueryIndex::from_store(&dir).unwrap());
    let second = spawn(&reloaded, 4);
    for (path, body) in paths.iter().zip(&baseline) {
        assert_eq!(
            &get(&second, path).body,
            body,
            "{path} drifted across restart"
        );
    }

    // `/v1/stats` repeats the offline reporter's numbers exactly.
    let offline = store_overview(&dir).unwrap();
    let stats = get(&second, "/v1/stats").body;
    for (key, value) in [
        ("total_accesses", offline.total_accesses as u64),
        ("emails_opened", offline.emails_opened),
        ("emails_sent", offline.emails_sent),
        ("drafts_created", offline.drafts_created),
        ("accounts_accessed", offline.accounts_accessed as u64),
        ("accounts_blocked", offline.accounts_blocked as u64),
        ("accounts_hijacked", offline.accounts_hijacked as u64),
    ] {
        let needle = format!("\"{key}\": {value}");
        assert!(
            stats.contains(&needle),
            "stats is missing `{needle}`:\n{stats}"
        );
    }
    second.shutdown();

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn error_envelopes_cover_bad_ids_unknown_routes_and_methods() {
    let dir = test_dir("errors");
    run_fleet_store(&FleetConfig::new(5, 20, 1), &dir).unwrap();
    let index = Arc::new(QueryIndex::from_store(&dir).unwrap());
    let server = spawn(&index, 4);

    let not_a_number = get(&server, "/v1/account/zero/timeline");
    assert_eq!(not_a_number.status, 400);
    assert!(not_a_number
        .body
        .contains("\"status\": \"invalid_account\""));

    let unknown = get(&server, "/v1/account/999999/timeline");
    assert_eq!(unknown.status, 404);
    assert!(unknown.body.contains("\"status\": \"unknown_account\""));

    let lowercase = get(&server, "/v1/range/8b3da");
    assert_eq!(lowercase.status, 400, "range prefixes are uppercase hex");
    assert!(lowercase.body.contains("\"status\": \"invalid_prefix\""));

    let unmatched = get(&server, "/v2/stats");
    assert_eq!(unmatched.status, 404);
    assert!(unmatched.body.contains("\"status\": \"not_found\""));

    let post = request(&server, "POST", "/v1/stats");
    assert_eq!(post.status, 405);
    assert_eq!(post.header("Allow"), Some("GET"));

    // An unknown-but-valid prefix is an empty bucket, not an error: the
    // range endpoint must not leak which prefixes exist.
    let empty = get(&server, "/v1/range/00000");
    assert_eq!(empty.status, 200);
    assert!(empty.body.contains("\"count\": 0"), "{}", empty.body);

    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_see_no_server_errors() {
    let dir = test_dir("concurrent");
    run_fleet_store(&FleetConfig::new(11, 40, 1), &dir).unwrap();
    let index = Arc::new(QueryIndex::from_store(&dir).unwrap());
    // One worker per client: each keep-alive connection owns a worker
    // for its lifetime, so the pool must be at least as wide.
    let server = spawn(&index, 6);

    let paths = loadgen::query_mix(&index, 8);
    let opts = LoadgenOptions {
        clients: 6,
        requests: 600,
    };
    let report = loadgen::run(server.addr(), &paths, &opts).unwrap();
    assert_eq!(report.server_errors, 0, "statuses: {:?}", report.statuses);
    assert_eq!(report.statuses.get(&200).copied(), Some(600));
    server.shutdown();

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn token_bucket_answers_overload_with_429_and_retry_after() {
    let dir = test_dir("ratelimit");
    run_fleet_store(&FleetConfig::new(3, 20, 1), &dir).unwrap();
    let index = Arc::new(QueryIndex::from_store(&dir).unwrap());
    let opts = ServeOptions {
        threads: 4,
        rate: Some(RateLimit::per_second(2)),
        ..ServeOptions::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::clone(&index), opts).unwrap();

    // Burst well past the bucket over a single keep-alive connection —
    // no process-spawn latency to refill the bucket behind our back.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut ok = 0u32;
    let mut limited = 0u32;
    let mut raw = Vec::new();
    for _ in 0..10 {
        write!(stream, "GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    }
    write!(
        stream,
        "GET /v1/healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    for head in text.split("HTTP/1.1 ").skip(1) {
        match head.split_whitespace().next() {
            Some("200") => ok += 1,
            Some("429") => {
                limited += 1;
                assert!(
                    head.to_ascii_lowercase().contains("retry-after:"),
                    "429 without Retry-After:\n{head}"
                );
                assert!(head.contains("\"status\": \"rate_limited\""), "{head}");
            }
            other => panic!("unexpected status {other:?}"),
        }
    }
    assert!(ok >= 1, "the burst allowance admits at least one request");
    assert!(
        limited >= 1,
        "11 instant requests at 2 req/s must trip the limiter"
    );
    server.shutdown();

    let _ = fs::remove_dir_all(&dir);
}
