//! Cross-crate tests of the monitoring methodology's censoring semantics
//! and the experiment's configuration toggles.

use pwnd::analysis::tables::overview;
use pwnd::{Experiment, ExperimentConfig};

#[test]
fn observed_accesses_are_a_subset_of_attempted() {
    let out = Experiment::new(ExperimentConfig::quick(7)).run();
    assert!(out.dataset.accesses.len() <= out.ground_truth.attempted_accesses);
    // Censoring is material (hijacks and blocks lock accounts): at least
    // a few attempted accesses must have been lost.
    assert!(out.dataset.accesses.len() < out.ground_truth.attempted_accesses);
}

#[test]
fn login_filter_ablation_suppresses_most_accesses() {
    // §3.4: "most accesses would be blocked if Google did not disable the
    // login filters." Same seed, both arms.
    let base = Experiment::new(ExperimentConfig::quick(11)).run();
    let mut cfg = ExperimentConfig::quick(11);
    cfg.login_filter_enabled = true;
    let filtered = Experiment::new(cfg).run();
    let a = base.dataset.accesses.len() as f64;
    let b = filtered.dataset.accesses.len() as f64;
    assert!(
        b < a * 0.5,
        "filter-on accesses {b} should be under half of filter-off {a}"
    );
}

#[test]
fn decoy_seeding_adds_bait_that_attackers_find() {
    let mut cfg = ExperimentConfig::quick(13);
    cfg.seed_decoys = true;
    let out = Experiment::new(cfg).run();
    // The decoys are in the corpus...
    assert!(out.corpus_text.contains("Routing number"));
    // ...and gold diggers searching "account"/"salary"/"password" open
    // them (§5 future work: decoys widen the observable search surface).
    let decoy_opened = out
        .dataset
        .opened_texts
        .iter()
        .any(|t| t.contains("Ref: dcy") || t.contains("Reference: dcy"));
    assert!(decoy_opened, "no decoy was ever opened");
}

#[test]
fn without_case_studies_no_bitcoin_appears() {
    let mut cfg = ExperimentConfig::quick(17);
    cfg.case_studies = false;
    let out = Experiment::new(cfg).run();
    let analysis = out.analysis();
    // No blackmailer → no bitcoin anywhere in the opened set.
    assert!(analysis.tfidf.get("bitcoin").is_none());
    assert!(!out
        .dataset
        .opened_texts
        .iter()
        .any(|t| t.contains("bitcoin")));
}

#[test]
fn hijack_detection_matches_ground_truth_direction() {
    let out = Experiment::new(ExperimentConfig::quick(19)).run();
    let detected: Vec<u32> = out
        .dataset
        .accounts
        .iter()
        .filter(|r| r.hijack_detected_secs.is_some())
        .map(|r| r.account)
        .collect();
    // Every detected hijack is a real hijack (no false positives — the
    // scraper's password stopped working for a reason).
    for acct in &detected {
        assert!(
            out.ground_truth.hijacked_accounts.contains(acct),
            "false hijack detection on account {acct}"
        );
    }
    // And detection catches nearly all of them (the scraper retries every
    // few hours).
    assert!(detected.len() * 10 >= out.ground_truth.hijacked_accounts.len() * 9);
}

#[test]
fn heartbeat_block_inference_is_mostly_accurate() {
    let out = Experiment::new(ExperimentConfig::quick(23)).run();
    let blocked_gt: Vec<u32> = out
        .ground_truth
        .blocked_accounts
        .iter()
        .map(|&(a, _)| a)
        .collect();
    let inferred: Vec<u32> = out
        .dataset
        .accounts
        .iter()
        .filter(|r| r.block_detected_secs.is_some())
        .map(|r| r.account)
        .collect();
    // Heartbeat silence may also come from a deleted script, so inferred
    // blocks are allowed to slightly overshoot, but every real block must
    // be seen (its heartbeats really did stop) unless it happened within
    // the final two days of the window.
    for &(acct, day) in &out.ground_truth.blocked_accounts {
        if day < (out.dataset.accounts.len() as f64).min(118.0) - 3.0 {
            assert!(
                inferred.contains(&acct),
                "missed block on account {acct} (day {day})"
            );
        }
    }
    let false_positives = inferred.iter().filter(|a| !blocked_gt.contains(a)).count();
    assert!(
        false_positives <= out.ground_truth.scripts_deleted.len() + 1,
        "too many spurious block detections: {false_positives}"
    );
}

#[test]
fn deterministic_dataset_and_report() {
    let a = Experiment::new(ExperimentConfig::quick(29)).run();
    let b = Experiment::new(ExperimentConfig::quick(29)).run();
    assert_eq!(a.dataset_json(), b.dataset_json());
    assert_eq!(a.analysis().render(), b.analysis().render());
}

#[test]
fn shorter_windows_observe_fewer_accesses() {
    let mut short = ExperimentConfig::quick(31);
    short.observation_days = 40;
    let mut long = ExperimentConfig::quick(31);
    long.observation_days = 120;
    let s = Experiment::new(short).run();
    let l = Experiment::new(long).run();
    assert!(
        s.dataset.accesses.len() < l.dataset.accesses.len(),
        "short {} vs long {}",
        s.dataset.accesses.len(),
        l.dataset.accesses.len()
    );
}

#[test]
fn overview_outlet_accounts_bounded_by_plan() {
    let out = Experiment::new(ExperimentConfig::quick(37)).run();
    let ov = overview(&out.dataset);
    assert!(ov.accessed_by_outlet.get("paste").copied().unwrap_or(0) <= 50);
    assert!(ov.accessed_by_outlet.get("forum").copied().unwrap_or(0) <= 30);
    assert!(ov.accessed_by_outlet.get("malware").copied().unwrap_or(0) <= 20);
}
