//! End-to-end integration tests: a full (quick-config) experiment run,
//! checked across every crate boundary.

use pwnd::analysis::figures;
use pwnd::analysis::tables::{origin_stats, overview, table1};
use pwnd::leak::plan::OutletKind;
use pwnd::{Experiment, ExperimentConfig, RunOutput};
use std::sync::OnceLock;

/// One shared quick run — the assertions below all read from it.
fn run() -> &'static RunOutput {
    static RUN: OnceLock<RunOutput> = OnceLock::new();
    RUN.get_or_init(|| Experiment::new(ExperimentConfig::quick(42)).run())
}

#[test]
fn table1_groups_are_reconstructed_from_the_dataset() {
    let t = table1(&run().dataset);
    let counts: Vec<usize> = t.iter().map(|r| r.accounts).collect();
    assert_eq!(counts, vec![30, 20, 10, 20, 20]);
}

#[test]
fn every_outlet_received_accesses() {
    let ov = overview(&run().dataset);
    for outlet in ["paste", "forum", "malware"] {
        assert!(
            ov.accesses_by_outlet.get(outlet).copied().unwrap_or(0) > 0,
            "no accesses for {outlet}"
        );
    }
}

#[test]
fn dataset_never_contains_monitoring_traffic() {
    // The paper filters its own infrastructure's accesses (§4.1); no
    // dataset row may come from the infra block or resolve to the infra
    // city without being a Tor exit.
    for a in &run().dataset.accesses {
        let ip: std::net::Ipv4Addr = a.ip.parse().expect("valid ip");
        assert!(
            !pwnd::net::ip::AddressPlan::is_infra(ip),
            "infra access leaked into dataset: {a:?}"
        );
        if a.has_location_row && !a.via_tor {
            assert_ne!(a.city, pwnd::net::geolocate::INFRA_CITY, "{a:?}");
        }
    }
}

#[test]
fn no_email_ever_left_the_sinkhole() {
    // Every attacker-sent message must be captured, none delivered: the
    // ethics containment of §3.4.
    let out = run();
    let sent_observed: u64 = out.dataset.accesses.iter().map(|a| a.sent as u64).sum();
    assert!(out.ground_truth.sinkholed_messages as u64 >= sent_observed);
}

#[test]
fn hijacked_accounts_stop_contributing_after_detection() {
    // Censoring: no access on a hijacked account may have a *scraped
    // location row* first seen after the hijack detection (script
    // notifications may continue; page scraping cannot).
    let out = run();
    for rec in &out.dataset.accounts {
        let Some(ht) = rec.hijack_detected_secs else {
            continue;
        };
        for a in out
            .dataset
            .accesses
            .iter()
            .filter(|a| a.account == rec.account)
        {
            if a.has_location_row {
                assert!(
                    a.first_seen_secs <= ht,
                    "account {} scraped a row after hijack detection",
                    rec.account
                );
            }
        }
    }
}

#[test]
fn malware_accesses_are_never_destructive() {
    // Figure 1: the malware column has no hijackers and no spammers.
    let out = run();
    for a in out.dataset.accesses_for_outlet("malware") {
        let c = pwnd::analysis::classify(a);
        assert!(!c.hijacker, "malware hijacker: {a:?}");
        assert!(!c.spammer, "malware spammer: {a:?}");
    }
}

#[test]
fn malware_accesses_are_tor_and_ua_cloaked() {
    let out = run();
    let malware: Vec<_> = out
        .dataset
        .accesses_for_outlet("malware")
        .filter(|a| a.has_location_row)
        .collect();
    assert!(!malware.is_empty());
    let tor = malware.iter().filter(|a| a.via_tor).count();
    assert!(
        tor as f64 / malware.len() as f64 > 0.9,
        "{tor}/{}",
        malware.len()
    );
    assert!(malware.iter().all(|a| a.browser == "Unknown"));
}

#[test]
fn russian_paste_accounts_stay_silent_for_two_months() {
    let out = run();
    // Accounts leaked on Russian paste sites: no access before day 60.
    let russian_accounts: Vec<u32> = out
        .leaks
        .iter()
        .filter(|l| l.russian)
        .map(|l| l.account)
        .collect();
    assert_eq!(russian_accounts.len(), 10);
    for a in &out.dataset.accesses {
        if russian_accounts.contains(&a.account) {
            let rec = out.dataset.account_record(a.account).unwrap();
            let days = (a.first_seen_secs - rec.leaked_at_secs) as f64 / 86_400.0;
            assert!(days > 60.0, "russian account accessed at day {days}");
        }
    }
}

#[test]
fn blackmailer_vocabulary_reaches_table2() {
    let analysis = run().analysis();
    let bitcoin = analysis.tfidf.get("bitcoin").expect("bitcoin in table");
    assert_eq!(
        bitcoin.tfidf_a, 0.0,
        "bitcoin must be absent from the corpus"
    );
    assert!(bitcoin.tfidf_r > 0.0, "bitcoin must appear in opened mail");
    // And the searched list is dominated by sensitive terms.
    let top: Vec<&str> = analysis
        .tfidf
        .top_searched(10)
        .iter()
        .map(|t| t.term.as_str())
        .collect();
    let sensitive_hits = top
        .iter()
        .filter(|t| {
            [
                "bitcoin",
                "payment",
                "account",
                "family",
                "seller",
                "below",
                "listed",
                "results",
                "banking",
                "password",
                "salary",
                "invoice",
                "statement",
                "bitcoins",
                "localbitcoins",
                "wallet",
            ]
            .contains(*t)
        })
        .count();
    assert!(sensitive_hits >= 7, "top searched: {top:?}");
}

#[test]
fn cvm_pipeline_runs_on_fig6_vectors() {
    let analysis = run().analysis();
    assert_eq!(analysis.fig6.len(), 8);
    for outcome in &analysis.cvm {
        assert!(outcome.p_value.is_finite());
        assert!((0.0..=1.0).contains(&outcome.p_value));
    }
}

#[test]
fn overview_is_consistent_with_raw_records() {
    let out = run();
    let ov = overview(&out.dataset);
    assert_eq!(ov.total_accesses, out.dataset.accesses.len());
    let per_outlet: usize = ov.accesses_by_outlet.values().sum();
    assert_eq!(per_outlet, ov.total_accesses);
    assert!(ov.accounts_accessed <= 100);
    assert!(ov.accounts_hijacked <= 100);
}

#[test]
fn origin_stats_blacklist_subset_of_accesses() {
    let out = run();
    let stats = origin_stats(&out.dataset, Some(&out.blacklist));
    assert!(stats.blacklisted_ips <= out.dataset.accesses.len());
    assert!(stats.tor_total <= out.dataset.accesses.len());
    // Tor exit addresses never appear in the blacklist sample (we list
    // residential infections only).
    for a in &out.dataset.accesses {
        if a.via_tor {
            let ip: std::net::Ipv4Addr = a.ip.parse().unwrap();
            assert!(!out.blacklist.is_ever_listed(ip));
        }
    }
}

#[test]
fn leak_plan_covers_every_account_exactly_once() {
    let out = run();
    let mut accounts: Vec<u32> = out.leaks.iter().map(|l| l.account).collect();
    accounts.sort_unstable();
    accounts.dedup();
    assert_eq!(accounts.len(), 100);
    // Outlet labels in leak records match the dataset's account records.
    for leak in &out.leaks {
        let rec = out.dataset.account_record(leak.account).unwrap();
        assert_eq!(rec.outlet, leak.kind.label());
    }
    // Counts per outlet kind match Table 1.
    let paste = out
        .leaks
        .iter()
        .filter(|l| l.kind == OutletKind::Paste)
        .count();
    assert_eq!(paste, 50);
}

#[test]
fn forum_teaser_mechanics_are_recorded() {
    let out = run();
    // One seller + one teaser thread per forum used.
    assert_eq!(out.ground_truth.sellers.len(), 4);
    assert_eq!(out.ground_truth.teaser_threads.len(), 4);
    let mut sample_total = 0;
    for t in &out.ground_truth.teaser_threads {
        assert!(
            t.promised_total > t.sample_lines.len(),
            "teaser must promise more"
        );
        assert!(t.price_usd > 0);
        assert!(out
            .ground_truth
            .sellers
            .iter()
            .any(|s| s.handle == t.seller && s.forum == t.forum));
        sample_total += t.sample_lines.len();
    }
    // Every forum-leaked credential appears in exactly one teaser.
    assert_eq!(sample_total, 30);
    // Inquiries arrived and were never answered (they are only logged).
    assert!(!out.ground_truth.inquiries.is_empty());
}

#[test]
fn malware_campaign_log_covers_all_credentials() {
    let out = run();
    let cycles = &out.ground_truth.malware_cycles;
    assert_eq!(cycles.len(), 20, "one VM cycle per malware credential");
    let mut accounts: Vec<u32> = cycles.iter().map(|c| c.credential_account).collect();
    accounts.sort_unstable();
    accounts.dedup();
    assert_eq!(accounts.len(), 20);
    for c in cycles {
        assert!(matches!(
            c.outcome,
            pwnd::leak::malware::InfectionOutcome::Exfiltrated { .. }
        ));
        assert!(
            c.family.runs_in_vm(),
            "liveness filter removed VM-hostile samples"
        );
    }
}

#[test]
fn dataset_json_roundtrip_preserves_everything() {
    let out = run();
    let json = out.dataset_json();
    let back = pwnd::monitor::dataset::Dataset::from_json(&json).unwrap();
    assert_eq!(back.accesses, out.dataset.accesses);
    assert_eq!(back.accounts, out.dataset.accounts);
    assert_eq!(back.opened_texts, out.dataset.opened_texts);
}

#[test]
fn figures_partition_or_cover_the_accesses() {
    let out = run();
    let f1 = figures::fig1(&out.dataset);
    let n: usize = f1.rows.iter().map(|r| r.2).sum();
    assert_eq!(n, out.dataset.accesses.len());
    let f2 = figures::fig2(&out.dataset);
    let n2: usize = f2.series.iter().map(|(_, e)| e.len()).sum();
    assert_eq!(n2, out.dataset.accesses.len());
    let f4 = figures::fig4(&out.dataset);
    assert_eq!(f4.len(), out.dataset.accesses.len());
}

#[test]
fn report_renders_every_section() {
    let text = run().analysis().render();
    for section in [
        "== Overview",
        "== Table 1",
        "== Figure 1",
        "== Figure 2",
        "== Figure 3",
        "== Figure 4",
        "== Figure 5a",
        "== Figure 5b",
        "== Figure 6",
        "== Cramér–von Mises",
        "== Origins",
        "== Table 2",
        "== §4.5 sophistication",
    ] {
        assert!(text.contains(section), "missing section {section}");
    }
}
