//! The parallel runner's user-facing contract: everything the CLI
//! prints from a batch — the sweep table, the chaos table, every
//! exported dataset — is byte-identical whatever `--jobs` was.
//!
//! These tests drive the same `pwnd::cli` helpers the binary uses, so
//! the byte-identity claim covers the real rendering path, not a
//! reimplementation of it.

use pwnd::cli::{chaos_configs, chaos_table, sweep_configs, sweep_table, CHAOS_FACTORS};
use pwnd::{ExperimentConfig, FaultProfile, Runner};

#[test]
fn sweep_table_is_byte_identical_across_job_counts() {
    let base = ExperimentConfig::quick(2016);
    let seq = Runner::new(1).run_all(sweep_configs(&base, 8));
    let par = Runner::new(4).run_all(sweep_configs(&base, 8));

    assert_eq!(
        sweep_table(&seq.outputs, base.seed),
        sweep_table(&par.outputs, base.seed)
    );
    // Not just the table: the full censored dataset of every seed.
    for (i, (a, b)) in seq.outputs.iter().zip(&par.outputs).enumerate() {
        assert_eq!(a.dataset_json(), b.dataset_json(), "seed slot {i}");
    }
}

#[test]
fn chaos_table_is_byte_identical_across_job_counts() {
    let base = ExperimentConfig::quick(2016);
    let profile = FaultProfile::heavy();
    let seq = Runner::new(1).run_all(chaos_configs(&base, &profile));
    let par = Runner::new(4).run_all(chaos_configs(&base, &profile));

    assert_eq!(seq.outputs.len(), CHAOS_FACTORS.len());
    assert_eq!(chaos_table(&seq.outputs), chaos_table(&par.outputs));
    for (i, (a, b)) in seq.outputs.iter().zip(&par.outputs).enumerate() {
        assert_eq!(a.dataset_json(), b.dataset_json(), "factor slot {i}");
        assert_eq!(
            a.ground_truth.notifications_lost, b.ground_truth.notifications_lost,
            "factor slot {i}"
        );
    }
}

#[test]
fn oversubscribed_runner_matches_sequential() {
    // More workers than runs: the queue drains with idle workers, and
    // order must still hold.
    let base = ExperimentConfig::quick(7);
    let seq = Runner::new(1).run_all(sweep_configs(&base, 3));
    let par = Runner::new(16).run_all(sweep_configs(&base, 3));
    assert_eq!(
        sweep_table(&seq.outputs, base.seed),
        sweep_table(&par.outputs, base.seed)
    );
}
