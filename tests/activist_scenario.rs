//! Integration test for the §5 targeted-population extension.

use pwnd::analysis::classify;
use pwnd::{Experiment, ExperimentConfig};

#[test]
fn activist_scenario_flips_the_inferred_vocabulary() {
    let mut corporate_cfg = ExperimentConfig::quick(3);
    corporate_cfg.case_studies = false; // isolate the scenario effect
    let mut activist_cfg = corporate_cfg.clone();
    activist_cfg.archetype = pwnd::corpus::Archetype::Activist;

    let corporate = Experiment::new(corporate_cfg).run();
    let activist = Experiment::new(activist_cfg).run();

    // The activist corpus speaks activist language...
    assert!(activist.corpus_text.contains("campaign"));
    assert!(activist.corpus_text.contains("Open Voices Coalition"));
    assert!(!activist.corpus_text.contains("Meridian Power Group"));

    // ...and the targeted attackers search the activist-sensitive pool.
    let activist_queries: Vec<&String> = activist
        .ground_truth
        .searched_queries
        .iter()
        .filter(|q| {
            ["sources", "donors", "passport", "safehouse", "journalist"].contains(&q.as_str())
        })
        .collect();
    assert!(
        !activist_queries.is_empty(),
        "no activist-targeted queries observed"
    );
    // The corporate arm never searches those terms.
    assert!(corporate.ground_truth.searched_queries.iter().all(|q| ![
        "sources",
        "donors",
        "passport",
        "safehouse"
    ]
    .contains(&q.as_str())));

    // The TF-IDF inference recovers the shift from opened mail alone.
    let top: Vec<String> = activist
        .analysis()
        .tfidf
        .top_searched(10)
        .iter()
        .map(|t| t.term.clone())
        .collect();
    let activist_hits = top
        .iter()
        .filter(|t| {
            [
                "sources",
                "donors",
                "contacts",
                "passport",
                "location",
                "journalist",
                "funding",
                "identity",
                "travel",
                "safehouse",
            ]
            .contains(&t.as_str())
        })
        .count();
    assert!(activist_hits >= 4, "top searched: {top:?}");
}

#[test]
fn targeted_attackers_dig_more() {
    let corporate = Experiment::new(ExperimentConfig::quick(5)).run();
    let mut cfg = ExperimentConfig::quick(5);
    cfg.archetype = pwnd::corpus::Archetype::Activist;
    let activist = Experiment::new(cfg).run();

    let gold_fraction = |out: &pwnd::RunOutput| {
        let gold = out
            .dataset
            .accesses
            .iter()
            .filter(|a| classify(a).gold_digger)
            .count();
        gold as f64 / out.dataset.accesses.len().max(1) as f64
    };
    assert!(
        gold_fraction(&activist) > gold_fraction(&corporate),
        "activist {:.2} vs corporate {:.2}",
        gold_fraction(&activist),
        gold_fraction(&corporate)
    );
}
