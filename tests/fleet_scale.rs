//! The fleet engine's user-facing contract: a sharded fleet run is a
//! pure function of its config — the merged dataset, the summary
//! table, and the streamed JSONL export are byte-identical whatever
//! `--jobs` was — and the streaming export loses nothing relative to
//! the in-memory JSON artifact.

use pwnd::core::fleet::{run_fleet, run_fleet_streaming, FleetConfig};
use pwnd::monitor::export::read_jsonl;
use pwnd::telemetry::TelemetryReport;
use pwnd::{Experiment, ExperimentConfig};

/// `pwnd fleet --accounts 500`: the merged dataset and every rendered
/// artifact are byte-identical between the sequential and the parallel
/// schedule.
#[test]
fn fleet_500_accounts_is_byte_identical_across_job_counts() {
    let seq = run_fleet(&FleetConfig::new(2016, 500, 1));
    let par = run_fleet(&FleetConfig::new(2016, 500, 4));

    assert_eq!(seq.accounts, 500);
    assert_eq!(seq.shards, 5);
    assert_eq!(seq.dataset_json(), par.dataset_json());

    let mut seq_jsonl = Vec::new();
    let mut par_jsonl = Vec::new();
    seq.write_jsonl(&mut seq_jsonl).unwrap();
    par.write_jsonl(&mut par_jsonl).unwrap();
    assert_eq!(seq_jsonl, par_jsonl);

    // The summary differs only in the jobs row it reports.
    let strip_jobs = |t: String| {
        t.lines()
            .filter(|l| !l.starts_with("jobs"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_jobs(seq.summary_table().render()),
        strip_jobs(par.summary_table().render())
    );
}

/// `pwnd fleet --telemetry-out`: the streamed per-shard telemetry is
/// one JSONL report line per shard, in shard order whatever the
/// schedule, and re-merging the lines offline reproduces the in-process
/// merged report exactly — including phase timings and the span tree.
#[test]
fn streamed_fleet_telemetry_is_ordered_complete_and_remergeable() {
    let cfg = FleetConfig::new(2016, 500, 4);
    let mut stream = Vec::new();
    let output = run_fleet_streaming(&cfg, &mut stream).unwrap();

    let text = std::str::from_utf8(&stream).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), output.shards, "one report line per shard");

    let reports: Vec<TelemetryReport> = lines
        .iter()
        .map(|l| TelemetryReport::from_json_line(l).unwrap())
        .collect();
    let remerged = TelemetryReport::merge(&reports);
    assert_eq!(remerged, output.shard_telemetry);
    assert_eq!(
        remerged.spans.structure(),
        output.shard_telemetry.spans.structure()
    );
    assert_eq!(
        remerged.phases.iter().map(|p| &p.name).collect::<Vec<_>>(),
        output
            .shard_telemetry
            .phases
            .iter()
            .map(|p| &p.name)
            .collect::<Vec<_>>()
    );

    // Shard order, not completion order: each line carries its shard's
    // own account count, so the merged counter totals the fleet.
    let dispatched: u64 = reports
        .iter()
        .map(|r| r.metrics.counter("sim.events_dispatched"))
        .sum();
    assert_eq!(
        remerged.metrics.counter("sim.events_dispatched"),
        dispatched
    );
    assert!(dispatched > 0, "shards really dispatched sim events");

    // Streaming is an observation: the dataset matches the plain run.
    let plain = run_fleet(&cfg);
    assert_eq!(plain.dataset_json(), output.dataset_json());
}

/// Streaming a dataset out as JSON Lines and reassembling it yields the
/// exact in-memory JSON artifact — at the paper's own 100-account
/// scale, through a real (non-fleet) run.
#[test]
fn jsonl_round_trip_matches_in_memory_export_at_paper_scale() {
    let output = Experiment::new(ExperimentConfig::quick(2016)).run();
    let direct = output.dataset_json();

    let mut stream = Vec::new();
    {
        use pwnd::monitor::DatasetWriter;
        let mut writer = DatasetWriter::new(&mut stream);
        writer.write_dataset(&output.dataset).unwrap();
        writer.finish().unwrap();
    }

    let reassembled = read_jsonl(std::str::from_utf8(&stream).unwrap()).unwrap();
    assert!(reassembled.truncated.is_none());
    assert_eq!(reassembled.dataset.to_json(), direct);
}
