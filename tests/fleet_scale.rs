//! The fleet engine's user-facing contract: a sharded fleet run is a
//! pure function of its config — the merged dataset, the summary
//! table, and the streamed JSONL export are byte-identical whatever
//! `--jobs` was — and the streaming export loses nothing relative to
//! the in-memory JSON artifact.

use pwnd::core::fleet::{run_fleet, FleetConfig};
use pwnd::monitor::export::read_jsonl;
use pwnd::{Experiment, ExperimentConfig};

/// `pwnd fleet --accounts 500`: the merged dataset and every rendered
/// artifact are byte-identical between the sequential and the parallel
/// schedule.
#[test]
fn fleet_500_accounts_is_byte_identical_across_job_counts() {
    let seq = run_fleet(&FleetConfig::new(2016, 500, 1));
    let par = run_fleet(&FleetConfig::new(2016, 500, 4));

    assert_eq!(seq.accounts, 500);
    assert_eq!(seq.shards, 5);
    assert_eq!(seq.dataset_json(), par.dataset_json());

    let mut seq_jsonl = Vec::new();
    let mut par_jsonl = Vec::new();
    seq.write_jsonl(&mut seq_jsonl).unwrap();
    par.write_jsonl(&mut par_jsonl).unwrap();
    assert_eq!(seq_jsonl, par_jsonl);

    // The summary differs only in the jobs row it reports.
    let strip_jobs = |t: String| {
        t.lines()
            .filter(|l| !l.starts_with("jobs"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_jobs(seq.summary_table().render()),
        strip_jobs(par.summary_table().render())
    );
}

/// Streaming a dataset out as JSON Lines and reassembling it yields the
/// exact in-memory JSON artifact — at the paper's own 100-account
/// scale, through a real (non-fleet) run.
#[test]
fn jsonl_round_trip_matches_in_memory_export_at_paper_scale() {
    let output = Experiment::new(ExperimentConfig::quick(2016)).run();
    let direct = output.dataset_json();

    let mut stream = Vec::new();
    {
        use pwnd::monitor::DatasetWriter;
        let mut writer = DatasetWriter::new(&mut stream);
        writer.write_dataset(&output.dataset).unwrap();
        writer.finish().unwrap();
    }

    let reassembled = read_jsonl(std::str::from_utf8(&stream).unwrap()).unwrap();
    assert_eq!(reassembled.to_json(), direct);
}
