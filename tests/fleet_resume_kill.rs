//! Crash-resume integration test: `kill -9` a `pwnd fleet --out-dir`
//! process mid-run, resume it, and prove the resumed store's merged
//! dataset is byte-identical to an uninterrupted run — the store's
//! whole reason to exist.

use std::fs;
use std::path::Path;
use std::process::{Command, Stdio};
use std::thread::sleep;
use std::time::Duration;

fn pwnd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pwnd"))
}

fn fleet_args(dir: &Path, out: &Path) -> Vec<String> {
    [
        "fleet",
        "--accounts",
        "300",
        "--seed",
        "9",
        "--jobs",
        "1",
        "--out-dir",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain([
        dir.display().to_string(),
        "--out".to_string(),
        out.display().to_string(),
    ])
    .collect()
}

/// The numeric value of a summary-table row, e.g. `row_value(stdout,
/// "shards skipped")`.
fn row_value(stdout: &str, label: &str) -> u64 {
    let line = stdout
        .lines()
        .find(|l| l.contains(label))
        .unwrap_or_else(|| panic!("no {label:?} row in:\n{stdout}"));
    line.split_whitespace().last().unwrap().parse().unwrap()
}

#[test]
fn killed_fleet_resumes_to_a_byte_identical_store() {
    let base = std::env::temp_dir().join(format!("pwnd-kill-resume-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);
    fs::create_dir_all(&base).unwrap();
    let interrupted = base.join("interrupted");
    let clean = base.join("clean");

    // Start a sequential fleet and SIGKILL it the moment the manifest
    // claims its first durable shard.
    let mut child = pwnd()
        .args([
            "fleet",
            "--accounts",
            "300",
            "--seed",
            "9",
            "--jobs",
            "1",
            "--out-dir",
        ])
        .arg(&interrupted)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut saw_shard = false;
    for _ in 0..1200 {
        if fs::read_to_string(interrupted.join("manifest.json"))
            .is_ok_and(|text| text.contains("shard-00000.jsonl"))
        {
            saw_shard = true;
            break;
        }
        if let Some(status) = child.try_wait().unwrap() {
            // The run outraced the poll. The resume below then skips
            // everything, which still exercises the verified path.
            assert!(status.success());
            saw_shard = true;
            break;
        }
        sleep(Duration::from_millis(50));
    }
    child.kill().ok();
    child.wait().unwrap();
    assert!(
        saw_shard,
        "fleet never persisted a shard within the deadline"
    );

    // Resume to completion: shard 0 verified on disk, so at least one
    // shard is reused rather than re-run.
    let resumed = pwnd()
        .args(fleet_args(&interrupted, &base.join("resumed.jsonl")))
        .output()
        .unwrap();
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(
        row_value(&stdout, "shards skipped") >= 1,
        "resume re-ran everything:\n{stdout}"
    );
    assert_eq!(row_value(&stdout, "shards recovered"), 0);

    // The uninterrupted reference run, in a fresh directory.
    let reference = pwnd()
        .args(fleet_args(&clean, &base.join("clean.jsonl")))
        .output()
        .unwrap();
    assert!(reference.status.success());

    assert_eq!(
        fs::read(base.join("resumed.jsonl")).unwrap(),
        fs::read(base.join("clean.jsonl")).unwrap(),
        "resumed merge differs from the uninterrupted merge"
    );
    let _ = fs::remove_dir_all(&base);
}
