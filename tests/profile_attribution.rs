//! Attribution quality and non-perturbation of the deep telemetry.
//!
//! Two properties the `pwnd profile` feature rests on:
//!
//! 1. **Attribution is near-total**: on a quick run, the span tree
//!    accounts for ≥95% of the `event-loop` and `scrape` phase wall
//!    time through *named* child spans — the breakdown is not mostly
//!    "unattributed self time".
//! 2. **Observation is free of side effects**: the exported dataset of
//!    a fault-free run is byte-identical with telemetry enabled vs
//!    disabled (the crate-level guarantee, re-proven here at the
//!    integration boundary).

use pwnd::telemetry::TelemetrySink;
use pwnd::{Experiment, ExperimentConfig};
use std::hash::{DefaultHasher, Hash, Hasher};

fn digest(text: &str) -> u64 {
    let mut h = DefaultHasher::new();
    text.hash(&mut h);
    h.finish()
}

#[test]
fn quick_run_attributes_hot_phases_to_named_children() {
    let sink = TelemetrySink::enabled();
    let _ = Experiment::new(ExperimentConfig::quick(2016))
        .with_telemetry(sink.clone())
        .run();
    let report = sink.report();

    for phase in ["event-loop", "scrape"] {
        let attr = report
            .spans
            .attribution(phase)
            .expect("hot phase has span-tree nodes");
        assert!(
            attr.coverage() >= 0.95,
            "{phase}: only {:.1}% of {:?} attributed to child spans",
            100.0 * attr.coverage(),
            attr.total,
        );
    }

    // The event loop's children are the labelled event kinds: at least
    // visit, scrape, and heartbeat must appear, each with entries.
    let event_kinds: Vec<&str> = report
        .spans
        .nodes
        .iter()
        .filter(|n| n.parent_path() == Some("event-loop") && n.leaf_base() == "event")
        .map(|n| n.leaf())
        .collect();
    assert!(
        event_kinds.len() >= 3,
        "expected ≥3 event kinds under event-loop, got {event_kinds:?}"
    );
    assert!(event_kinds.iter().any(|k| k.contains("kind=visit")));
    assert!(event_kinds.iter().any(|k| k.contains("kind=scrape")));
    assert!(event_kinds.iter().any(|k| k.contains("kind=heartbeat")));
    assert!(event_kinds.iter().all(|n| {
        report
            .spans
            .node(&format!("event-loop;{n}"))
            .is_some_and(|node| node.count > 0)
    }));

    // Scrape operations broke down into the per-operation spans.
    assert!(report
        .spans
        .nodes
        .iter()
        .any(|n| n.path.ends_with(";scrape;poll") && n.count > 0));
    assert!(report
        .spans
        .nodes
        .iter()
        .any(|n| n.path.ends_with(";poll;parse") && n.count > 0));
}

#[test]
fn telemetry_cannot_perturb_the_exported_dataset() {
    // The default quick config runs FaultProfile::none().
    let cfg = ExperimentConfig::quick(2016);
    let plain = Experiment::new(cfg.clone()).run().dataset_json();
    let sink = TelemetrySink::enabled();
    let instrumented = Experiment::new(cfg)
        .with_telemetry(sink.clone())
        .run()
        .dataset_json();
    assert!(!sink.report().spans.is_empty(), "telemetry really ran");
    assert_eq!(
        digest(&plain),
        digest(&instrumented),
        "dataset digests diverge with telemetry on"
    );
    assert_eq!(
        plain, instrumented,
        "dataset bytes diverge with telemetry on"
    );
}
