//! End-to-end tests of the crash-safe fleet store (`pwnd fleet
//! --out-dir`): durability, resume, incremental extension, corruption
//! recovery, and the property that a mutated store is *detected* —
//! hash mismatch leading to quarantine and re-run — never silently
//! merged.

use proptest::prelude::*;
use pwnd::analysis::tables::overview;
use pwnd::core::fleet::{run_fleet, FleetConfig};
use pwnd::store::{
    merge_store_jsonl, run_fleet_store, shard_file_name, store_overview, MANIFEST_FILE,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// A fresh scratch directory under the system temp dir, unique per
/// test name so concurrently running tests never collide.
fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pwnd-fleet-store-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The store's merged JSONL bytes.
fn merged(dir: &Path) -> Vec<u8> {
    let mut out = Vec::new();
    merge_store_jsonl(dir, &mut out).expect("merge over a healthy store");
    out
}

#[test]
fn store_survives_truncation_bitflip_deletion_and_manifest_loss() {
    let cfg = FleetConfig::new(41, 250, 2);
    let dir = test_dir("lifecycle");

    // The uninterrupted in-memory fleet is the reference for both the
    // merged bytes and the streamed overview.
    let reference = run_fleet(&cfg);
    let mut scratch = Vec::new();
    reference.write_jsonl(&mut scratch).unwrap();

    // Fresh build: every shard runs, and the merge is byte-identical
    // to the in-memory run.
    let run = run_fleet_store(&cfg, &dir).unwrap();
    assert_eq!((run.shards_total, run.shards_run), (3, 3));
    assert_eq!((run.shards_skipped, run.shards_recovered), (0, 0));
    assert!(!run.manifest_recovered);
    assert_eq!(merged(&dir), scratch);
    assert_eq!(store_overview(&dir).unwrap(), overview(&reference.dataset));

    // Resume over a healthy store runs nothing.
    let resume = run_fleet_store(&cfg, &dir).unwrap();
    assert_eq!((resume.shards_run, resume.shards_skipped), (0, 3));
    assert_eq!(resume.peak_rss_proxy, 0, "nothing ran, nothing resident");
    assert_eq!(merged(&dir), scratch);

    // Truncation: readers refuse, the run quarantines and re-runs
    // exactly the damaged shard, and the rebuilt store is identical.
    let shard1 = dir.join(shard_file_name(1));
    let pristine = fs::read(&shard1).unwrap();
    fs::write(&shard1, &pristine[..pristine.len() / 2]).unwrap();
    let err = merge_store_jsonl(&dir, &mut Vec::new()).unwrap_err();
    assert!(err.to_string().contains(&shard_file_name(1)), "{err}");
    let recover = run_fleet_store(&cfg, &dir).unwrap();
    assert_eq!((recover.shards_run, recover.shards_skipped), (1, 2));
    assert_eq!(recover.shards_recovered, 1);
    assert!(
        dir.join(format!("{}.corrupt", shard_file_name(1))).exists(),
        "damaged bytes are quarantined for post-mortem, not destroyed"
    );
    assert_eq!(merged(&dir), scratch);

    // A single flipped bit is just as fatal and just as recoverable.
    let shard0 = dir.join(shard_file_name(0));
    let mut bytes = fs::read(&shard0).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    fs::write(&shard0, &bytes).unwrap();
    assert!(
        store_overview(&dir).is_err(),
        "readers reject a flipped bit"
    );
    let recover = run_fleet_store(&cfg, &dir).unwrap();
    assert_eq!((recover.shards_run, recover.shards_recovered), (1, 1));
    assert_eq!(merged(&dir), scratch);

    // Deletion (crash before the file landed): missing, not corrupt —
    // re-run without a quarantine.
    fs::remove_file(dir.join(shard_file_name(2))).unwrap();
    let refill = run_fleet_store(&cfg, &dir).unwrap();
    assert_eq!((refill.shards_run, refill.shards_skipped), (1, 2));
    assert_eq!(refill.shards_recovered, 0);
    assert_eq!(merged(&dir), scratch);

    // A mangled manifest is quarantined and the whole store rebuilt —
    // without it, no shard file can be trusted.
    fs::write(dir.join(MANIFEST_FILE), "{ not a manifest").unwrap();
    let rebuild = run_fleet_store(&cfg, &dir).unwrap();
    assert!(rebuild.manifest_recovered);
    assert_eq!(rebuild.shards_run, 3);
    assert!(dir.join(format!("{MANIFEST_FILE}.corrupt")).exists());
    assert_eq!(merged(&dir), scratch);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn incremental_extension_reuses_verified_shards_and_guards_identity() {
    let dir = test_dir("extend");
    let small = FleetConfig::new(7, 100, 1);
    let first = run_fleet_store(&small, &dir).unwrap();
    assert_eq!((first.shards_total, first.shards_run), (1, 1));

    // Growing the population re-runs only the extension; shard 0's
    // bytes depend solely on (seed, index, shard size), so it is
    // reused as-is.
    let big = FleetConfig::new(7, 300, 2);
    let second = run_fleet_store(&big, &dir).unwrap();
    assert_eq!((second.shards_total, second.shards_run), (3, 2));
    assert_eq!(second.shards_skipped, 1);
    let mut scratch = Vec::new();
    run_fleet(&big).write_jsonl(&mut scratch).unwrap();
    assert_eq!(
        merged(&dir),
        scratch,
        "extended store == from-scratch fleet"
    );

    // Shrinking back skips every needed shard and keeps the extra
    // claims around for the next large run.
    let third = run_fleet_store(&small, &dir).unwrap();
    assert_eq!((third.shards_skipped, third.shards_run), (1, 0));
    let fourth = run_fleet_store(&big, &dir).unwrap();
    assert_eq!((fourth.shards_skipped, fourth.shards_run), (3, 0));

    // A different seed is refused up front, not merged.
    let err = run_fleet_store(&FleetConfig::new(8, 100, 1), &dir).unwrap_err();
    assert!(err.to_string().contains("seed 7"), "{err}");

    // So is a different experiment shape. The stored template hash is
    // edited in place — equivalent to the config changing under us.
    let manifest_path = dir.join(MANIFEST_FILE);
    let text = fs::read_to_string(&manifest_path).unwrap();
    let needle = "\"template_config_sha256\": \"";
    assert!(text.contains(needle), "manifest format changed?\n{text}");
    fs::write(
        &manifest_path,
        text.replacen(needle, "\"template_config_sha256\": \"0000", 1),
    )
    .unwrap();
    let err = run_fleet_store(&small, &dir).unwrap_err();
    assert!(
        err.to_string().contains("different experiment config"),
        "{err}"
    );

    let _ = fs::remove_dir_all(&dir);
}

/// A small single-shard store built once per mutation property, plus
/// everything needed to restore it between generated cases.
struct Fixture {
    dir: PathBuf,
    shard: PathBuf,
    shard_bytes: Vec<u8>,
    manifest: PathBuf,
    manifest_bytes: Vec<u8>,
    merged: Vec<u8>,
}

impl Fixture {
    fn build(name: &str) -> Fixture {
        let dir = test_dir(name);
        run_fleet_store(&FleetConfig::new(13, 20, 1), &dir).unwrap();
        let shard = dir.join(shard_file_name(0));
        let manifest = dir.join(MANIFEST_FILE);
        Fixture {
            shard_bytes: fs::read(&shard).unwrap(),
            manifest_bytes: fs::read(&manifest).unwrap(),
            merged: merged(&dir),
            dir,
            shard,
            manifest,
        }
    }

    fn restore(&self) {
        fs::write(&self.shard, &self.shard_bytes).unwrap();
        fs::write(&self.manifest, &self.manifest_bytes).unwrap();
    }
}

fn shard_fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| Fixture::build("prop-shard"))
}

fn manifest_fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| Fixture::build("prop-manifest"))
}

proptest! {
    /// Satellite: any single-byte mutation of a shard file is
    /// detected. Every reader refuses the store outright, and (spot-
    /// checked, since a re-run costs a full shard execution) the write
    /// path quarantines, deterministically re-runs, and converges back
    /// to the pristine bytes.
    #[test]
    fn any_single_byte_shard_mutation_is_detected_never_silently_merged(
        pos_seed in any::<u64>(),
        delta in 1u8..=255,
    ) {
        let f = shard_fixture();
        let pos = (pos_seed % f.shard_bytes.len() as u64) as usize;
        let mut mutated = f.shard_bytes.clone();
        mutated[pos] ^= delta;
        fs::write(&f.shard, &mutated).unwrap();

        let err = merge_store_jsonl(&f.dir, &mut Vec::new()).unwrap_err();
        prop_assert!(
            err.to_string().contains("does not match its manifest hash"),
            "byte {} ^ {:#04x}: {}", pos, delta, err
        );
        prop_assert!(store_overview(&f.dir).is_err());

        if pos.is_multiple_of(13) {
            let run = run_fleet_store(&FleetConfig::new(13, 20, 1), &f.dir).unwrap();
            prop_assert_eq!((run.shards_recovered, run.shards_run), (1, 1));
            prop_assert_eq!(merged(&f.dir), f.merged.clone());
            prop_assert_eq!(fs::read(&f.shard).unwrap(), f.shard_bytes.clone());
        }
        f.restore();
    }

    /// Satellite, manifest half: any single-byte mutation of the
    /// manifest either makes the store unreadable (reported as
    /// corruption) or leaves the merged bytes exactly pristine — never
    /// a third outcome.
    #[test]
    fn any_single_byte_manifest_mutation_is_rejected_or_harmless(
        pos_seed in any::<u64>(),
        delta in 1u8..=255,
    ) {
        let f = manifest_fixture();
        let pos = (pos_seed % f.manifest_bytes.len() as u64) as usize;
        let mut mutated = f.manifest_bytes.clone();
        mutated[pos] ^= delta;
        fs::write(&f.manifest, &mutated).unwrap();

        let mut out = Vec::new();
        match merge_store_jsonl(&f.dir, &mut out) {
            // A mutation that survives parsing *and* hash verification
            // (e.g. inside the `records` count, or JSON whitespace)
            // must not change a single merged byte.
            Ok(_) => prop_assert_eq!(out, f.merged.clone(), "byte {}", pos),
            Err(err) => {
                let msg = err.to_string();
                prop_assert!(
                    msg.contains("corrupt")
                        || msg.contains("does not match its manifest hash")
                        || msg.contains("missing")
                        || msg.contains("incomplete")
                        || msg.contains("not a fleet store"),
                    "byte {} ^ {:#04x}: unexpected error: {}", pos, delta, msg
                );
            }
        }
        f.restore();
    }
}
