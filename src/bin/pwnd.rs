//! `pwnd` — command-line front end for the honey-account testbed.
//!
//! ```text
//! pwnd run     [--seed N] [--quick] [--filter-on] [--decoys]   full evaluation report
//! pwnd export  [--seed N] [--out FILE]                         dataset JSON
//! pwnd sweep   [--seeds N]                                     headline stats across seeds
//! pwnd leaks   [--seed N]                                      the leak plan actually executed
//! pwnd truth   [--seed N]                                      ground-truth vs observed audit
//! ```

use pwnd::analysis::tables::overview;
use pwnd::{Experiment, ExperimentConfig};
use std::process::ExitCode;

struct Args {
    seed: u64,
    quick: bool,
    filter_on: bool,
    decoys: bool,
    out: String,
    seeds: u64,
}

fn parse(mut argv: std::env::Args) -> Option<(String, Args)> {
    let _bin = argv.next();
    let command = argv.next()?;
    let mut args = Args {
        seed: 2016,
        quick: false,
        filter_on: false,
        decoys: false,
        out: "dataset.json".to_string(),
        seeds: 8,
    };
    let rest: Vec<String> = argv.collect();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--seed" => {
                args.seed = rest.get(i + 1)?.parse().ok()?;
                i += 2;
            }
            "--out" => {
                args.out = rest.get(i + 1)?.clone();
                i += 2;
            }
            "--seeds" => {
                args.seeds = rest.get(i + 1)?.parse().ok()?;
                i += 2;
            }
            "--quick" => {
                args.quick = true;
                i += 1;
            }
            "--filter-on" => {
                args.filter_on = true;
                i += 1;
            }
            "--decoys" => {
                args.decoys = true;
                i += 1;
            }
            other => {
                eprintln!("unknown flag: {other}");
                return None;
            }
        }
    }
    Some((command, args))
}

fn config_of(a: &Args) -> ExperimentConfig {
    let mut cfg = if a.quick {
        ExperimentConfig::quick(a.seed)
    } else {
        ExperimentConfig::paper(a.seed)
    };
    cfg.login_filter_enabled = a.filter_on;
    cfg.seed_decoys = a.decoys;
    cfg
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: pwnd <run|export|sweep|leaks|truth> [--seed N] [--quick] \
         [--filter-on] [--decoys] [--out FILE] [--seeds N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let Some((command, args)) = parse(std::env::args()) else {
        return usage();
    };
    match command.as_str() {
        "run" => {
            let out = Experiment::new(config_of(&args)).run();
            println!("{}", out.analysis().render());
        }
        "export" => {
            let out = Experiment::new(config_of(&args)).run();
            let json = out.dataset_json();
            if std::fs::write(&args.out, &json).is_err() {
                eprintln!("cannot write {}", args.out);
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {} ({} accesses, {} KiB)",
                args.out,
                out.dataset.accesses.len(),
                json.len() / 1024
            );
        }
        "sweep" => {
            println!(
                "{:<6} {:>9} {:>7} {:>6} {:>8} {:>8} {:>9}",
                "seed", "accesses", "opened", "sent", "blocked", "hijacked", "accounts"
            );
            for s in 0..args.seeds {
                let mut cfg = config_of(&args);
                cfg.seed = 1000 + s;
                let out = Experiment::new(cfg).run();
                let ov = overview(&out.dataset);
                println!(
                    "{:<6} {:>9} {:>7} {:>6} {:>8} {:>8} {:>9}",
                    1000 + s,
                    ov.total_accesses,
                    ov.emails_opened,
                    ov.emails_sent,
                    ov.accounts_blocked,
                    ov.accounts_hijacked,
                    ov.accounts_accessed
                );
            }
            println!("paper: 326 accesses, 147 opened, 845 sent, 42 blocked, 36 hijacked, 90 accounts");
        }
        "leaks" => {
            let out = Experiment::new(config_of(&args)).run();
            println!("{:<5} {:<8} {:<24} {:<10} content", "acct", "outlet", "site", "day");
            for l in &out.leaks {
                println!(
                    "{:<5} {:<8} {:<24} {:<10.1} {}",
                    l.account,
                    l.kind.label(),
                    l.site,
                    l.at.as_days_f64(),
                    l.content.render()
                );
            }
        }
        "truth" => {
            let out = Experiment::new(config_of(&args)).run();
            let gt = &out.ground_truth;
            println!("attempted accesses : {}", gt.attempted_accesses);
            println!("observed accesses  : {}", out.dataset.accesses.len());
            println!("hijacked (truth)   : {}", gt.hijacked_accounts.len());
            println!("blocked (truth)    : {}", gt.blocked_accounts.len());
            println!("sinkholed messages : {}", gt.sinkholed_messages);
            println!("scripts deleted    : {}", gt.scripts_deleted.len());
            println!("quota notices      : {}", gt.quota_notices_delivered);
            println!("forum inquiries    : {}", gt.inquiries.len());
            let mut q = gt.searched_queries.clone();
            q.sort_unstable();
            q.dedup();
            println!("distinct queries   : {q:?}");
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
