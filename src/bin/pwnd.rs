//! `pwnd` — command-line front end for the honey-account testbed.
//!
//! ```text
//! pwnd run     [--seed N] [--quick] [--filter-on] [--decoys] [--profile] [--faults NAME]
//! pwnd trace   [--seed N] [--quick] [--trace-out FILE] [--filter SUBSTR] [--limit N]
//! pwnd profile [--seed N] [--quick] [--collapsed FILE] [--input FILE] [--limit N]
//! pwnd export  [--seed N] [--out FILE]
//! pwnd sweep   [--seeds N] [--seed BASE] [--jobs N] [--profile]
//! pwnd chaos   [--seed N] [--quick] [--faults NAME] [--jobs N] [--profile]
//! pwnd fleet   [--accounts N] [--jobs N] [--seed N] [--out FILE] [--out-dir DIR]
//!              [--telemetry-out FILE] [--profile]
//! pwnd report  --input PATH
//! pwnd serve   --input DIR [--addr HOST:PORT] [--jobs N] [--rate N] [--profile]
//! pwnd serve   --print-routes
//! pwnd serve-bench --input DIR [--clients N] [--requests N] [--jobs N] [--rate N]
//!              [--min-throughput N] [--json FILE]
//! pwnd bench   [--json FILE] [--reps N] [--jobs N] [--check FILE] [--tolerance PCT]
//! pwnd leaks   [--seed N]
//! pwnd truth   [--seed N]
//! pwnd lint    [--deny] [--json] [--rule ID]...
//! ```

use pwnd::cli;
use pwnd::core::fleet::{run_fleet, run_fleet_streaming, FleetConfig};
use pwnd::telemetry::{Json, Table, TelemetrySink};
use pwnd::{Experiment, ExperimentConfig, FaultProfile, Runner};
use std::process::ExitCode;

const USAGE: &str = "\
usage: pwnd <command> [flags]

commands:
  run      full evaluation report (§4 analysis pipeline)
  trace    run with telemetry and emit the JSONL event trace
  profile  deep attribution: top spans, per-phase coverage, flamegraph export
  export   write the censored dataset as JSON
  sweep    headline stats across consecutive seeds
  chaos    data-loss ablation: sweep fault-rate factors over one seed
  fleet    one sharded experiment over a large account population
  report   §4.1 overview of an exported dataset or an on-disk fleet store
  serve    breach-intelligence query daemon: serve the /v1 JSON API over a
           fleet store (see API.md); stops on EOF on stdin
  serve-bench  load-generate against an in-process daemon over a fleet store
           and report throughput + latency percentiles
  bench    perf baseline: run the benchmark workloads, report median/min
  leaks    the leak plan actually executed
  truth    ground-truth vs observed audit
  lint     run the determinism & invariant linter over the workspace

flags:
  --seed N         RNG seed (default 2016); for sweep, the base seed
  --quick          30-day quick configuration instead of the full paper run
  --filter-on      enable the provider's suspicious-login filter
  --decoys         seed decoy documents into every mailbox
  --faults NAME    fault profile: none | light | heavy (default none);
                   for chaos, the profile whose rates are scaled (default heavy)
  --profile        (run/fleet) print phase timings and the metrics summary;
                   (sweep/chaos) print the runner speedup breakdown too;
                   (serve) print request telemetry on shutdown;
                   (lint) print the lint.findings metrics
  --jobs N         (sweep/chaos/fleet/bench) worker threads (default: all
                   cores); --jobs 1 is the sequential path, output is identical;
                   (serve/serve-bench) HTTP worker threads (floored at 4),
                   which also bound concurrent connections
  --accounts N     (fleet) honey-account population (default 1000), sharded
                   into 100-account sub-experiments
  --out FILE       (export) output path (default dataset.json);
                   (fleet) stream the merged dataset there as JSON Lines
  --out-dir DIR    (fleet) durable sharded store: write per-shard JSONL files
                   and a manifest there; re-running resumes (verified shards
                   are skipped, corrupt ones quarantined and re-run)
  --trace-out FILE (trace) write the JSONL trace here instead of stdout
  --filter SUBSTR  (trace) keep only events whose kind or detail contains it
  --limit N        (trace) keep only the last N matching events;
                   (profile) bound the top-spans table to N rows
  --collapsed FILE (profile) write the flamegraph collapsed-stack export there
  --input PATH     (profile) analyse a streamed --telemetry-out JSONL file
                   offline instead of running an experiment;
                   (report) a fleet store directory or a JSONL dataset file;
                   (serve/serve-bench) the fleet store directory to serve
  --telemetry-out FILE (fleet) stream one telemetry report line per shard
                   there while the fleet runs (forces telemetry on)
  --seeds N        (sweep) number of seeds (default 8)
  --reps N         (bench) repetitions per workload (default 5)
  --check FILE     (bench) compare medians against this baseline JSON and
                   exit nonzero on regression
  --tolerance PCT  (bench --check) allowed regression percentage (default 25)
  --addr HOST:PORT (serve) listen address (default 127.0.0.1:8080; port 0
                   binds an ephemeral port, printed on startup)
  --rate N         (serve/serve-bench) token-bucket rate limit: N requests/s
                   sustained with an N-request burst; excess gets 429 with
                   Retry-After (default: unlimited)
  --print-routes   (serve) print the registered /v1 routes and exit
  --clients N      (serve-bench) concurrent client connections (default 4)
  --requests N     (serve-bench) total requests across all clients
                   (default 10000)
  --min-throughput N (serve-bench) exit nonzero below N requests/s (the CI
                   floor); 5xx responses always fail the run
  --deny           (lint) exit nonzero when any finding survives suppression
  --rule ID        (lint) check only this rule (repeatable); unknown rule
                   ids are an error, never a silent pass
  --json           (lint) emit the machine-readable report;
                   (bench/serve-bench) takes a FILE argument and writes the
                   JSON report there
  -h, --help       print this help";

struct Args {
    seed: u64,
    quick: bool,
    filter_on: bool,
    decoys: bool,
    profile: bool,
    out: String,
    out_given: bool,
    out_dir: Option<String>,
    accounts: u32,
    trace_out: Option<String>,
    seeds: u64,
    faults: Option<FaultProfile>,
    deny: bool,
    json: bool,
    json_out: Option<String>,
    jobs: usize,
    reps: u32,
    filter: Option<String>,
    limit: usize,
    collapsed: Option<String>,
    input: Option<String>,
    telemetry_out: Option<String>,
    check: Option<String>,
    tolerance: f64,
    rules: std::collections::BTreeSet<String>,
    addr: String,
    rate: Option<u32>,
    print_routes: bool,
    clients: usize,
    requests: u64,
    min_throughput: Option<f64>,
}

enum Cli {
    Help,
    Invalid,
    Command(String, Box<Args>),
}

fn parse(mut argv: std::env::Args) -> Cli {
    let _bin = argv.next();
    let Some(command) = argv.next() else {
        return Cli::Invalid;
    };
    if matches!(command.as_str(), "--help" | "-h" | "help") {
        return Cli::Help;
    }
    let mut args = Args {
        seed: 2016,
        quick: false,
        filter_on: false,
        decoys: false,
        profile: false,
        out: "dataset.json".to_string(),
        out_given: false,
        out_dir: None,
        accounts: 1_000,
        trace_out: None,
        seeds: 8,
        faults: None,
        deny: false,
        json: false,
        json_out: None,
        // lint:allow(lock-discipline): one-shot core-count read for a CLI default; no shared state
        jobs: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        reps: 5,
        filter: None,
        limit: 0,
        collapsed: None,
        input: None,
        telemetry_out: None,
        check: None,
        tolerance: 25.0,
        rules: std::collections::BTreeSet::new(),
        addr: "127.0.0.1:8080".to_string(),
        rate: None,
        print_routes: false,
        clients: 4,
        requests: 10_000,
        min_throughput: None,
    };
    let rest: Vec<String> = argv.collect();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--help" | "-h" => return Cli::Help,
            "--seed" => {
                let Some(v) = rest.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return Cli::Invalid;
                };
                args.seed = v;
                i += 2;
            }
            "--out" => {
                let Some(v) = rest.get(i + 1) else {
                    return Cli::Invalid;
                };
                args.out = v.clone();
                args.out_given = true;
                i += 2;
            }
            "--out-dir" => {
                let Some(v) = rest.get(i + 1) else {
                    return Cli::Invalid;
                };
                args.out_dir = Some(v.clone());
                i += 2;
            }
            "--accounts" => {
                let Some(v) = rest.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return Cli::Invalid;
                };
                args.accounts = v;
                i += 2;
            }
            "--trace-out" => {
                let Some(v) = rest.get(i + 1) else {
                    return Cli::Invalid;
                };
                args.trace_out = Some(v.clone());
                i += 2;
            }
            "--faults" => {
                let Some(v) = rest.get(i + 1) else {
                    return Cli::Invalid;
                };
                let Some(p) = FaultProfile::by_name(v) else {
                    eprintln!("unknown fault profile: {v} (expected none, light, or heavy)");
                    return Cli::Invalid;
                };
                args.faults = Some(p);
                i += 2;
            }
            "--seeds" => {
                let Some(v) = rest.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return Cli::Invalid;
                };
                args.seeds = v;
                i += 2;
            }
            "--jobs" => {
                let Some(v) = rest.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return Cli::Invalid;
                };
                args.jobs = v;
                i += 2;
            }
            "--reps" => {
                let Some(v) = rest.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return Cli::Invalid;
                };
                args.reps = v;
                i += 2;
            }
            "--filter" => {
                let Some(v) = rest.get(i + 1) else {
                    return Cli::Invalid;
                };
                args.filter = Some(v.clone());
                i += 2;
            }
            "--limit" => {
                let Some(v) = rest.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return Cli::Invalid;
                };
                args.limit = v;
                i += 2;
            }
            "--collapsed" => {
                let Some(v) = rest.get(i + 1) else {
                    return Cli::Invalid;
                };
                args.collapsed = Some(v.clone());
                i += 2;
            }
            "--input" => {
                let Some(v) = rest.get(i + 1) else {
                    return Cli::Invalid;
                };
                args.input = Some(v.clone());
                i += 2;
            }
            "--telemetry-out" => {
                let Some(v) = rest.get(i + 1) else {
                    return Cli::Invalid;
                };
                args.telemetry_out = Some(v.clone());
                i += 2;
            }
            "--check" => {
                let Some(v) = rest.get(i + 1) else {
                    return Cli::Invalid;
                };
                args.check = Some(v.clone());
                i += 2;
            }
            "--tolerance" => {
                let Some(v) = rest.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return Cli::Invalid;
                };
                args.tolerance = v;
                i += 2;
            }
            "--addr" => {
                let Some(v) = rest.get(i + 1) else {
                    return Cli::Invalid;
                };
                args.addr = v.clone();
                i += 2;
            }
            "--rate" => {
                let Some(v) = rest.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return Cli::Invalid;
                };
                args.rate = Some(v);
                i += 2;
            }
            "--print-routes" => {
                args.print_routes = true;
                i += 1;
            }
            "--clients" => {
                let Some(v) = rest.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return Cli::Invalid;
                };
                args.clients = v;
                i += 2;
            }
            "--requests" => {
                let Some(v) = rest.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return Cli::Invalid;
                };
                args.requests = v;
                i += 2;
            }
            "--min-throughput" => {
                let Some(v) = rest.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return Cli::Invalid;
                };
                args.min_throughput = Some(v);
                i += 2;
            }
            "--quick" => {
                args.quick = true;
                i += 1;
            }
            "--filter-on" => {
                args.filter_on = true;
                i += 1;
            }
            "--decoys" => {
                args.decoys = true;
                i += 1;
            }
            "--profile" => {
                args.profile = true;
                i += 1;
            }
            "--deny" => {
                args.deny = true;
                i += 1;
            }
            "--rule" => {
                let Some(v) = rest.get(i + 1) else {
                    return Cli::Invalid;
                };
                if !pwnd_lint::rules::is_known_rule(v) {
                    eprintln!(
                        "unknown rule `{v}` (known: {})",
                        pwnd_lint::known_rule_ids()
                    );
                    return Cli::Invalid;
                }
                args.rules.insert(v.clone());
                i += 2;
            }
            "--json" => {
                // For bench and serve-bench, --json names the output
                // file; everywhere else it is a boolean switch.
                if command == "bench" || command == "serve-bench" {
                    let Some(v) = rest.get(i + 1) else {
                        return Cli::Invalid;
                    };
                    args.json_out = Some(v.clone());
                    i += 2;
                } else {
                    args.json = true;
                    i += 1;
                }
            }
            other => {
                eprintln!("unknown flag: {other}");
                return Cli::Invalid;
            }
        }
    }
    Cli::Command(command, Box::new(args))
}

fn config_of(a: &Args) -> ExperimentConfig {
    let mut cfg = if a.quick {
        ExperimentConfig::quick(a.seed)
    } else {
        ExperimentConfig::paper(a.seed)
    };
    cfg.login_filter_enabled = a.filter_on;
    cfg.seed_decoys = a.decoys;
    if let Some(p) = &a.faults {
        cfg.faults.profile = p.clone();
        // A faulted run gets the resilient defaults: confirmed
        // classification so flakes cannot mislabel an account.
        cfg.faults.confirm_failures = 3;
    }
    cfg
}

fn main() -> ExitCode {
    let (command, args) = match parse(std::env::args()) {
        Cli::Help => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Cli::Invalid => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
        Cli::Command(command, args) => (command, args),
    };
    if let Err(msg) = cli::validate_batch_flags(&command, args.jobs, args.accounts) {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }
    match command.as_str() {
        "run" => {
            if args.profile {
                let sink = TelemetrySink::enabled();
                let out = Experiment::new(config_of(&args))
                    .with_telemetry(sink.clone())
                    .run();
                println!("{}", out.analysis().render());
                println!("{}", out.telemetry_report().render());
            } else {
                let out = Experiment::new(config_of(&args)).run();
                println!("{}", out.analysis().render());
            }
        }
        "trace" => {
            let sink = TelemetrySink::enabled();
            let out = Experiment::new(config_of(&args))
                .with_telemetry(sink.clone())
                .run();
            let report = out.telemetry_report();
            let jsonl = cli::filtered_trace_jsonl(&report, args.filter.as_deref(), args.limit);
            match &args.trace_out {
                Some(path) => {
                    if std::fs::write(path, &jsonl).is_err() {
                        eprintln!("cannot write {path}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!(
                        "wrote {path} ({} events kept of {} held, {} dropped)",
                        jsonl.lines().count(),
                        report.trace.len(),
                        report.trace_dropped
                    );
                }
                None => print!("{jsonl}"),
            }
        }
        "profile" => {
            // Deep attribution: where did the wall time go, by span
            // path. Online (run an instrumented experiment) or offline
            // (re-merge a fleet's streamed --telemetry-out JSONL).
            let report = match &args.input {
                Some(path) => {
                    let text = match std::fs::read_to_string(path) {
                        Ok(t) => t,
                        Err(_) => {
                            eprintln!("cannot read {path}");
                            return ExitCode::FAILURE;
                        }
                    };
                    match cli::merge_telemetry_jsonl(&text) {
                        Ok(r) => r,
                        Err(e) => {
                            eprintln!("{path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                None => {
                    let sink = TelemetrySink::enabled();
                    let _ = Experiment::new(config_of(&args))
                        .with_telemetry(sink.clone())
                        .run();
                    sink.report()
                }
            };
            print!("{}", cli::profile_report(&report, args.limit));
            if let Some(path) = &args.collapsed {
                let stacks = report.spans.collapsed();
                if std::fs::write(path, &stacks).is_err() {
                    eprintln!("cannot write {path}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {path} ({} stacks)", stacks.lines().count());
            }
        }
        "export" => {
            let out = Experiment::new(config_of(&args)).run();
            let json = out.dataset_json();
            if std::fs::write(&args.out, &json).is_err() {
                eprintln!("cannot write {}", args.out);
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {} ({} accesses, {} KiB)",
                args.out,
                out.dataset.accesses.len(),
                json.len() / 1024
            );
        }
        "sweep" => {
            // Configs are built once up front, then the whole batch goes
            // through the parallel runner. Outputs come back in
            // submission order, so this output is byte-identical for any
            // --jobs value (tests/parallel_runner.rs proves it).
            let configs = cli::sweep_configs(&config_of(&args), args.seeds);
            let batch = Runner::new(args.jobs)
                .with_telemetry(args.profile)
                .run_all(configs);
            print!("{}", cli::sweep_table(&batch.outputs, args.seed));
            println!(
                "paper: 326 accesses, 147 opened, 845 sent, 42 blocked, 36 hijacked, 90 accounts"
            );
            if args.profile {
                print!("{}", cli::batch_profile_report(&batch));
            }
        }
        "chaos" => {
            // Ablation: scale one fault profile's rates and chart how much
            // of the observation the pipeline loses. Deterministic for a
            // fixed seed — CI runs it twice and diffs the output.
            let base = args.faults.clone().unwrap_or_else(FaultProfile::heavy);
            let configs = cli::chaos_configs(&config_of(&args), &base);
            let batch = Runner::new(args.jobs)
                .with_telemetry(args.profile)
                .run_all(configs);
            print!("{}", cli::chaos_table(&batch.outputs));
            println!("factor 0.00 injects nothing; rates scale linearly up to the profile's own.");
            if args.profile {
                print!("{}", cli::batch_profile_report(&batch));
            }
        }
        "fleet" => {
            // One logical experiment sharded over the runner; the merge
            // is deterministic, so summary and exports are byte-identical
            // for any --jobs value (tests/fleet_scale.rs proves it).
            let cfg =
                FleetConfig::new(args.seed, args.accounts, args.jobs).with_telemetry(args.profile);
            if let Some(dir) = &args.out_dir {
                // Durable sharded store: verified shards are skipped on
                // re-runs, corrupt ones quarantined and re-run, and the
                // merged dataset stays byte-identical to an in-memory
                // fleet (tests/fleet_store.rs proves it).
                if args.telemetry_out.is_some() {
                    eprintln!("pwnd fleet: --telemetry-out is not supported with --out-dir");
                    return ExitCode::FAILURE;
                }
                let dir = std::path::Path::new(dir);
                let run = match pwnd::store::run_fleet_store(&cfg, dir) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("pwnd fleet: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if run.manifest_recovered {
                    eprintln!(
                        "quarantined unreadable manifest as manifest.json.corrupt; store rebuilt"
                    );
                }
                print!("{}", run.summary_table().render());
                if args.out_given {
                    let file = match std::fs::File::create(&args.out) {
                        Ok(f) => f,
                        Err(_) => {
                            eprintln!("cannot write {}", args.out);
                            return ExitCode::FAILURE;
                        }
                    };
                    match pwnd::store::merge_store_jsonl(dir, std::io::BufWriter::new(file)) {
                        Ok(records) => eprintln!("wrote {} ({records} JSONL records)", args.out),
                        Err(e) => {
                            eprintln!("cannot write {}: {e}", args.out);
                            return ExitCode::FAILURE;
                        }
                    }
                }
                if args.profile {
                    println!("{}", run.telemetry.render());
                }
                return ExitCode::SUCCESS;
            }
            let out = match &args.telemetry_out {
                Some(path) => {
                    // Stream one telemetry report line per shard while
                    // the fleet runs; telemetry is forced on. Memory
                    // stays O(jobs) buffered lines whatever --accounts.
                    let file = match std::fs::File::create(path) {
                        Ok(f) => f,
                        Err(_) => {
                            eprintln!("cannot write {path}");
                            return ExitCode::FAILURE;
                        }
                    };
                    match run_fleet_streaming(&cfg, std::io::BufWriter::new(file)) {
                        Ok(out) => {
                            eprintln!("wrote {path} ({} report lines)", out.shards);
                            out
                        }
                        Err(_) => {
                            eprintln!("cannot write {path}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                None => run_fleet(&cfg),
            };
            print!("{}", out.summary_table().render());
            if args.out_given {
                let file = match std::fs::File::create(&args.out) {
                    Ok(f) => f,
                    Err(_) => {
                        eprintln!("cannot write {}", args.out);
                        return ExitCode::FAILURE;
                    }
                };
                match out.write_jsonl(std::io::BufWriter::new(file)) {
                    Ok(records) => eprintln!("wrote {} ({records} JSONL records)", args.out),
                    Err(_) => {
                        eprintln!("cannot write {}", args.out);
                        return ExitCode::FAILURE;
                    }
                }
            }
            if args.profile {
                println!("{}", out.telemetry.render());
            }
        }
        "report" => {
            // §4.1 overview over an exported dataset without loading it
            // whole: a fleet store directory streams shard by shard; a
            // JSONL file is verified complete before it is summarised.
            let Some(input) = &args.input else {
                eprintln!(
                    "pwnd report: --input PATH is required \
                     (a fleet store directory or a JSONL dataset file)"
                );
                return ExitCode::FAILURE;
            };
            let path = std::path::Path::new(input);
            let ov = if path.is_dir() {
                match pwnd::store::store_overview(path) {
                    Ok(o) => o,
                    Err(e) => {
                        eprintln!("pwnd report: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("pwnd report: cannot read {input}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let read = match pwnd::monitor::export::read_jsonl(&text) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("pwnd report: {input}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Some(t) = &read.truncated {
                    eprintln!(
                        "pwnd report: {input}: truncated write — line {} is a partial \
                         record ({} bytes); re-export the dataset",
                        t.line, t.bytes
                    );
                    return ExitCode::FAILURE;
                }
                pwnd::analysis::tables::overview(&read.dataset)
            };
            print!("{}", cli::overview_table(&ov));
        }
        "serve" => {
            if args.print_routes {
                // The machine-checkable route list: CI diffs this
                // against the endpoints API.md documents.
                for r in pwnd::serve::ROUTES {
                    println!("{} {}", r.method, r.pattern);
                }
                return ExitCode::SUCCESS;
            }
            let Some(input) = &args.input else {
                eprintln!("pwnd serve: --input DIR is required (a fleet store directory)");
                return ExitCode::FAILURE;
            };
            let index = match pwnd::serve::QueryIndex::from_store(std::path::Path::new(input)) {
                Ok(idx) => std::sync::Arc::new(idx),
                Err(e) => {
                    eprintln!("pwnd serve: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let sink = if args.profile {
                TelemetrySink::enabled()
            } else {
                TelemetrySink::disabled()
            };
            // A worker owns its connection for that connection's
            // lifetime, so the pool bounds concurrent clients; floor it
            // at 4 even on small machines.
            let threads = args.jobs.clamp(4, 64);
            let opts = pwnd::serve::ServeOptions {
                threads,
                rate: args.rate.map(pwnd::serve::RateLimit::per_second),
                telemetry: sink.clone(),
            };
            let server = match pwnd::serve::Server::bind(&args.addr, index, opts) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("pwnd serve: cannot bind {}: {e}", args.addr);
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "pwnd serve: {} on http://{}/ ({threads} threads{}); EOF on stdin stops it",
                input,
                server.addr(),
                match args.rate {
                    Some(n) => format!(", rate limit {n}/s"),
                    None => String::new(),
                }
            );
            // Graceful-shutdown trigger without signal handling: the
            // daemon runs until its stdin closes (Ctrl-D interactively,
            // pipe closure under a supervisor, `kill` otherwise).
            let mut sink_hole = String::new();
            loop {
                sink_hole.clear();
                match std::io::Read::read_to_string(&mut std::io::stdin(), &mut sink_hole) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
            server.shutdown();
            eprintln!("pwnd serve: stopped");
            if args.profile {
                println!("{}", sink.report().render());
            }
        }
        "serve-bench" => {
            // Hammer an in-process daemon over the store and report
            // throughput + latency percentiles (the BENCH trajectory's
            // serving numbers).
            let Some(input) = &args.input else {
                eprintln!("pwnd serve-bench: --input DIR is required (a fleet store directory)");
                return ExitCode::FAILURE;
            };
            let index = match pwnd::serve::QueryIndex::from_store(std::path::Path::new(input)) {
                Ok(idx) => std::sync::Arc::new(idx),
                Err(e) => {
                    eprintln!("pwnd serve-bench: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let opts = pwnd::serve::ServeOptions {
                // Every closed-loop client pins a worker for the whole
                // run, so the pool must cover them all.
                threads: args.jobs.clamp(4, 64).max(args.clients),
                rate: args.rate.map(pwnd::serve::RateLimit::per_second),
                telemetry: TelemetrySink::disabled(),
            };
            let server = match pwnd::serve::Server::bind("127.0.0.1:0", index.clone(), opts) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("pwnd serve-bench: cannot bind: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mix = pwnd::serve::loadgen::query_mix(&index, 16);
            let result = pwnd::serve::loadgen::run(
                server.addr(),
                &mix,
                &pwnd::serve::LoadgenOptions {
                    clients: args.clients,
                    requests: args.requests,
                },
            );
            server.shutdown();
            let report = match result {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("pwnd serve-bench: {e}");
                    return ExitCode::FAILURE;
                }
            };
            print!("{}", report.table().render());
            if let Some(path) = &args.json_out {
                if std::fs::write(path, report.to_json()).is_err() {
                    eprintln!("cannot write {path}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {path}");
            }
            if report.server_errors > 0 {
                eprintln!(
                    "pwnd serve-bench: {} server error(s) (5xx) — failing",
                    report.server_errors
                );
                return ExitCode::FAILURE;
            }
            if let Some(floor) = args.min_throughput {
                if report.throughput_rps < floor {
                    eprintln!(
                        "pwnd serve-bench: throughput {:.0} req/s is below the {floor:.0} req/s floor",
                        report.throughput_rps
                    );
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "pwnd serve-bench: {:.0} req/s clears the {floor:.0} req/s floor",
                    report.throughput_rps
                );
            }
        }
        "bench" => {
            let report = cli::bench_report(args.reps, args.jobs);
            if let Some(path) = &args.check {
                // The perf-regression gate: compare this machine's fresh
                // medians against a committed baseline.
                let baseline = match std::fs::read_to_string(path)
                    .map_err(|e| e.to_string())
                    .and_then(|t| Json::parse(&t).map_err(|e| e.to_string()))
                {
                    Ok(j) => j,
                    Err(e) => {
                        eprintln!("cannot read baseline {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let check = cli::bench_check(&report, &baseline, args.tolerance);
                print!("{}", check.table);
                if !check.regressions.is_empty() {
                    eprintln!(
                        "bench --check: {} regression(s) beyond {}%:",
                        check.regressions.len(),
                        args.tolerance
                    );
                    for r in &check.regressions {
                        eprintln!("  {r}");
                    }
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "bench --check: all metrics within {}% of {path}",
                    args.tolerance
                );
                return ExitCode::SUCCESS;
            }
            let json = report.pretty();
            match &args.json_out {
                Some(path) => {
                    if std::fs::write(path, format!("{json}\n")).is_err() {
                        eprintln!("cannot write {path}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote {path}");
                }
                None => println!("{json}"),
            }
        }
        "leaks" => {
            let out = Experiment::new(config_of(&args)).run();
            println!(
                "{:<5} {:<8} {:<24} {:<10} content",
                "acct", "outlet", "site", "day"
            );
            for l in &out.leaks {
                println!(
                    "{:<5} {:<8} {:<24} {:<10.1} {}",
                    l.account,
                    l.kind.label(),
                    l.site,
                    l.at.as_days_f64(),
                    l.content.render()
                );
            }
        }
        "truth" => {
            let out = Experiment::new(config_of(&args)).run();
            let gt = &out.ground_truth;
            let mut table = Table::new(&["ground truth", "value"]).numeric();
            table.row(["attempted accesses", &gt.attempted_accesses.to_string()]);
            table.row(["observed accesses", &out.dataset.accesses.len().to_string()]);
            table.row(["hijacked (truth)", &gt.hijacked_accounts.len().to_string()]);
            table.row(["blocked (truth)", &gt.blocked_accounts.len().to_string()]);
            table.row(["sinkholed messages", &gt.sinkholed_messages.to_string()]);
            table.row(["scripts deleted", &gt.scripts_deleted.len().to_string()]);
            table.row(["quota notices", &gt.quota_notices_delivered.to_string()]);
            table.row(["forum inquiries", &gt.inquiries.len().to_string()]);
            print!("{}", table.render());
            let mut q = gt.searched_queries.clone();
            q.sort_unstable();
            q.dedup();
            println!("distinct queries   : {q:?}");
        }
        "lint" => {
            let root = match std::env::current_dir()
                .ok()
                .and_then(|d| pwnd_lint::find_workspace_root(&d))
            {
                Some(r) => r,
                None => {
                    eprintln!("pwnd lint: no workspace root found above the current directory");
                    return ExitCode::FAILURE;
                }
            };
            let only = (!args.rules.is_empty()).then_some(&args.rules);
            let report = match pwnd_lint::lint_workspace(&root, only) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("pwnd lint: scan failed under {}: {e}", root.display());
                    return ExitCode::FAILURE;
                }
            };
            let sink = TelemetrySink::enabled();
            for (rule, n) in report.counts_by_rule() {
                for _ in 0..n {
                    sink.count_labeled("lint.findings", &rule);
                }
            }
            if args.json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render());
            }
            if args.profile {
                println!("{}", sink.report().render());
            }
            if args.deny && !report.findings.is_empty() {
                return ExitCode::FAILURE;
            }
        }
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
