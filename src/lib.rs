#![warn(missing_docs)]

//! # pwnd — honey webmail accounts, end to end
//!
//! A full reproduction of *"What Happens After You Are Pwnd:
//! Understanding the Use of Leaked Webmail Credentials in the Wild"*
//! (Onaolapo, Mariconti, Stringhini — IMC 2016) as a deterministic Rust
//! simulation testbed: the webmail service, the Apps-Script-style
//! monitoring, the leak outlets (paste sites, underground forums,
//! information-stealing malware), a calibrated criminal population, and
//! the paper's complete analysis pipeline.
//!
//! This facade crate re-exports every subsystem under one roof:
//!
//! | module | crate | what it is |
//! |---|---|---|
//! | [`sim`] | `pwnd-sim` | discrete-event engine, deterministic RNG |
//! | [`net`] | `pwnd-net` | IP plan, geolocation, Tor, DNSBL, user agents |
//! | [`corpus`] | `pwnd-corpus` | personas + synthetic Enron-like corpus |
//! | [`webmail`] | `pwnd-webmail` | the Gmail-like service simulator |
//! | [`monitor`] | `pwnd-monitor` | scripts, scraper, the published dataset |
//! | [`leak`] | `pwnd-leak` | outlets and the resale market |
//! | [`attacker`] | `pwnd-attacker` | the calibrated criminal population |
//! | [`analysis`] | `pwnd-analysis` | §4 figures, tables, CvM, TF-IDF |
//! | [`telemetry`] | `pwnd-telemetry` | metrics, run tracing, phase profiling |
//! | [`faults`] | `pwnd-faults` | deterministic fault injection + retry policy |
//! | [`core`] | `pwnd-core` | experiment orchestration, runner, fleet engine |
//! | [`serve`] | `pwnd-serve` | breach-intelligence query daemon over fleet stores |
//! | [`lint`] | `pwnd-lint` | the determinism & invariant linter (CI gate) |
//!
//! ## Quickstart
//!
//! ```no_run
//! use pwnd::{Experiment, ExperimentConfig};
//!
//! let output = Experiment::new(ExperimentConfig::paper(2016)).run();
//! println!("{}", output.analysis().render());
//! ```

pub mod cli;
pub mod store;

pub use pwnd_analysis as analysis;
pub use pwnd_attacker as attacker;
pub use pwnd_core as core;
pub use pwnd_corpus as corpus;
pub use pwnd_faults as faults;
pub use pwnd_leak as leak;
pub use pwnd_lint as lint;
pub use pwnd_monitor as monitor;
pub use pwnd_net as net;
pub use pwnd_serve as serve;
pub use pwnd_sim as sim;
pub use pwnd_telemetry as telemetry;
pub use pwnd_webmail as webmail;

pub use pwnd_core::{
    Batch, BatchProfile, Experiment, ExperimentConfig, FleetConfig, FleetOutput, GroundTruth,
    Interner, RunOutput, Runner, Symbol,
};
pub use pwnd_faults::{FaultProfile, RetryPolicy};
