//! The crash-safe fleet store: durable sharded datasets on disk.
//!
//! `pwnd fleet --out-dir DIR` persists each shard the moment it
//! completes instead of merging everything in RAM: one JSONL file per
//! shard (account ids already rewritten to the shard's global range)
//! plus a versioned `manifest.json` recording, per shard, the seed,
//! account range, config content-hash, fault profile, and the shard
//! file's SHA-256. The layout makes three things cheap:
//!
//! * **Resume** — on restart, a shard whose manifest entry matches its
//!   spec *and* whose file hashes clean is skipped
//!   (`fleet.shards_skipped`); a `kill -9` mid-fleet costs at most the
//!   shards that were in flight.
//! * **Incremental extension** — `--accounts 1000` over an existing
//!   200-account store reuses the verified shards and runs only the
//!   extension, because shard `i`'s bytes depend only on
//!   `(fleet seed, i, shard size)`.
//! * **Recovery** — a truncated, bit-flipped, or otherwise corrupted
//!   shard fails its hash check, is quarantined as `<file>.corrupt`
//!   (`fleet.shards_recovered`), and is deterministically re-run; the
//!   rebuilt store is byte-identical to an uninterrupted run.
//!
//! This module owns the *write* side of the format. The manifest model
//! and the verified reader ([`VerifiedStore`]) live in
//! [`pwnd_serve::store`] so the query daemon can consume stores without
//! depending on the CLI crate; they are re-exported here unchanged, so
//! existing `pwnd::store::{Manifest, ShardEntry, ...}` imports keep
//! working.
//!
//! ## Atomicity protocol
//!
//! Every durable write — shard file or manifest — goes through
//! [`FleetStore::atomic_write`]: write to `<name>.tmp` in the same
//! directory, `fsync` the file, `rename` over the final name, `fsync`
//! the directory. A crash therefore leaves either the old bytes or the
//! new bytes, never a torn file; the manifest is rewritten after each
//! shard lands, so it never *claims* a shard whose file isn't already
//! durable.
//!
//! The merge ([`merge_store_jsonl`]) streams shard files once per
//! record kind in shard order, copying raw lines — no record is ever
//! reparsed or reserialized, so the merged JSONL is byte-identical to
//! [`FleetOutput::write_jsonl`](pwnd_core::FleetOutput::write_jsonl)
//! on an in-memory run of the same config, and peak memory is one line.

pub use pwnd_serve::store::{
    file_sha256, shard_file_name, shard_state, Manifest, ShardEntry, ShardState, VerifiedStore,
    MANIFEST_FILE, MANIFEST_FORMAT,
};

use pwnd_analysis::stream::OverviewBuilder;
use pwnd_analysis::tables::Overview;
use pwnd_core::fleet::{run_fleet_shards, FleetConfig, ShardSpec};
use pwnd_core::hash::Sha256;
use pwnd_monitor::dataset::{AccountRecord, ParsedAccess};
use pwnd_monitor::export::{record_tag, tags, RECORD_TAGS};
use pwnd_telemetry::json::Json;
use pwnd_telemetry::{Table, TelemetryReport, TelemetrySink};
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex; // lint:allow(lock-discipline): manifest guard for the resumable fleet run

/// A fleet store directory, opened for writing.
pub struct FleetStore {
    dir: PathBuf,
}

impl FleetStore {
    /// Open (creating if needed) the store directory.
    pub fn open(dir: &Path) -> io::Result<FleetStore> {
        fs::create_dir_all(dir)?;
        Ok(FleetStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Absolute path of a file inside the store.
    pub fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Durably replace `name` with `bytes`: same-directory temp file,
    /// `fsync`, `rename`, directory `fsync`. A crash at any point
    /// leaves either the previous file or the new one, never a torn
    /// mixture.
    pub fn atomic_write(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!("{name}.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.path(name))?;
        // Make the rename itself durable.
        File::open(&self.dir)?.sync_all()?;
        Ok(())
    }

    /// Load the manifest. Returns `(manifest, quarantined)`: a missing
    /// manifest is `(None, false)` (fresh store); an unreadable or
    /// malformed one is quarantined as `manifest.json.corrupt` and
    /// reported as `(None, true)` — every shard then re-runs, because
    /// without the manifest no shard file can be trusted.
    pub fn load_manifest(&self) -> io::Result<(Option<Manifest>, bool)> {
        let text = match fs::read_to_string(self.path(MANIFEST_FILE)) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((None, false)),
            // Non-UTF-8 bytes are corruption like any other, not a
            // reason to refuse to run.
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                self.quarantine(MANIFEST_FILE)?;
                return Ok((None, true));
            }
            Err(e) => return Err(e),
        };
        match Manifest::parse(&text) {
            Some(m) => Ok((Some(m), false)),
            None => {
                self.quarantine(MANIFEST_FILE)?;
                Ok((None, true))
            }
        }
    }

    /// Atomically persist the manifest.
    pub fn write_manifest(&self, m: &Manifest) -> io::Result<()> {
        self.atomic_write(MANIFEST_FILE, m.to_json().as_bytes())
    }

    /// Move `name` aside as `<name>.corrupt` (replacing any previous
    /// quarantine of the same file), preserving the bytes for a
    /// post-mortem instead of silently overwriting them.
    pub fn quarantine(&self, name: &str) -> io::Result<()> {
        fs::rename(self.path(name), self.path(&format!("{name}.corrupt")))
    }

    fn verify_shard(&self, entry: &ShardEntry) -> io::Result<ShardState> {
        shard_state(&self.dir, entry)
    }
}

/// What a store-backed fleet run did.
#[derive(Debug)]
pub struct StoreRun {
    /// The store directory.
    pub dir: PathBuf,
    /// Total honey accounts the store now covers for this config.
    pub accounts: u32,
    /// Shards the population decomposes into.
    pub shards_total: usize,
    /// Shards reused because their manifest entry verified on disk.
    pub shards_skipped: u64,
    /// Corrupted shard files quarantined and deterministically re-run.
    pub shards_recovered: u64,
    /// Shards actually executed this run.
    pub shards_run: usize,
    /// Whether a corrupt manifest was quarantined (forces a full
    /// re-run).
    pub manifest_recovered: bool,
    /// Worker threads used.
    pub jobs: usize,
    /// High-water per-shard resident state, in bytes (0 when every
    /// shard was skipped).
    pub peak_rss_proxy: u64,
    /// Merged telemetry: the runner batch (when enabled) plus the
    /// always-on `fleet.*` series, including `fleet.shards_skipped`
    /// and `fleet.shards_recovered`.
    pub telemetry: TelemetryReport,
}

impl StoreRun {
    /// The store summary table (`pwnd fleet --out-dir` output).
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new(&["fleet store metric", "value"]).numeric();
        t.row(["out dir", &self.dir.display().to_string()]);
        t.row(["accounts", &self.accounts.to_string()]);
        t.row(["shards", &self.shards_total.to_string()]);
        t.row([
            "shards skipped (verified)",
            &self.shards_skipped.to_string(),
        ]);
        t.row([
            "shards recovered (corrupt)",
            &self.shards_recovered.to_string(),
        ]);
        t.row(["shards run", &self.shards_run.to_string()]);
        t.row(["jobs", &self.jobs.to_string()]);
        t.row(["peak shard state (bytes)", &self.peak_rss_proxy.to_string()]);
        t
    }
}

/// Run a fleet against a persistent store: verify and reuse what's on
/// disk, quarantine what's corrupt, execute only the shards that are
/// missing or stale, and keep the manifest durably in sync after every
/// shard. See the module docs for the full protocol.
pub fn run_fleet_store(cfg: &FleetConfig, dir: &Path) -> io::Result<StoreRun> {
    let store = FleetStore::open(dir)?;
    let specs = cfg.shard_specs();
    let (manifest, manifest_recovered) = store.load_manifest()?;

    if let Some(m) = &manifest {
        if m.seed != cfg.seed {
            return Err(io::Error::other(format!(
                "fleet store {} was built with seed {}; refusing to mix in seed {} \
                 (resume with the original seed or use a fresh --out-dir)",
                dir.display(),
                m.seed,
                cfg.seed,
            )));
        }
        if m.template_sha256 != cfg.template_fingerprint() {
            return Err(io::Error::other(format!(
                "fleet store {} was built from a different experiment config \
                 (template hash {} != {}); use a fresh --out-dir",
                dir.display(),
                m.template_sha256,
                cfg.template_fingerprint(),
            )));
        }
    }

    // Plan: decide per shard between reuse, recovery, and (re-)run.
    let mut pruned = Manifest {
        seed: cfg.seed,
        template_sha256: cfg.template_fingerprint(),
        shards: Vec::new(),
    };
    let mut to_run: Vec<ShardSpec> = Vec::new();
    let mut skipped = 0u64;
    let mut recovered = 0u64;
    for spec in &specs {
        match manifest.as_ref().and_then(|m| m.entry(spec.index)) {
            Some(e) if e.spec == *spec => match store.verify_shard(e)? {
                ShardState::Verified => {
                    pruned.upsert(e.clone());
                    skipped += 1;
                }
                ShardState::Missing => to_run.push(spec.clone()),
                ShardState::Corrupt => {
                    store.quarantine(&e.file)?;
                    recovered += 1;
                    to_run.push(spec.clone());
                }
            },
            // Spec drift (e.g. yesterday's tail shard is a full shard
            // after --accounts grew): not corruption, just stale — the
            // deterministic re-run atomically replaces the file.
            Some(_) => to_run.push(spec.clone()),
            None => to_run.push(spec.clone()),
        }
    }
    // Claims beyond this run's population (a previous, larger run)
    // stay: they are someone else's shards to verify when asked for.
    if let Some(m) = &manifest {
        for e in &m.shards {
            if e.spec.index >= specs.len() {
                pruned.upsert(e.clone());
            }
        }
    }
    // Persist the pruned view before running, so no claim ever points
    // at a quarantined or about-to-be-replaced file.
    store.write_manifest(&pruned)?;

    // Execute. Each completed shard is made durable (file, then
    // manifest) from inside the worker that produced it.
    // lint:allow(lock-discipline): serializes manifest writes from fleet workers; ordering is by shard index, so the run stays deterministic
    let manifest_state = Mutex::new(pruned);
    let summary = run_fleet_shards(cfg, &to_run, |spec, bytes| {
        let file = shard_file_name(spec.index);
        store.atomic_write(&file, bytes)?;
        let entry = ShardEntry {
            spec: spec.clone(),
            sha256: Sha256::digest_hex(bytes),
            records: bytes.iter().filter(|&&b| b == b'\n').count() as u64,
            file,
        };
        let mut m = manifest_state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        m.upsert(entry);
        store.write_manifest(&m)
    })?;

    let sink = TelemetrySink::enabled();
    sink.gauge_set("fleet.accounts", u64::from(cfg.accounts));
    sink.gauge_set("fleet.shards", specs.len() as u64);
    sink.count_by("fleet.shards_skipped", skipped);
    sink.count_by("fleet.shards_recovered", recovered);
    sink.count_by("fleet.shards_run", summary.shards_run as u64);
    sink.gauge_max("fleet.peak_rss_proxy", summary.peak_rss_proxy);

    Ok(StoreRun {
        dir: dir.to_path_buf(),
        accounts: cfg.accounts,
        shards_total: specs.len(),
        shards_skipped: skipped,
        shards_recovered: recovered,
        shards_run: summary.shards_run,
        manifest_recovered,
        jobs: summary.jobs,
        peak_rss_proxy: summary.peak_rss_proxy,
        telemetry: TelemetryReport::merge(&[summary.telemetry, sink.report()]),
    })
}

/// Stream-merge a verified store into one JSONL dataset on `out`,
/// byte-identical to
/// [`FleetOutput::write_jsonl`](pwnd_core::FleetOutput::write_jsonl)
/// of an uninterrupted in-memory run at the same seed/config. Walks
/// the shard files once per record kind in shard order, copying raw
/// lines — peak memory is one line. Returns records written.
// lint:jsonl-consume
pub fn merge_store_jsonl<W: Write>(dir: &Path, mut out: W) -> io::Result<u64> {
    let store = VerifiedStore::open(dir)?;
    let mut written = 0u64;
    for tag in RECORD_TAGS {
        store.for_each_line(|_, _, line| {
            if record_tag(line) == Some(tag) {
                out.write_all(line.as_bytes())?;
                out.write_all(b"\n")?;
                written += 1;
            }
            Ok(())
        })?;
    }
    out.flush()?;
    Ok(written)
}

/// Stream the §4.1 overview out of a verified store without ever
/// materializing the dataset: one pass over every shard file for the
/// account records, one for the accesses.
// lint:jsonl-consume
pub fn store_overview(dir: &Path) -> io::Result<Overview> {
    let store = VerifiedStore::open(dir)?;
    let mut b = OverviewBuilder::new();
    for tag in [tags::ACCOUNT, tags::ACCESS] {
        store.for_each_line(|e, lineno, line| {
            if record_tag(line) != Some(tag) {
                return Ok(());
            }
            (|| -> Result<(), pwnd_telemetry::json::JsonError> {
                let v = Json::parse(line)?;
                let value = v.get("value").ok_or(pwnd_telemetry::json::JsonError {
                    msg: "missing value".to_string(),
                    at: 0,
                })?;
                if tag == tags::ACCOUNT {
                    b.add_account(&AccountRecord::from_json_value(value)?);
                } else {
                    b.add_access(&ParsedAccess::from_json_value(value)?);
                }
                Ok(())
            })()
            .map_err(|err| {
                io::Error::other(format!(
                    "{}: line {lineno}: {tag} record: {}",
                    e.file, err.msg
                ))
            })
        })?;
    }
    Ok(b.finish())
}
