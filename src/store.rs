//! The crash-safe fleet store: durable sharded datasets on disk.
//!
//! `pwnd fleet --out-dir DIR` persists each shard the moment it
//! completes instead of merging everything in RAM: one JSONL file per
//! shard (account ids already rewritten to the shard's global range)
//! plus a versioned `manifest.json` recording, per shard, the seed,
//! account range, config content-hash, fault profile, and the shard
//! file's SHA-256. The layout makes three things cheap:
//!
//! * **Resume** — on restart, a shard whose manifest entry matches its
//!   spec *and* whose file hashes clean is skipped
//!   (`fleet.shards_skipped`); a `kill -9` mid-fleet costs at most the
//!   shards that were in flight.
//! * **Incremental extension** — `--accounts 1000` over an existing
//!   200-account store reuses the verified shards and runs only the
//!   extension, because shard `i`'s bytes depend only on
//!   `(fleet seed, i, shard size)`.
//! * **Recovery** — a truncated, bit-flipped, or otherwise corrupted
//!   shard fails its hash check, is quarantined as `<file>.corrupt`
//!   (`fleet.shards_recovered`), and is deterministically re-run; the
//!   rebuilt store is byte-identical to an uninterrupted run.
//!
//! ## Atomicity protocol
//!
//! Every durable write — shard file or manifest — goes through
//! [`FleetStore::atomic_write`]: write to `<name>.tmp` in the same
//! directory, `fsync` the file, `rename` over the final name, `fsync`
//! the directory. A crash therefore leaves either the old bytes or the
//! new bytes, never a torn file; the manifest is rewritten after each
//! shard lands, so it never *claims* a shard whose file isn't already
//! durable.
//!
//! The merge ([`merge_store_jsonl`]) streams shard files once per
//! record kind in shard order, copying raw lines — no record is ever
//! reparsed or reserialized, so the merged JSONL is byte-identical to
//! [`FleetOutput::write_jsonl`](pwnd_core::FleetOutput::write_jsonl)
//! on an in-memory run of the same config, and peak memory is one line.

use pwnd_analysis::stream::OverviewBuilder;
use pwnd_analysis::tables::Overview;
use pwnd_core::fleet::{run_fleet_shards, FleetConfig, ShardSpec};
use pwnd_core::hash::{hex, Sha256};
use pwnd_monitor::dataset::{AccountRecord, ParsedAccess};
use pwnd_monitor::export::{record_tag, tags, RECORD_TAGS};
use pwnd_telemetry::json::Json;
use pwnd_telemetry::{Table, TelemetryReport, TelemetrySink};
use std::fs::{self, File};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex; // lint:allow(lock-discipline): manifest guard for the resumable fleet run

/// Manifest format tag; bump on any incompatible layout change so old
/// stores are rejected loudly instead of misread.
pub const MANIFEST_FORMAT: &str = "pwnd-fleet-store/1";

/// The manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// The on-disk file name of shard `index`.
pub fn shard_file_name(index: usize) -> String {
    format!("shard-{index:05}.jsonl")
}

/// One verified-shard claim in the manifest: the shard's identity plus
/// the exact bytes its file must hash to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardEntry {
    /// The shard's identity (seed, size, account range, config hash).
    pub spec: ShardSpec,
    /// File name inside the store directory.
    pub file: String,
    /// SHA-256 of the shard file's bytes.
    pub sha256: String,
    /// JSONL records in the file.
    pub records: u64,
}

impl ShardEntry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("index".to_string(), Json::U(self.spec.index as u64)),
            ("seed".to_string(), Json::U(self.spec.seed)),
            (
                "accounts".to_string(),
                Json::U(u64::from(self.spec.accounts)),
            ),
            (
                "account_base".to_string(),
                Json::U(u64::from(self.spec.account_base)),
            ),
            (
                "config_sha256".to_string(),
                Json::Str(self.spec.config_fingerprint.clone()),
            ),
            (
                "fault_profile".to_string(),
                Json::Str(self.spec.fault_profile.clone()),
            ),
            ("file".to_string(), Json::Str(self.file.clone())),
            ("sha256".to_string(), Json::Str(self.sha256.clone())),
            ("records".to_string(), Json::U(self.records)),
        ])
    }

    fn from_json(v: &Json) -> Option<ShardEntry> {
        let str_of = |key: &str| v.get(key).and_then(Json::as_str).map(String::from);
        Some(ShardEntry {
            spec: ShardSpec {
                index: usize::try_from(v.get("index")?.as_u64()?).ok()?,
                seed: v.get("seed")?.as_u64()?,
                accounts: u32::try_from(v.get("accounts")?.as_u64()?).ok()?,
                account_base: u32::try_from(v.get("account_base")?.as_u64()?).ok()?,
                config_fingerprint: str_of("config_sha256")?,
                fault_profile: str_of("fault_profile")?,
            },
            file: str_of("file")?,
            sha256: str_of("sha256")?,
            records: v.get("records")?.as_u64()?,
        })
    }
}

/// The versioned store manifest: which fleet this store belongs to and
/// which shards are durably on disk.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Manifest {
    /// The fleet's master seed.
    pub seed: u64,
    /// [`FleetConfig::template_fingerprint`] of the fleet's config
    /// shape — "same seed, different experiment" is refused up front.
    pub template_sha256: String,
    /// Verified shard claims, sorted by shard index, at most one per
    /// index.
    pub shards: Vec<ShardEntry>,
}

impl Manifest {
    /// Serialize as pretty JSON (the manifest is small and hand-read
    /// during debugging; shard files carry the bulk).
    pub fn to_json(&self) -> String {
        let obj = Json::Obj(vec![
            ("format".to_string(), Json::Str(MANIFEST_FORMAT.to_string())),
            ("seed".to_string(), Json::U(self.seed)),
            (
                "template_config_sha256".to_string(),
                Json::Str(self.template_sha256.clone()),
            ),
            (
                "shards".to_string(),
                Json::Arr(self.shards.iter().map(ShardEntry::to_json).collect()),
            ),
        ]);
        let mut text = obj.pretty();
        text.push('\n');
        text
    }

    /// Parse a manifest; `None` for anything malformed or of a foreign
    /// format (callers treat that as corruption, not an error to
    /// propagate — the store quarantines and rebuilds).
    pub fn parse(text: &str) -> Option<Manifest> {
        let v = Json::parse(text).ok()?;
        if v.get("format")?.as_str()? != MANIFEST_FORMAT {
            return None;
        }
        let mut shards = v
            .get("shards")?
            .as_array()?
            .iter()
            .map(ShardEntry::from_json)
            .collect::<Option<Vec<_>>>()?;
        shards.sort_by_key(|e| e.spec.index);
        if shards
            .windows(2)
            .any(|w| w[0].spec.index == w[1].spec.index)
        {
            return None;
        }
        Some(Manifest {
            seed: v.get("seed")?.as_u64()?,
            template_sha256: v.get("template_config_sha256")?.as_str()?.to_string(),
            shards,
        })
    }

    /// The shard claim at `index`, if any.
    pub fn entry(&self, index: usize) -> Option<&ShardEntry> {
        self.shards.iter().find(|e| e.spec.index == index)
    }

    /// Insert or replace the claim for `entry`'s index, keeping the
    /// list sorted.
    pub fn upsert(&mut self, entry: ShardEntry) {
        match self
            .shards
            .binary_search_by_key(&entry.spec.index, |e| e.spec.index)
        {
            Ok(pos) => self.shards[pos] = entry,
            Err(pos) => self.shards.insert(pos, entry),
        }
    }
}

/// How a claimed shard file checked out on disk.
enum ShardState {
    /// File present, hash matches the claim.
    Verified,
    /// File absent (crash before it landed, or deleted).
    Missing,
    /// File present but its bytes don't hash to the claim.
    Corrupt,
}

/// A fleet store directory.
pub struct FleetStore {
    dir: PathBuf,
}

impl FleetStore {
    /// Open (creating if needed) the store directory.
    pub fn open(dir: &Path) -> io::Result<FleetStore> {
        fs::create_dir_all(dir)?;
        Ok(FleetStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Absolute path of a file inside the store.
    pub fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Durably replace `name` with `bytes`: same-directory temp file,
    /// `fsync`, `rename`, directory `fsync`. A crash at any point
    /// leaves either the previous file or the new one, never a torn
    /// mixture.
    pub fn atomic_write(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!("{name}.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.path(name))?;
        // Make the rename itself durable.
        File::open(&self.dir)?.sync_all()?;
        Ok(())
    }

    /// Load the manifest. Returns `(manifest, quarantined)`: a missing
    /// manifest is `(None, false)` (fresh store); an unreadable or
    /// malformed one is quarantined as `manifest.json.corrupt` and
    /// reported as `(None, true)` — every shard then re-runs, because
    /// without the manifest no shard file can be trusted.
    pub fn load_manifest(&self) -> io::Result<(Option<Manifest>, bool)> {
        let text = match fs::read_to_string(self.path(MANIFEST_FILE)) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((None, false)),
            // Non-UTF-8 bytes are corruption like any other, not a
            // reason to refuse to run.
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                self.quarantine(MANIFEST_FILE)?;
                return Ok((None, true));
            }
            Err(e) => return Err(e),
        };
        match Manifest::parse(&text) {
            Some(m) => Ok((Some(m), false)),
            None => {
                self.quarantine(MANIFEST_FILE)?;
                Ok((None, true))
            }
        }
    }

    /// Atomically persist the manifest.
    pub fn write_manifest(&self, m: &Manifest) -> io::Result<()> {
        self.atomic_write(MANIFEST_FILE, m.to_json().as_bytes())
    }

    /// Move `name` aside as `<name>.corrupt` (replacing any previous
    /// quarantine of the same file), preserving the bytes for a
    /// post-mortem instead of silently overwriting them.
    pub fn quarantine(&self, name: &str) -> io::Result<()> {
        fs::rename(self.path(name), self.path(&format!("{name}.corrupt")))
    }

    /// Streaming SHA-256 of a store file.
    fn file_sha256(&self, name: &str) -> io::Result<Option<String>> {
        let mut f = match File::open(self.path(name)) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut hasher = Sha256::new();
        let mut buf = [0u8; 65536];
        loop {
            let n = f.read(&mut buf)?;
            if n == 0 {
                break;
            }
            hasher.update(&buf[..n]);
        }
        Ok(Some(hex(&hasher.finalize())))
    }

    fn verify_shard(&self, entry: &ShardEntry) -> io::Result<ShardState> {
        Ok(match self.file_sha256(&entry.file)? {
            None => ShardState::Missing,
            Some(actual) if actual == entry.sha256 => ShardState::Verified,
            Some(_) => ShardState::Corrupt,
        })
    }
}

/// What a store-backed fleet run did.
#[derive(Debug)]
pub struct StoreRun {
    /// The store directory.
    pub dir: PathBuf,
    /// Total honey accounts the store now covers for this config.
    pub accounts: u32,
    /// Shards the population decomposes into.
    pub shards_total: usize,
    /// Shards reused because their manifest entry verified on disk.
    pub shards_skipped: u64,
    /// Corrupted shard files quarantined and deterministically re-run.
    pub shards_recovered: u64,
    /// Shards actually executed this run.
    pub shards_run: usize,
    /// Whether a corrupt manifest was quarantined (forces a full
    /// re-run).
    pub manifest_recovered: bool,
    /// Worker threads used.
    pub jobs: usize,
    /// High-water per-shard resident state, in bytes (0 when every
    /// shard was skipped).
    pub peak_rss_proxy: u64,
    /// Merged telemetry: the runner batch (when enabled) plus the
    /// always-on `fleet.*` series, including `fleet.shards_skipped`
    /// and `fleet.shards_recovered`.
    pub telemetry: TelemetryReport,
}

impl StoreRun {
    /// The store summary table (`pwnd fleet --out-dir` output).
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new(&["fleet store metric", "value"]).numeric();
        t.row(["out dir", &self.dir.display().to_string()]);
        t.row(["accounts", &self.accounts.to_string()]);
        t.row(["shards", &self.shards_total.to_string()]);
        t.row([
            "shards skipped (verified)",
            &self.shards_skipped.to_string(),
        ]);
        t.row([
            "shards recovered (corrupt)",
            &self.shards_recovered.to_string(),
        ]);
        t.row(["shards run", &self.shards_run.to_string()]);
        t.row(["jobs", &self.jobs.to_string()]);
        t.row(["peak shard state (bytes)", &self.peak_rss_proxy.to_string()]);
        t
    }
}

/// Run a fleet against a persistent store: verify and reuse what's on
/// disk, quarantine what's corrupt, execute only the shards that are
/// missing or stale, and keep the manifest durably in sync after every
/// shard. See the module docs for the full protocol.
pub fn run_fleet_store(cfg: &FleetConfig, dir: &Path) -> io::Result<StoreRun> {
    let store = FleetStore::open(dir)?;
    let specs = cfg.shard_specs();
    let (manifest, manifest_recovered) = store.load_manifest()?;

    if let Some(m) = &manifest {
        if m.seed != cfg.seed {
            return Err(io::Error::other(format!(
                "fleet store {} was built with seed {}; refusing to mix in seed {} \
                 (resume with the original seed or use a fresh --out-dir)",
                dir.display(),
                m.seed,
                cfg.seed,
            )));
        }
        if m.template_sha256 != cfg.template_fingerprint() {
            return Err(io::Error::other(format!(
                "fleet store {} was built from a different experiment config \
                 (template hash {} != {}); use a fresh --out-dir",
                dir.display(),
                m.template_sha256,
                cfg.template_fingerprint(),
            )));
        }
    }

    // Plan: decide per shard between reuse, recovery, and (re-)run.
    let mut pruned = Manifest {
        seed: cfg.seed,
        template_sha256: cfg.template_fingerprint(),
        shards: Vec::new(),
    };
    let mut to_run: Vec<ShardSpec> = Vec::new();
    let mut skipped = 0u64;
    let mut recovered = 0u64;
    for spec in &specs {
        match manifest.as_ref().and_then(|m| m.entry(spec.index)) {
            Some(e) if e.spec == *spec => match store.verify_shard(e)? {
                ShardState::Verified => {
                    pruned.upsert(e.clone());
                    skipped += 1;
                }
                ShardState::Missing => to_run.push(spec.clone()),
                ShardState::Corrupt => {
                    store.quarantine(&e.file)?;
                    recovered += 1;
                    to_run.push(spec.clone());
                }
            },
            // Spec drift (e.g. yesterday's tail shard is a full shard
            // after --accounts grew): not corruption, just stale — the
            // deterministic re-run atomically replaces the file.
            Some(_) => to_run.push(spec.clone()),
            None => to_run.push(spec.clone()),
        }
    }
    // Claims beyond this run's population (a previous, larger run)
    // stay: they are someone else's shards to verify when asked for.
    if let Some(m) = &manifest {
        for e in &m.shards {
            if e.spec.index >= specs.len() {
                pruned.upsert(e.clone());
            }
        }
    }
    // Persist the pruned view before running, so no claim ever points
    // at a quarantined or about-to-be-replaced file.
    store.write_manifest(&pruned)?;

    // Execute. Each completed shard is made durable (file, then
    // manifest) from inside the worker that produced it.
    // lint:allow(lock-discipline): serializes manifest writes from fleet workers; ordering is by shard index, so the run stays deterministic
    let manifest_state = Mutex::new(pruned);
    let summary = run_fleet_shards(cfg, &to_run, |spec, bytes| {
        let file = shard_file_name(spec.index);
        store.atomic_write(&file, bytes)?;
        let entry = ShardEntry {
            spec: spec.clone(),
            sha256: Sha256::digest_hex(bytes),
            records: bytes.iter().filter(|&&b| b == b'\n').count() as u64,
            file,
        };
        let mut m = manifest_state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        m.upsert(entry);
        store.write_manifest(&m)
    })?;

    let sink = TelemetrySink::enabled();
    sink.gauge_set("fleet.accounts", u64::from(cfg.accounts));
    sink.gauge_set("fleet.shards", specs.len() as u64);
    sink.count_by("fleet.shards_skipped", skipped);
    sink.count_by("fleet.shards_recovered", recovered);
    sink.count_by("fleet.shards_run", summary.shards_run as u64);
    sink.gauge_max("fleet.peak_rss_proxy", summary.peak_rss_proxy);

    Ok(StoreRun {
        dir: dir.to_path_buf(),
        accounts: cfg.accounts,
        shards_total: specs.len(),
        shards_skipped: skipped,
        shards_recovered: recovered,
        shards_run: summary.shards_run,
        manifest_recovered,
        jobs: summary.jobs,
        peak_rss_proxy: summary.peak_rss_proxy,
        telemetry: TelemetryReport::merge(&[summary.telemetry, sink.report()]),
    })
}

/// Load and validate a store for reading: the manifest must exist,
/// parse, and claim a contiguous shard range `0..n` whose files all
/// hash clean. Every reader (merge, report) goes through this, so a
/// mutated shard file or manifest entry can never be silently merged.
fn open_verified(dir: &Path) -> io::Result<(FleetStore, Manifest)> {
    let store = FleetStore::open(dir)?;
    let text = fs::read_to_string(store.path(MANIFEST_FILE)).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!(
                "{}: not a fleet store (no readable {MANIFEST_FILE}): {e}",
                dir.display()
            ),
        )
    })?;
    let manifest = Manifest::parse(&text).ok_or_else(|| {
        io::Error::other(format!(
            "{}: {MANIFEST_FILE} is corrupt or of an unknown format; \
             re-run `pwnd fleet --out-dir` to rebuild the store",
            dir.display()
        ))
    })?;
    for (i, e) in manifest.shards.iter().enumerate() {
        if e.spec.index != i {
            return Err(io::Error::other(format!(
                "{}: store is incomplete (no verified shard {i}); \
                 re-run `pwnd fleet --out-dir` to fill it",
                dir.display()
            )));
        }
        match store.verify_shard(e)? {
            ShardState::Verified => {}
            ShardState::Missing => {
                return Err(io::Error::other(format!(
                    "{}: shard file {} is missing; re-run `pwnd fleet --out-dir`",
                    dir.display(),
                    e.file
                )))
            }
            ShardState::Corrupt => {
                return Err(io::Error::other(format!(
                    "{}: shard file {} does not match its manifest hash \
                     (corrupt or tampered); re-run `pwnd fleet --out-dir` to recover",
                    dir.display(),
                    e.file
                )))
            }
        }
    }
    Ok((store, manifest))
}

/// Stream-merge a verified store into one JSONL dataset on `out`,
/// byte-identical to
/// [`FleetOutput::write_jsonl`](pwnd_core::FleetOutput::write_jsonl)
/// of an uninterrupted in-memory run at the same seed/config. Walks
/// the shard files once per record kind in shard order, copying raw
/// lines — peak memory is one line. Returns records written.
// lint:jsonl-consume
pub fn merge_store_jsonl<W: Write>(dir: &Path, mut out: W) -> io::Result<u64> {
    let (store, manifest) = open_verified(dir)?;
    let mut written = 0u64;
    for tag in RECORD_TAGS {
        for e in &manifest.shards {
            let reader = BufReader::new(File::open(store.path(&e.file))?);
            for line in reader.lines() {
                let line = line?;
                if record_tag(&line) == Some(tag) {
                    out.write_all(line.as_bytes())?;
                    out.write_all(b"\n")?;
                    written += 1;
                }
            }
        }
    }
    out.flush()?;
    Ok(written)
}

/// Stream the §4.1 overview out of a verified store without ever
/// materializing the dataset: one pass over every shard file for the
/// account records, one for the accesses.
// lint:jsonl-consume
pub fn store_overview(dir: &Path) -> io::Result<Overview> {
    let (store, manifest) = open_verified(dir)?;
    let mut b = OverviewBuilder::new();
    for tag in [tags::ACCOUNT, tags::ACCESS] {
        for e in &manifest.shards {
            let reader = BufReader::new(File::open(store.path(&e.file))?);
            for (lineno, line) in reader.lines().enumerate() {
                let line = line?;
                if record_tag(&line) != Some(tag) {
                    continue;
                }
                (|| -> Result<(), pwnd_telemetry::json::JsonError> {
                    let v = Json::parse(&line)?;
                    let value = v.get("value").ok_or(pwnd_telemetry::json::JsonError {
                        msg: "missing value".to_string(),
                        at: 0,
                    })?;
                    if tag == tags::ACCOUNT {
                        b.add_account(&AccountRecord::from_json_value(value)?);
                    } else {
                        b.add_access(&ParsedAccess::from_json_value(value)?);
                    }
                    Ok(())
                })()
                .map_err(|err| {
                    io::Error::other(format!(
                        "{}: line {}: {tag} record: {}",
                        e.file,
                        lineno + 1,
                        err.msg
                    ))
                })?;
            }
        }
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> Manifest {
        Manifest {
            seed: 11,
            template_sha256: "t".repeat(64),
            shards: vec![ShardEntry {
                spec: ShardSpec {
                    index: 0,
                    seed: 11,
                    accounts: 100,
                    account_base: 0,
                    config_fingerprint: "c".repeat(64),
                    fault_profile: "none".to_string(),
                },
                file: shard_file_name(0),
                sha256: "a".repeat(64),
                records: 42,
            }],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample_manifest();
        let text = m.to_json();
        assert!(text.contains(MANIFEST_FORMAT));
        assert_eq!(Manifest::parse(&text), Some(m));
    }

    #[test]
    fn foreign_or_malformed_manifests_rejected() {
        assert_eq!(Manifest::parse("not json"), None);
        assert_eq!(Manifest::parse("{}"), None);
        let other = sample_manifest()
            .to_json()
            .replace(MANIFEST_FORMAT, "pwnd-fleet-store/999");
        assert_eq!(Manifest::parse(&other), None);
        // Duplicate shard indices are structural corruption.
        let mut dup = sample_manifest();
        dup.shards.push(dup.shards[0].clone());
        assert_eq!(Manifest::parse(&dup.to_json()), None);
    }

    #[test]
    fn upsert_replaces_by_index_and_keeps_order() {
        let mut m = sample_manifest();
        let mut later = m.shards[0].clone();
        later.spec.index = 2;
        later.file = shard_file_name(2);
        m.upsert(later.clone());
        let mut replacement = m.shards[0].clone();
        replacement.sha256 = "b".repeat(64);
        m.upsert(replacement.clone());
        assert_eq!(m.shards.len(), 2);
        assert_eq!(m.shards[0], replacement);
        assert_eq!(m.shards[1], later);
    }

    #[test]
    fn shard_file_names_sort_with_their_indices() {
        assert_eq!(shard_file_name(0), "shard-00000.jsonl");
        assert_eq!(shard_file_name(12345), "shard-12345.jsonl");
        assert!(shard_file_name(9) < shard_file_name(10));
    }
}
