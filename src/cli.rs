//! Shared plumbing behind the `pwnd` subcommands.
//!
//! The sweep and chaos commands build their whole config batch up
//! front, submit it through the parallel [`Runner`], and render the
//! table from the ordered outputs — so the byte-identity of `--jobs 1`
//! vs `--jobs N` output is a property of *this* code, testable without
//! spawning the binary (see `tests/parallel_runner.rs`). The bench
//! harness lives here too: it derives every timing from telemetry
//! spans, keeping the host clock out of reach of the deterministic
//! crates (and of this one — the lint gate holds `src/` to the same
//! wall-clock ban).

use pwnd_analysis::tables::overview;
use pwnd_core::fleet::{run_fleet, FleetConfig};
use pwnd_core::{Batch, Experiment, ExperimentConfig, RunOutput, Runner};
use pwnd_corpus::archetype::Archetype;
use pwnd_corpus::generator::CorpusGenerator;
use pwnd_corpus::persona::PersonaFactory;
use pwnd_faults::FaultProfile;
use pwnd_sim::intern::Interner;
use pwnd_sim::{Rng, SimTime};
use pwnd_telemetry::{
    Json, PhaseSummary, SpanTreeSnapshot, Table, TelemetryReport, TelemetrySink, TraceEvent,
};
use pwnd_webmail::mailbox::Mailbox;
use pwnd_webmail::search::SearchIndex;
use std::collections::BTreeMap;
use std::time::Duration;

/// The fault-rate scale factors the chaos ablation sweeps.
pub const CHAOS_FACTORS: [f64; 4] = [0.0, 0.25, 0.5, 1.0];

/// The config batch behind `pwnd sweep`: consecutive seeds from the
/// base config's own seed.
pub fn sweep_configs(base: &ExperimentConfig, seeds: u64) -> Vec<ExperimentConfig> {
    (0..seeds)
        .map(|s| {
            let mut cfg = base.clone();
            cfg.seed = base.seed + s;
            cfg
        })
        .collect()
}

/// The config batch behind `pwnd chaos`: one run per scale factor of
/// `profile`'s fault rates, with confirmed classification so flakes
/// cannot mislabel an account.
pub fn chaos_configs(base: &ExperimentConfig, profile: &FaultProfile) -> Vec<ExperimentConfig> {
    CHAOS_FACTORS
        .iter()
        .map(|&factor| {
            let mut cfg = base.clone();
            cfg.faults.profile = profile.scaled(factor);
            cfg.faults.confirm_failures = 3;
            cfg
        })
        .collect()
}

/// Render the sweep table from a batch's ordered outputs.
pub fn sweep_table(outputs: &[RunOutput], base_seed: u64) -> String {
    let mut table = Table::new(&[
        "seed", "accesses", "opened", "sent", "blocked", "hijacked", "accounts",
    ])
    .numeric();
    for (i, out) in outputs.iter().enumerate() {
        let ov = overview(&out.dataset);
        table.row([
            (base_seed + i as u64).to_string(),
            ov.total_accesses.to_string(),
            ov.emails_opened.to_string(),
            ov.emails_sent.to_string(),
            ov.accounts_blocked.to_string(),
            ov.accounts_hijacked.to_string(),
            ov.accounts_accessed.to_string(),
        ]);
    }
    table.render()
}

/// Render the chaos data-loss table from a batch's ordered outputs
/// (one per entry of [`CHAOS_FACTORS`]).
pub fn chaos_table(outputs: &[RunOutput]) -> String {
    let mut table = Table::new(&[
        "factor", "accesses", "lost", "dups", "gaps", "mean cov", "min cov",
    ])
    .numeric();
    for (&factor, out) in CHAOS_FACTORS.iter().zip(outputs) {
        let gt = &out.ground_truth;
        let covs: Vec<f64> = out
            .dataset
            .accounts
            .iter()
            .filter_map(|a| a.coverage)
            .collect();
        let (mean, min) = if covs.is_empty() {
            (1.0, 1.0)
        } else {
            (
                covs.iter().sum::<f64>() / covs.len() as f64,
                covs.iter().copied().fold(f64::INFINITY, f64::min),
            )
        };
        table.row([
            format!("{factor:.2}"),
            out.dataset.accesses.len().to_string(),
            gt.notifications_lost.to_string(),
            gt.duplicate_notifications.to_string(),
            gt.monitoring_gaps.to_string(),
            format!("{mean:.4}"),
            format!("{min:.4}"),
        ]);
    }
    table.render()
}

/// The `--profile` breakdown for a batch: the runner's speedup summary
/// followed by the merged telemetry report.
pub fn batch_profile_report(batch: &Batch) -> String {
    let mut out = String::new();
    if let Some(profile) = batch.profile() {
        out.push_str(&profile.render());
    }
    out.push_str(&batch.telemetry.render());
    out
}

// ---- the `pwnd bench` harness -----------------------------------------

/// Wall time of one closure, read back through a telemetry span (the
/// only sanctioned clock in the workspace).
fn timed(f: impl FnOnce()) -> Duration {
    let sink = TelemetrySink::enabled();
    {
        let _span = sink.span("workload");
        f();
    }
    sink.report()
        .phases
        .iter()
        .find(|p| p.name == "workload")
        .map(|p| p.total)
        .unwrap_or_default()
}

/// One instrumented experiment run: total wall time plus the run's own
/// phase spans (corpus, leaks, event-loop, scrape, dataset, …) and the
/// hierarchical span tree behind them.
fn timed_run(cfg: ExperimentConfig) -> TelemetryReport {
    let sink = TelemetrySink::enabled();
    {
        let _total = sink.span("total");
        let _ = Experiment::new(cfg).with_telemetry(sink.clone()).run();
    }
    sink.report()
}

/// A 300-message corporate mailbox for the search microbenches, built
/// from the same corpus generator the experiment uses.
fn search_fixture() -> Mailbox {
    let mut rng = Rng::seed_from(7);
    let mut factory = PersonaFactory::new();
    let peers = factory.generate_batch(12, |_| None, &mut rng);
    let persona = factory.generate(None, &mut rng);
    let mut generator = CorpusGenerator::with_archetype(Archetype::CorporateEmployee);
    let emails = generator.generate_mailbox(&persona, &peers, 300, 300, &mut rng);
    let mut mailbox = Mailbox::new();
    for e in emails {
        mailbox.deliver(e);
    }
    mailbox
}

/// The query mix gold diggers run (§4.3): single common terms,
/// multi-term conjunctions, and a guaranteed miss for the short-circuit
/// path.
const HOT_QUERIES: &[&str] = &[
    "payment",
    "password",
    "bank account",
    "wire transfer invoice",
    "bitcoin wallet seed",
];

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort_unstable();
    let n = xs.len();
    if n == 0 {
        Duration::ZERO
    } else if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2
    }
}

fn ms(d: Duration) -> Json {
    Json::F(d.as_secs_f64() * 1e3)
}

struct WorkloadStats {
    name: &'static str,
    samples: Vec<Duration>,
    /// Per-phase samples across reps, in first-appearance order.
    phases: Vec<(String, Vec<Duration>)>,
    /// Per-span-path samples across reps (sub-phase granularity), in
    /// first-appearance order.
    spans: Vec<(String, Vec<Duration>)>,
}

impl WorkloadStats {
    fn new(name: &'static str) -> WorkloadStats {
        WorkloadStats {
            name,
            samples: Vec::new(),
            phases: Vec::new(),
            spans: Vec::new(),
        }
    }

    fn push_phases(&mut self, phases: &[PhaseSummary]) {
        for p in phases {
            match self.phases.iter_mut().find(|(n, _)| *n == p.name) {
                Some((_, v)) => v.push(p.total),
                None => self.phases.push((p.name.clone(), vec![p.total])),
            }
        }
    }

    fn push_spans(&mut self, spans: &SpanTreeSnapshot) {
        for n in &spans.nodes {
            match self.spans.iter_mut().find(|(p, _)| *p == n.path) {
                Some((_, v)) => v.push(n.total),
                None => self.spans.push((n.path.clone(), vec![n.total])),
            }
        }
    }

    fn series_json(series: &[(String, Vec<Duration>)], key: &str) -> Json {
        Json::Arr(
            series
                .iter()
                .map(|(name, v)| {
                    Json::Obj(vec![
                        (key.to_string(), Json::Str(name.clone())),
                        ("median_ms".to_string(), ms(median(v.clone()))),
                        (
                            "min_ms".to_string(),
                            ms(v.iter().copied().min().unwrap_or_default()),
                        ),
                    ])
                })
                .collect(),
        )
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_string(), Json::Str(self.name.to_string())),
            ("median_ms".to_string(), ms(median(self.samples.clone()))),
            (
                "min_ms".to_string(),
                ms(self.samples.iter().copied().min().unwrap_or_default()),
            ),
        ];
        if !self.phases.is_empty() {
            fields.push((
                "phases".to_string(),
                Self::series_json(&self.phases, "name"),
            ));
        }
        if !self.spans.is_empty() {
            fields.push(("spans".to_string(), Self::series_json(&self.spans, "path")));
        }
        Json::Obj(fields)
    }
}

/// Run the perf-baseline workloads `reps` times each and report
/// median/min wall-clock per workload (and per phase, where the
/// workload is an instrumented experiment). The parallel sweep pair
/// uses `jobs` workers, recording the machine's speedup alongside the
/// absolute numbers.
pub fn bench_report(reps: u32, jobs: usize) -> Json {
    let reps = reps.max(1);
    let mut workloads = Vec::new();

    let mut quick = WorkloadStats::new("end_to_end_quick");
    let mut paper = WorkloadStats::new("end_to_end_paper");
    for (stats, cfg) in [
        (&mut quick, ExperimentConfig::quick(1)),
        (&mut paper, ExperimentConfig::paper(1)),
    ] {
        for _ in 0..reps {
            let report = timed_run(cfg.clone());
            stats.samples.push(
                report
                    .phases
                    .iter()
                    .find(|p| p.name == "total")
                    .map(|p| p.total)
                    .unwrap_or_default(),
            );
            stats.push_phases(&report.phases);
            stats.push_spans(&report.spans);
        }
        workloads.push(stats.to_json());
    }

    for (name, n_jobs) in [
        ("sweep_quick_8seeds_jobs1", 1),
        ("sweep_quick_8seeds_jobsN", jobs),
    ] {
        let mut stats = WorkloadStats::new(name);
        for _ in 0..reps {
            stats.samples.push(timed(|| {
                let _ = Runner::new(n_jobs).run_all(sweep_configs(&ExperimentConfig::quick(1), 8));
            }));
        }
        workloads.push(stats.to_json());
    }

    let mailbox = search_fixture();
    let mut build = WorkloadStats::new("search_build_300_emails");
    for _ in 0..reps {
        let mut built = None;
        build.samples.push(timed(|| {
            let mut vocab = Interner::new();
            built = Some(SearchIndex::build(&mailbox, &mut vocab));
        }));
        drop(built);
    }
    workloads.push(build.to_json());

    let mut query = WorkloadStats::new("search_hot_queries_x2000");
    let mut vocab = Interner::new();
    let mut index = SearchIndex::build(&mailbox, &mut vocab);
    for _ in 0..reps {
        query.samples.push(timed(|| {
            for round in 0..2_000u64 {
                for q in HOT_QUERIES {
                    let _ = index.search(&vocab, q, SimTime::from_secs(round));
                }
            }
        }));
        index = SearchIndex::build(&mailbox, &mut vocab); // fresh query log per rep
    }
    workloads.push(query.to_json());

    let mut fleet = WorkloadStats::new("fleet_1000_accounts");
    for _ in 0..reps {
        fleet.samples.push(timed(|| {
            let _ = run_fleet(&FleetConfig::new(1, 1_000, jobs));
        }));
    }
    workloads.push(fleet.to_json());

    Json::Obj(vec![
        ("schema".to_string(), Json::Str("pwnd-bench/1".to_string())),
        ("reps".to_string(), Json::U(u64::from(reps))),
        ("jobs".to_string(), Json::U(jobs as u64)),
        ("workloads".to_string(), Json::Arr(workloads)),
    ])
}

// ---- `pwnd bench --check`: the perf-regression gate -------------------

/// Medians below this are too noisy for a multiplicative gate (a
/// single-digit-ms span median drifts tens of percent between identical
/// runs); they are reported informationally but never fail the check.
/// Every workload and hot-phase median sits well above the floor, and a
/// real regression in a small span also moves its gated parent — that
/// is what ≥95% attribution coverage buys.
const CHECK_FLOOR_MS: f64 = 10.0;

/// Flatten a `pwnd-bench/1` document into `(metric, median_ms)` rows:
/// the workload itself, then `workload/phase:NAME` and
/// `workload/span:PATH` for its sub-phase breakdowns.
fn flatten_medians(doc: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let Some(workloads) = doc.get("workloads").and_then(Json::as_array) else {
        return out;
    };
    for w in workloads {
        let Some(name) = w.get("name").and_then(Json::as_str) else {
            continue;
        };
        if let Some(m) = w.get("median_ms").and_then(Json::as_f64) {
            out.push((name.to_string(), m));
        }
        for (field, tag, key) in [("phases", "phase", "name"), ("spans", "span", "path")] {
            let Some(arr) = w.get(field).and_then(Json::as_array) else {
                continue;
            };
            for p in arr {
                let (Some(label), Some(m)) = (
                    p.get(key).and_then(Json::as_str),
                    p.get("median_ms").and_then(Json::as_f64),
                ) else {
                    continue;
                };
                out.push((format!("{name}/{tag}:{label}"), m));
            }
        }
    }
    out
}

/// Outcome of a [`bench_check`]: the full comparison table and the
/// regressions that should fail the gate (empty means pass).
pub struct BenchCheck {
    /// Every compared metric, one row each.
    pub table: String,
    /// Human-readable descriptions of each failure.
    pub regressions: Vec<String>,
}

/// Compare a fresh bench report against a committed baseline: every
/// baseline metric (workload, phase, and span medians) must exist in
/// the current report and stay within `tolerance_pct` percent of its
/// baseline median. Metrics new in the current report are ignored —
/// adding instrumentation never breaks the gate; removing it does.
/// Sub-floor baselines (under `CHECK_FLOOR_MS`, 10 ms) are
/// informational only.
pub fn bench_check(current: &Json, baseline: &Json, tolerance_pct: f64) -> BenchCheck {
    let current_map: BTreeMap<String, f64> = flatten_medians(current).into_iter().collect();
    let mut t = Table::new(&["metric", "baseline ms", "current ms", "delta", "status"]).numeric();
    let mut regressions = Vec::new();
    for (name, base) in flatten_medians(baseline) {
        let Some(&cur) = current_map.get(&name) else {
            regressions.push(format!("{name}: present in baseline, missing from current"));
            t.row([
                name,
                format!("{base:.3}"),
                "-".to_string(),
                "-".to_string(),
                "MISSING".to_string(),
            ]);
            continue;
        };
        let delta = if base > 0.0 {
            100.0 * (cur - base) / base
        } else {
            0.0
        };
        let gated = base >= CHECK_FLOOR_MS;
        let regressed = gated && cur > base * (1.0 + tolerance_pct / 100.0);
        if regressed {
            regressions.push(format!("{name}: {base:.3}ms -> {cur:.3}ms ({delta:+.1}%)"));
        }
        let status = if regressed {
            "REGRESSED"
        } else if gated {
            "ok"
        } else {
            "info"
        };
        t.row([
            name,
            format!("{base:.3}"),
            format!("{cur:.3}"),
            format!("{delta:+.1}%"),
            status.to_string(),
        ]);
    }
    BenchCheck {
        table: t.render(),
        regressions,
    }
}

// ---- `pwnd profile` and `pwnd trace` rendering ------------------------

/// The `pwnd profile` report: the top-spans table, the per-phase
/// attribution breakdown, and the flat phase table. `limit` bounds the
/// top-spans rows (0 = all).
pub fn profile_report(report: &TelemetryReport, limit: usize) -> String {
    let mut out = String::new();
    out.push_str(&report.span_table(limit));
    out.push('\n');
    out.push_str(&report.attribution_table());
    if !report.phases.is_empty() {
        out.push('\n');
        out.push_str(&report.phase_table());
    }
    out
}

/// Merge streamed `--telemetry-out` JSONL (one report per line, blank
/// lines ignored) back into the fleet's shard-merged report.
pub fn merge_telemetry_jsonl(text: &str) -> Result<TelemetryReport, String> {
    let mut reports = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        reports.push(
            TelemetryReport::from_json_line(line).map_err(|e| format!("line {}: {e}", i + 1))?,
        );
    }
    if reports.is_empty() {
        return Err("no report lines found".to_string());
    }
    Ok(TelemetryReport::merge(&reports))
}

/// The `pwnd trace` JSONL stream: events whose kind or detail contains
/// `filter` (all, when `None`), keeping only the last `limit` matches
/// (0 = all).
pub fn filtered_trace_jsonl(
    report: &TelemetryReport,
    filter: Option<&str>,
    limit: usize,
) -> String {
    let matches =
        |e: &&TraceEvent| filter.is_none_or(|f| e.kind.contains(f) || e.detail.contains(f));
    let kept: Vec<&TraceEvent> = report.trace.iter().filter(matches).collect();
    let start = if limit > 0 && kept.len() > limit {
        kept.len() - limit
    } else {
        0
    };
    let mut out = String::new();
    for e in &kept[start..] {
        out.push_str(&e.to_json_line());
        out.push('\n');
    }
    out
}

// ---- flag validation and the `pwnd report` table ----------------------

/// Validate the batch-execution flags for the multi-run commands.
///
/// `fleet`, `sweep`, and `chaos` all submit work to the parallel
/// runner, and `serve`/`serve-bench` size a worker-thread pool; zero
/// worker threads or a zero-account fleet would otherwise be silently
/// clamped deep inside the engine. Rejecting them here gives the user
/// an actionable message instead. Commands outside the batch family
/// always validate.
pub fn validate_batch_flags(command: &str, jobs: usize, accounts: u32) -> Result<(), String> {
    let batch = matches!(
        command,
        "fleet" | "sweep" | "chaos" | "serve" | "serve-bench"
    );
    if batch && jobs == 0 {
        return Err(format!(
            "pwnd {command}: --jobs must be at least 1 (zero worker threads cannot run anything)"
        ));
    }
    if command == "fleet" && accounts == 0 {
        return Err(
            "pwnd fleet: --accounts must be at least 1 (an empty fleet produces no dataset)"
                .to_string(),
        );
    }
    Ok(())
}

/// Render the §4.1 overview as the `pwnd report` table.
pub fn overview_table(ov: &pwnd_analysis::tables::Overview) -> String {
    let mut table = Table::new(&["metric", "value"]).numeric();
    table.row(["accesses".into(), ov.total_accesses.to_string()]);
    table.row(["emails opened".into(), ov.emails_opened.to_string()]);
    table.row(["emails sent".into(), ov.emails_sent.to_string()]);
    table.row(["drafts created".into(), ov.drafts_created.to_string()]);
    table.row(["accounts accessed".into(), ov.accounts_accessed.to_string()]);
    table.row(["accounts blocked".into(), ov.accounts_blocked.to_string()]);
    table.row(["accounts hijacked".into(), ov.accounts_hijacked.to_string()]);
    for (outlet, n) in &ov.accessed_by_outlet {
        table.row([format!("accounts accessed ({outlet})"), n.to_string()]);
    }
    for (outlet, n) in &ov.accesses_by_outlet {
        table.row([format!("accesses ({outlet})"), n.to_string()]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_and_chaos_configs_are_built_up_front() {
        let base = ExperimentConfig::quick(100);
        let sweep = sweep_configs(&base, 3);
        assert_eq!(
            sweep.iter().map(|c| c.seed).collect::<Vec<_>>(),
            vec![100, 101, 102]
        );
        let chaos = chaos_configs(&base, &FaultProfile::heavy());
        assert_eq!(chaos.len(), CHAOS_FACTORS.len());
        assert!(chaos.iter().all(|c| c.faults.confirm_failures == 3));
        assert!(
            chaos[0].faults.profile.is_none(),
            "factor 0 injects nothing"
        );
    }

    #[test]
    fn batch_commands_reject_zero_jobs_and_zero_accounts() {
        for cmd in ["fleet", "sweep", "chaos"] {
            let err = validate_batch_flags(cmd, 0, 100).unwrap_err();
            assert!(err.contains(cmd), "error names the command: {err}");
            assert!(err.contains("--jobs"), "error names the flag: {err}");
            assert!(validate_batch_flags(cmd, 1, 100).is_ok());
        }
        let err = validate_batch_flags("fleet", 4, 0).unwrap_err();
        assert!(err.contains("--accounts"), "error names the flag: {err}");
        // Only the fleet sizes itself by --accounts; sweep/chaos ignore it.
        assert!(validate_batch_flags("sweep", 4, 0).is_ok());
        assert!(validate_batch_flags("chaos", 4, 0).is_ok());
        // Non-batch commands never trip the batch validation.
        assert!(validate_batch_flags("run", 0, 0).is_ok());
    }

    #[test]
    fn overview_table_lists_every_headline_metric_and_outlet() {
        let out = run_fleet(&FleetConfig::new(7, 200, 1));
        let ov = overview(&out.dataset);
        let table = overview_table(&ov);
        for label in [
            "accesses",
            "emails opened",
            "emails sent",
            "drafts created",
            "accounts accessed",
            "accounts blocked",
            "accounts hijacked",
        ] {
            assert!(table.contains(label), "missing row {label:?}:\n{table}");
        }
        for outlet in ov.accessed_by_outlet.keys() {
            assert!(table.contains(&format!("accounts accessed ({outlet})")));
        }
        assert!(table.contains(&ov.total_accesses.to_string()));
    }

    #[test]
    fn median_is_robust_to_order() {
        let d = |n| Duration::from_millis(n);
        assert_eq!(median(vec![d(5), d(1), d(9)]), d(5));
        assert_eq!(median(vec![d(4), d(2)]), d(3));
        assert_eq!(median(Vec::new()), Duration::ZERO);
    }

    #[test]
    fn bench_report_shape() {
        let report = bench_report(1, 2);
        let workloads = report.get("workloads").and_then(Json::as_array).unwrap();
        assert!(workloads.len() >= 6);
        for w in workloads {
            assert!(w.get("median_ms").and_then(Json::as_f64).is_some());
            assert!(w.get("min_ms").and_then(Json::as_f64).is_some());
        }
        // The experiment workloads expose their internal phases and the
        // sub-phase span paths behind them.
        let quick = &workloads[0];
        let phases = quick.get("phases").and_then(Json::as_array).unwrap();
        assert!(phases
            .iter()
            .any(|p| { p.get("name").and_then(Json::as_str) == Some("event-loop") }));
        // The whole run sits under the harness's "total" span, so the
        // event-loop sub-phases appear as "total;event-loop;event{…}".
        let spans = quick.get("spans").and_then(Json::as_array).unwrap();
        assert!(spans.iter().any(|s| {
            s.get("path")
                .and_then(Json::as_str)
                .is_some_and(|p| p.contains("event-loop;event{"))
        }));
    }

    /// A minimal `pwnd-bench/1` document with one workload, one phase,
    /// one span, every median scaled by `scale`.
    fn bench_doc(scale: f64) -> Json {
        let entry = |key: &str, label: &str, m: f64| {
            Json::Obj(vec![
                (key.to_string(), Json::Str(label.to_string())),
                ("median_ms".to_string(), Json::F(m * scale)),
                ("min_ms".to_string(), Json::F(m * scale)),
            ])
        };
        Json::Obj(vec![
            ("schema".to_string(), Json::Str("pwnd-bench/1".to_string())),
            (
                "workloads".to_string(),
                Json::Arr(vec![Json::Obj(vec![
                    (
                        "name".to_string(),
                        Json::Str("end_to_end_quick".to_string()),
                    ),
                    ("median_ms".to_string(), Json::F(100.0 * scale)),
                    ("min_ms".to_string(), Json::F(90.0 * scale)),
                    (
                        "phases".to_string(),
                        Json::Arr(vec![entry("name", "event-loop", 60.0)]),
                    ),
                    (
                        "spans".to_string(),
                        Json::Arr(vec![
                            entry("path", "event-loop;event{kind=visit}", 40.0),
                            // Sub-floor: informational, never gated.
                            entry("path", "event-loop;schedule", 0.01 / scale),
                        ]),
                    ),
                ])]),
            ),
        ])
    }

    #[test]
    fn bench_check_passes_when_flat_or_faster() {
        let base = bench_doc(1.0);
        for current in [bench_doc(1.0), bench_doc(0.5)] {
            let check = bench_check(&current, &base, 25.0);
            assert!(check.regressions.is_empty(), "{:?}", check.regressions);
            assert!(check.table.contains("event_to") || check.table.contains("end_to_end_quick"));
            assert!(check.table.contains("ok"));
            assert!(check.table.contains("info"), "sub-floor span is info-only");
        }
    }

    #[test]
    fn bench_check_fails_a_synthetic_2x_regression() {
        // The negative test the CI gate depends on: a doubled phase
        // time must trip the check and name the offender.
        let check = bench_check(&bench_doc(2.0), &bench_doc(1.0), 25.0);
        assert!(!check.regressions.is_empty());
        assert!(check
            .regressions
            .iter()
            .any(|r| r.contains("end_to_end_quick/phase:event-loop")));
        assert!(check.table.contains("REGRESSED"));
        // The sub-floor span doubled too but stays informational.
        assert!(!check
            .regressions
            .iter()
            .any(|r| r.contains("event-loop;schedule")));
    }

    #[test]
    fn bench_check_fails_on_missing_metric_and_ignores_new_ones() {
        let base = bench_doc(1.0);
        let empty = Json::Obj(vec![("workloads".to_string(), Json::Arr(vec![]))]);
        let check = bench_check(&empty, &base, 25.0);
        assert!(check
            .regressions
            .iter()
            .any(|r| r.contains("missing from current")));
        // The other direction is fine: a richer current report passes
        // against a sparser baseline.
        let check = bench_check(&base, &empty, 25.0);
        assert!(check.regressions.is_empty());
    }

    #[test]
    fn trace_filter_and_limit_select_the_tail() {
        let sink = TelemetrySink::enabled();
        for t in 0..10u64 {
            sink.trace(t, if t % 2 == 0 { "login" } else { "scrape" }, Some(1));
        }
        let report = sink.report();
        let all = filtered_trace_jsonl(&report, None, 0);
        assert_eq!(all.lines().count(), 10);
        let logins = filtered_trace_jsonl(&report, Some("login"), 0);
        assert_eq!(logins.lines().count(), 5);
        let tail = filtered_trace_jsonl(&report, Some("login"), 2);
        assert_eq!(tail.lines().count(), 2);
        assert!(tail.contains("\"t_secs\":8"));
        assert!(tail.contains("\"t_secs\":6"));
    }

    #[test]
    fn profile_report_renders_spans_and_attribution() {
        let sink = TelemetrySink::enabled();
        {
            let outer = sink.span("event-loop");
            outer.sim(42);
            drop(outer.child("event", &[("kind", "visit")]));
        }
        let text = profile_report(&sink.report(), 0);
        assert!(text.contains("event-loop;event{kind=visit}"));
        assert!(text.contains("coverage") || text.contains('%'));
    }

    #[test]
    fn merge_telemetry_jsonl_round_trips_shard_lines() {
        let shard = |seed: u64| {
            let sink = TelemetrySink::enabled();
            sink.count_by("runs", seed);
            drop(sink.span("event-loop"));
            sink.report()
        };
        let reports = [shard(1), shard(2)];
        let text: String = reports.iter().map(|r| r.to_json_line() + "\n").collect();
        let merged = merge_telemetry_jsonl(&text).unwrap();
        assert_eq!(merged, TelemetryReport::merge(&reports));
        assert_eq!(merged.counter("runs"), 3);
        assert!(merge_telemetry_jsonl("").is_err());
        assert!(merge_telemetry_jsonl("not json\n").is_err());
    }
}
