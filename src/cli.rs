//! Shared plumbing behind the `pwnd` subcommands.
//!
//! The sweep and chaos commands build their whole config batch up
//! front, submit it through the parallel [`Runner`], and render the
//! table from the ordered outputs — so the byte-identity of `--jobs 1`
//! vs `--jobs N` output is a property of *this* code, testable without
//! spawning the binary (see `tests/parallel_runner.rs`). The bench
//! harness lives here too: it derives every timing from telemetry
//! spans, keeping the host clock out of reach of the deterministic
//! crates (and of this one — the lint gate holds `src/` to the same
//! wall-clock ban).

use pwnd_analysis::tables::overview;
use pwnd_core::fleet::{run_fleet, FleetConfig};
use pwnd_core::{Batch, Experiment, ExperimentConfig, RunOutput, Runner};
use pwnd_corpus::archetype::Archetype;
use pwnd_corpus::generator::CorpusGenerator;
use pwnd_corpus::persona::PersonaFactory;
use pwnd_faults::FaultProfile;
use pwnd_sim::intern::Interner;
use pwnd_sim::{Rng, SimTime};
use pwnd_telemetry::{Json, PhaseSummary, Table, TelemetrySink};
use pwnd_webmail::mailbox::Mailbox;
use pwnd_webmail::search::SearchIndex;
use std::time::Duration;

/// The fault-rate scale factors the chaos ablation sweeps.
pub const CHAOS_FACTORS: [f64; 4] = [0.0, 0.25, 0.5, 1.0];

/// The config batch behind `pwnd sweep`: consecutive seeds from the
/// base config's own seed.
pub fn sweep_configs(base: &ExperimentConfig, seeds: u64) -> Vec<ExperimentConfig> {
    (0..seeds)
        .map(|s| {
            let mut cfg = base.clone();
            cfg.seed = base.seed + s;
            cfg
        })
        .collect()
}

/// The config batch behind `pwnd chaos`: one run per scale factor of
/// `profile`'s fault rates, with confirmed classification so flakes
/// cannot mislabel an account.
pub fn chaos_configs(base: &ExperimentConfig, profile: &FaultProfile) -> Vec<ExperimentConfig> {
    CHAOS_FACTORS
        .iter()
        .map(|&factor| {
            let mut cfg = base.clone();
            cfg.faults.profile = profile.scaled(factor);
            cfg.faults.confirm_failures = 3;
            cfg
        })
        .collect()
}

/// Render the sweep table from a batch's ordered outputs.
pub fn sweep_table(outputs: &[RunOutput], base_seed: u64) -> String {
    let mut table = Table::new(&[
        "seed", "accesses", "opened", "sent", "blocked", "hijacked", "accounts",
    ])
    .numeric();
    for (i, out) in outputs.iter().enumerate() {
        let ov = overview(&out.dataset);
        table.row([
            (base_seed + i as u64).to_string(),
            ov.total_accesses.to_string(),
            ov.emails_opened.to_string(),
            ov.emails_sent.to_string(),
            ov.accounts_blocked.to_string(),
            ov.accounts_hijacked.to_string(),
            ov.accounts_accessed.to_string(),
        ]);
    }
    table.render()
}

/// Render the chaos data-loss table from a batch's ordered outputs
/// (one per entry of [`CHAOS_FACTORS`]).
pub fn chaos_table(outputs: &[RunOutput]) -> String {
    let mut table = Table::new(&[
        "factor", "accesses", "lost", "dups", "gaps", "mean cov", "min cov",
    ])
    .numeric();
    for (&factor, out) in CHAOS_FACTORS.iter().zip(outputs) {
        let gt = &out.ground_truth;
        let covs: Vec<f64> = out
            .dataset
            .accounts
            .iter()
            .filter_map(|a| a.coverage)
            .collect();
        let (mean, min) = if covs.is_empty() {
            (1.0, 1.0)
        } else {
            (
                covs.iter().sum::<f64>() / covs.len() as f64,
                covs.iter().copied().fold(f64::INFINITY, f64::min),
            )
        };
        table.row([
            format!("{factor:.2}"),
            out.dataset.accesses.len().to_string(),
            gt.notifications_lost.to_string(),
            gt.duplicate_notifications.to_string(),
            gt.monitoring_gaps.to_string(),
            format!("{mean:.4}"),
            format!("{min:.4}"),
        ]);
    }
    table.render()
}

/// The `--profile` breakdown for a batch: the runner's speedup summary
/// followed by the merged telemetry report.
pub fn batch_profile_report(batch: &Batch) -> String {
    let mut out = String::new();
    if let Some(profile) = batch.profile() {
        out.push_str(&profile.render());
    }
    out.push_str(&batch.telemetry.render());
    out
}

// ---- the `pwnd bench` harness -----------------------------------------

/// Wall time of one closure, read back through a telemetry span (the
/// only sanctioned clock in the workspace).
fn timed(f: impl FnOnce()) -> Duration {
    let sink = TelemetrySink::enabled();
    {
        let _span = sink.span("workload");
        f();
    }
    sink.report()
        .phases
        .iter()
        .find(|p| p.name == "workload")
        .map(|p| p.total)
        .unwrap_or_default()
}

/// One instrumented experiment run: total wall time plus the run's own
/// phase spans (corpus, leaks, event-loop, scrape, dataset, …).
fn timed_run(cfg: ExperimentConfig) -> Vec<PhaseSummary> {
    let sink = TelemetrySink::enabled();
    {
        let _total = sink.span("total");
        let _ = Experiment::new(cfg).with_telemetry(sink.clone()).run();
    }
    sink.report().phases
}

/// A 300-message corporate mailbox for the search microbenches, built
/// from the same corpus generator the experiment uses.
fn search_fixture() -> Mailbox {
    let mut rng = Rng::seed_from(7);
    let mut factory = PersonaFactory::new();
    let peers = factory.generate_batch(12, |_| None, &mut rng);
    let persona = factory.generate(None, &mut rng);
    let mut generator = CorpusGenerator::with_archetype(Archetype::CorporateEmployee);
    let emails = generator.generate_mailbox(&persona, &peers, 300, 300, &mut rng);
    let mut mailbox = Mailbox::new();
    for e in emails {
        mailbox.deliver(e);
    }
    mailbox
}

/// The query mix gold diggers run (§4.3): single common terms,
/// multi-term conjunctions, and a guaranteed miss for the short-circuit
/// path.
const HOT_QUERIES: &[&str] = &[
    "payment",
    "password",
    "bank account",
    "wire transfer invoice",
    "bitcoin wallet seed",
];

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort_unstable();
    let n = xs.len();
    if n == 0 {
        Duration::ZERO
    } else if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2
    }
}

fn ms(d: Duration) -> Json {
    Json::F(d.as_secs_f64() * 1e3)
}

struct WorkloadStats {
    name: &'static str,
    samples: Vec<Duration>,
    /// Per-phase samples across reps, in first-appearance order.
    phases: Vec<(String, Vec<Duration>)>,
}

impl WorkloadStats {
    fn new(name: &'static str) -> WorkloadStats {
        WorkloadStats {
            name,
            samples: Vec::new(),
            phases: Vec::new(),
        }
    }

    fn push_phases(&mut self, phases: &[PhaseSummary]) {
        for p in phases {
            match self.phases.iter_mut().find(|(n, _)| *n == p.name) {
                Some((_, v)) => v.push(p.total),
                None => self.phases.push((p.name.clone(), vec![p.total])),
            }
        }
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_string(), Json::Str(self.name.to_string())),
            ("median_ms".to_string(), ms(median(self.samples.clone()))),
            (
                "min_ms".to_string(),
                ms(self.samples.iter().copied().min().unwrap_or_default()),
            ),
        ];
        if !self.phases.is_empty() {
            let phases: Vec<Json> = self
                .phases
                .iter()
                .map(|(name, v)| {
                    Json::Obj(vec![
                        ("name".to_string(), Json::Str(name.clone())),
                        ("median_ms".to_string(), ms(median(v.clone()))),
                        (
                            "min_ms".to_string(),
                            ms(v.iter().copied().min().unwrap_or_default()),
                        ),
                    ])
                })
                .collect();
            fields.push(("phases".to_string(), Json::Arr(phases)));
        }
        Json::Obj(fields)
    }
}

/// Run the perf-baseline workloads `reps` times each and report
/// median/min wall-clock per workload (and per phase, where the
/// workload is an instrumented experiment). The parallel sweep pair
/// uses `jobs` workers, recording the machine's speedup alongside the
/// absolute numbers.
pub fn bench_report(reps: u32, jobs: usize) -> Json {
    let reps = reps.max(1);
    let mut workloads = Vec::new();

    let mut quick = WorkloadStats::new("end_to_end_quick");
    let mut paper = WorkloadStats::new("end_to_end_paper");
    for (stats, cfg) in [
        (&mut quick, ExperimentConfig::quick(1)),
        (&mut paper, ExperimentConfig::paper(1)),
    ] {
        for _ in 0..reps {
            let phases = timed_run(cfg.clone());
            stats.samples.push(
                phases
                    .iter()
                    .find(|p| p.name == "total")
                    .map(|p| p.total)
                    .unwrap_or_default(),
            );
            stats.push_phases(&phases);
        }
        workloads.push(stats.to_json());
    }

    for (name, n_jobs) in [
        ("sweep_quick_8seeds_jobs1", 1),
        ("sweep_quick_8seeds_jobsN", jobs),
    ] {
        let mut stats = WorkloadStats::new(name);
        for _ in 0..reps {
            stats.samples.push(timed(|| {
                let _ = Runner::new(n_jobs).run_all(sweep_configs(&ExperimentConfig::quick(1), 8));
            }));
        }
        workloads.push(stats.to_json());
    }

    let mailbox = search_fixture();
    let mut build = WorkloadStats::new("search_build_300_emails");
    for _ in 0..reps {
        let mut built = None;
        build.samples.push(timed(|| {
            let mut vocab = Interner::new();
            built = Some(SearchIndex::build(&mailbox, &mut vocab));
        }));
        drop(built);
    }
    workloads.push(build.to_json());

    let mut query = WorkloadStats::new("search_hot_queries_x2000");
    let mut vocab = Interner::new();
    let mut index = SearchIndex::build(&mailbox, &mut vocab);
    for _ in 0..reps {
        query.samples.push(timed(|| {
            for round in 0..2_000u64 {
                for q in HOT_QUERIES {
                    let _ = index.search(&vocab, q, SimTime::from_secs(round));
                }
            }
        }));
        index = SearchIndex::build(&mailbox, &mut vocab); // fresh query log per rep
    }
    workloads.push(query.to_json());

    let mut fleet = WorkloadStats::new("fleet_1000_accounts");
    for _ in 0..reps {
        fleet.samples.push(timed(|| {
            let _ = run_fleet(&FleetConfig::new(1, 1_000, jobs));
        }));
    }
    workloads.push(fleet.to_json());

    Json::Obj(vec![
        ("schema".to_string(), Json::Str("pwnd-bench/1".to_string())),
        ("reps".to_string(), Json::U(u64::from(reps))),
        ("jobs".to_string(), Json::U(jobs as u64)),
        ("workloads".to_string(), Json::Arr(workloads)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_and_chaos_configs_are_built_up_front() {
        let base = ExperimentConfig::quick(100);
        let sweep = sweep_configs(&base, 3);
        assert_eq!(
            sweep.iter().map(|c| c.seed).collect::<Vec<_>>(),
            vec![100, 101, 102]
        );
        let chaos = chaos_configs(&base, &FaultProfile::heavy());
        assert_eq!(chaos.len(), CHAOS_FACTORS.len());
        assert!(chaos.iter().all(|c| c.faults.confirm_failures == 3));
        assert!(
            chaos[0].faults.profile.is_none(),
            "factor 0 injects nothing"
        );
    }

    #[test]
    fn median_is_robust_to_order() {
        let d = |n| Duration::from_millis(n);
        assert_eq!(median(vec![d(5), d(1), d(9)]), d(5));
        assert_eq!(median(vec![d(4), d(2)]), d(3));
        assert_eq!(median(Vec::new()), Duration::ZERO);
    }

    #[test]
    fn bench_report_shape() {
        let report = bench_report(1, 2);
        let workloads = report.get("workloads").and_then(Json::as_array).unwrap();
        assert!(workloads.len() >= 6);
        for w in workloads {
            assert!(w.get("median_ms").and_then(Json::as_f64).is_some());
            assert!(w.get("min_ms").and_then(Json::as_f64).is_some());
        }
        // The experiment workloads expose their internal phases.
        let quick = &workloads[0];
        let phases = quick.get("phases").and_then(Json::as_array).unwrap();
        assert!(phases
            .iter()
            .any(|p| { p.get("name").and_then(Json::as_str) == Some("event-loop") }));
    }
}
