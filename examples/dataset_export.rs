//! Export the public dataset and quantify the monitoring censorship.
//!
//! ```text
//! cargo run --release --example dataset_export [seed] [out.json]
//! ```
//!
//! The paper released "a dataset containing the parsed metadata of the
//! accesses received from our honey accounts". This example produces the
//! equivalent JSON artifact, then — something the paper could not do —
//! compares the censored dataset against simulator ground truth to
//! measure exactly how much the monitoring methodology misses.

use pwnd::{Experiment, ExperimentConfig};
use std::collections::HashSet;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2016);
    let path = args.next().unwrap_or_else(|| "dataset.json".to_string());

    let output = Experiment::new(ExperimentConfig::paper(seed)).run();
    let json = output.dataset_json();
    std::fs::write(&path, &json).expect("write dataset");
    println!(
        "wrote {} ({} accesses, {} account records, {} KiB)",
        path,
        output.dataset.accesses.len(),
        output.dataset.accounts.len(),
        json.len() / 1024
    );

    // --- Censorship audit: observed vs ground truth -------------------
    println!("\n== What the monitoring methodology misses ==");
    let observed = output.dataset.accesses.len();
    let attempted = output.ground_truth.attempted_accesses;
    println!("attacker accesses attempted : {attempted}");
    println!("accesses observed in dataset: {observed}");
    println!(
        "censored by hijack/block lockouts: {} ({:.0}%)",
        attempted - observed,
        100.0 * (attempted - observed) as f64 / attempted as f64
    );

    let hijacked_gt: HashSet<u32> = output
        .ground_truth
        .hijacked_accounts
        .iter()
        .copied()
        .collect();
    let hijacked_obs: HashSet<u32> = output
        .dataset
        .accounts
        .iter()
        .filter(|a| a.hijack_detected_secs.is_some())
        .map(|a| a.account)
        .collect();
    println!(
        "hijacks: {} real, {} detected by the scraper ({} missed)",
        hijacked_gt.len(),
        hijacked_obs.len(),
        hijacked_gt.difference(&hijacked_obs).count()
    );

    let blocked_gt = output.ground_truth.blocked_accounts.len();
    let blocked_obs = output
        .dataset
        .accounts
        .iter()
        .filter(|a| a.block_detected_secs.is_some())
        .count();
    println!("blocks: {blocked_gt} real, {blocked_obs} inferred from heartbeat silence");

    // Search-log blindness (§5 limitation): the provider logged every
    // query; the monitor inferred keywords from opened mail only.
    let mut distinct_queries: Vec<String> = output.ground_truth.searched_queries.clone();
    distinct_queries.sort_unstable();
    distinct_queries.dedup();
    let analysis = output.analysis();
    let inferred: HashSet<String> = analysis
        .tfidf
        .top_searched(12)
        .iter()
        .map(|t| t.term.clone())
        .collect();
    let recovered = distinct_queries
        .iter()
        .filter(|q| inferred.contains(*q))
        .count();
    println!(
        "\nsearch-log blindness: {} distinct queries actually run; TF-IDF \
         inference recovered {recovered} of them in its top 12",
        distinct_queries.len()
    );
    println!("actually searched : {distinct_queries:?}");
    let mut inferred_sorted: Vec<&String> = inferred.iter().collect();
    inferred_sorted.sort();
    println!("inferred (top 12) : {inferred_sorted:?}");
}
