//! Quickstart: run the paper's experiment and print the full evaluation.
//!
//! ```text
//! cargo run --release --example quickstart [seed]
//! ```
//!
//! Deploys 100 instrumented honey accounts, leaks them per Table 1,
//! simulates seven months of criminal activity, and prints every §4
//! table and figure with the paper's reference values alongside.

use pwnd::{Experiment, ExperimentConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2016u64);
    eprintln!("running the paper experiment with seed {seed} ...");
    let started = std::time::Instant::now();
    let output = Experiment::new(ExperimentConfig::paper(seed)).run();
    eprintln!("simulated 236 days in {:.2?}", started.elapsed());

    println!("{}", output.analysis().render());

    let gt = &output.ground_truth;
    println!("\n== Ground truth (simulator-only view) ==");
    println!("attempted accesses : {}", gt.attempted_accesses);
    println!("sinkholed messages : {}", gt.sinkholed_messages);
    println!("scripts deleted    : {}", gt.scripts_deleted.len());
    println!("forum inquiries    : {}", gt.inquiries.len());
    println!(
        "searched queries   : {} ({} distinct)",
        gt.searched_queries.len(),
        {
            let mut q = gt.searched_queries.clone();
            q.sort_unstable();
            q.dedup();
            q.len()
        }
    );
}
