//! The §5 scenario extension: honey accounts of political activists.
//!
//! ```text
//! cargo run --release --example activist_scenario [seed]
//! ```
//!
//! The paper proposes "studying attackers who have a specific motivation,
//! for example compromising accounts that belong to political activists
//! (rather than generic corporate accounts)". This example runs both
//! scenarios with the same seed — same leak plan, same monitoring — and
//! compares what the TF-IDF keyword inference recovers: financial bait in
//! the corporate world, identities/funders/travel in the activist one.

use pwnd::analysis::tables::overview;
use pwnd::{Experiment, ExperimentConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2016u64);

    println!("running corporate and activist arms with seed {seed} ...");
    let corporate = Experiment::new(ExperimentConfig::paper(seed)).run();
    let activist = Experiment::new(ExperimentConfig::activist(seed)).run();

    let co = overview(&corporate.dataset);
    let ao = overview(&activist.dataset);
    println!("\n== Activity comparison ==");
    println!("{:<26} {:>10} {:>10}", "", "corporate", "activist");
    println!(
        "{:<26} {:>10} {:>10}",
        "unique accesses", co.total_accesses, ao.total_accesses
    );
    println!(
        "{:<26} {:>10} {:>10}",
        "emails opened", co.emails_opened, ao.emails_opened
    );
    println!(
        "{:<26} {:>10} {:>10}",
        "accounts hijacked", co.accounts_hijacked, ao.accounts_hijacked
    );

    let gold = |out: &pwnd::RunOutput| {
        out.dataset
            .accesses
            .iter()
            .filter(|a| pwnd::analysis::classify(a).gold_digger)
            .count()
    };
    println!(
        "{:<26} {:>10} {:>10}   <- motivated attackers dig harder",
        "gold-digger accesses",
        gold(&corporate),
        gold(&activist)
    );

    println!("\n== What the TF-IDF inference recovers (top 8 searched) ==");
    let ca = corporate.analysis();
    let aa = activist.analysis();
    println!("{:<20} {:<20}", "corporate", "activist");
    let ct = ca.tfidf.top_searched(8);
    let at = aa.tfidf.top_searched(8);
    for i in 0..8 {
        println!(
            "{:<20} {:<20}",
            ct.get(i).map(|t| t.term.as_str()).unwrap_or(""),
            at.get(i).map(|t| t.term.as_str()).unwrap_or("")
        );
    }

    // Cross-check against provider-side ground truth.
    let distinct = |out: &pwnd::RunOutput| {
        let mut q = out.ground_truth.searched_queries.clone();
        q.sort_unstable();
        q.dedup();
        q
    };
    println!("\nground-truth query pools:");
    println!("  corporate: {:?}", distinct(&corporate));
    println!("  activist : {:?}", distinct(&activist));
    println!(
        "\nSame infrastructure, same outlets — but the inferred search \
         vocabulary flips from financial bait to identities, funders and \
         travel plans. The §5 hypothesis holds: what attackers hunt for \
         tracks who they think they compromised."
    );
}
