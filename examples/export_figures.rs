//! Export every figure's raw data as CSV, ready for plotting.
//!
//! ```text
//! cargo run --release --example export_figures [seed] [out_dir]
//! ```

use pwnd::analysis::export::figures_to_csv;
use pwnd::{Experiment, ExperimentConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2016);
    let dir = args.next().unwrap_or_else(|| "figures".to_string());

    let out = Experiment::new(ExperimentConfig::paper(seed)).run();
    let analysis = out.analysis();
    std::fs::create_dir_all(&dir).expect("create output dir");
    for file in figures_to_csv(&analysis) {
        let path = format!("{dir}/{}", file.name);
        std::fs::write(&path, &file.contents).expect("write csv");
        println!("wrote {path} ({} rows)", file.contents.lines().count() - 1);
    }
    println!("\nplot e.g. with gnuplot/python; fig6_distances.csv carries the raw CvM inputs");
}
