//! Prototype and evaluate the §5 defense proposals.
//!
//! ```text
//! cargo run --release --example defense_prototypes [seed]
//! ```
//!
//! The paper suggests two behaviour-based anomaly detectors a provider
//! could deploy: one trained on the owner's *search vocabulary*, one on
//! benign *connection durations*. This example trains both against the
//! simulated world and evaluates them on the criminal population — with
//! provider-side ground truth (the real query log) as labels, something
//! the paper itself could not do.

use pwnd::analysis::defense::{
    evaluate_search_detector, RangeAnomalyDetector, SearchAnomalyDetector,
};
use pwnd::analysis::taxonomy::classify;
use pwnd::sim::Rng;
use pwnd::{Experiment, ExperimentConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2016u64);
    let out = Experiment::new(ExperimentConfig::paper(seed)).run();

    // --- Detector 1: search-vocabulary anomaly -------------------------
    // §5: train "adaptively on words being searched for by the legitimate
    // account owner". Owners search for everyday workflow terms — we
    // synthesize that history from the corpus-dominant vocabulary (never
    // the rare sensitive strata: nobody greps their own mail for
    // "password" weekly).
    let mut rng = Rng::seed_from(seed ^ 0xDEF);
    let owner_workflow: Vec<&str> = vec![
        "meeting",
        "report",
        "schedule",
        "agreement",
        "contract",
        "review",
        "forecast",
        "pipeline",
        "delivery",
        "project",
        "quarter",
    ];
    let owner_history: Vec<String> = (0..300)
        .map(|_| (*rng.choose(&owner_workflow)).to_string())
        .collect();
    let mut detector = SearchAnomalyDetector::new();
    detector.train(owner_history.iter());

    // Attacker queries: provider-side ground truth (the honey accounts'
    // real query logs). Benign probes: more owner-like searches.
    let attacker_queries = out.ground_truth.searched_queries.clone();
    let benign_queries: Vec<String> = (0..200)
        .map(|_| (*rng.choose(&owner_workflow)).to_string())
        .collect();

    println!("== Search-vocabulary anomaly detector (§5) ==");
    println!(
        "trained on {} distinct owner terms; {} attacker queries, {} benign probes",
        detector.vocabulary_size(),
        attacker_queries.len(),
        benign_queries.len()
    );
    println!("{:<10} {:>6} {:>6}", "threshold", "TPR", "FPR");
    for threshold in [0.3, 0.5, 0.7, 0.9] {
        let r = evaluate_search_detector(&detector, &attacker_queries, &benign_queries, threshold);
        println!("{threshold:<10} {:>6.2} {:>6.2}", r.tpr(), r.fpr());
    }

    // --- Detector 2: connection-duration anomaly ------------------------
    // Benign profile: short, regular owner-like sessions (minutes).
    // Attack surface: the observed access durations from the dataset.
    let benign_durations: Vec<f64> = (0..500)
        .map(|_| rng.range_f64(0.5, 20.0)) // owner reads mail for minutes
        .collect();
    // Upper-bound only: a censored single-observation access measures
    // zero minutes, which is not "anomalously short".
    let duration_detector = RangeAnomalyDetector::train_upper(&benign_durations, 0.99);
    let (lo, hi) = duration_detector.band();

    let mut flagged = 0;
    let mut gold_flagged = 0;
    let mut gold_total = 0;
    for a in &out.dataset.accesses {
        let minutes = a.duration_secs() as f64 / 60.0;
        let anomalous = duration_detector.is_anomalous(minutes);
        if anomalous {
            flagged += 1;
        }
        if classify(a).gold_digger {
            gold_total += 1;
            if anomalous {
                gold_flagged += 1;
            }
        }
    }
    println!("\n== Connection-duration anomaly detector (§5) ==");
    let _ = lo;
    println!("benign band: anything up to {hi:.1} minutes");
    println!(
        "flagged {flagged}/{} observed accesses; {gold_flagged}/{gold_total} gold diggers",
        out.dataset.accesses.len()
    );
    println!(
        "\nTakeaway: vocabulary deviation separates gold diggers almost \
         perfectly (their queries are never the owner's words), while \
         duration alone is weaker — many criminal visits are as short as \
         benign ones (Figure 2). Defense in depth, as §5 argues."
    );
}
