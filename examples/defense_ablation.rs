//! Defense ablation: what if Google had NOT disabled the suspicious-login
//! filter for the honey accounts?
//!
//! ```text
//! cargo run --release --example defense_ablation [seed]
//! ```
//!
//! §3.4: "most accesses would be blocked if Google did not disable the
//! login filters. This does not impact directly on our methodology" — we
//! can actually measure it. Two identical worlds, same seed, one with the
//! location-based login filter enabled, and compare what the monitoring
//! infrastructure observes.

use pwnd::analysis::tables::overview;
use pwnd::{Experiment, ExperimentConfig};

fn run(seed: u64, filter: bool) -> (usize, u64, usize, usize) {
    let mut cfg = ExperimentConfig::paper(seed);
    cfg.login_filter_enabled = filter;
    let out = Experiment::new(cfg).run();
    let ov = overview(&out.dataset);
    (
        ov.total_accesses,
        ov.emails_sent,
        ov.accounts_hijacked,
        ov.accounts_accessed,
    )
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2016u64);

    println!("running both arms with seed {seed} ...");
    let (acc_off, sent_off, hij_off, acct_off) = run(seed, false);
    let (acc_on, sent_on, hij_on, acct_on) = run(seed, true);

    println!("\n== Suspicious-login filter ablation ==");
    println!("{:<26} {:>12} {:>12}", "", "filter OFF", "filter ON");
    println!(
        "{:<26} {:>12} {:>12}",
        "observed unique accesses", acc_off, acc_on
    );
    println!(
        "{:<26} {:>12} {:>12}",
        "emails sent by attackers", sent_off, sent_on
    );
    println!("{:<26} {:>12} {:>12}", "accounts hijacked", hij_off, hij_on);
    println!(
        "{:<26} {:>12} {:>12}",
        "accounts with accesses", acct_off, acct_on
    );

    let survived = acc_on as f64 / acc_off.max(1) as f64;
    println!(
        "\nWith the filter enabled only {:.0}% of accesses get through —",
        survived * 100.0
    );
    println!(
        "the paper's methodological point in §3.4: without Google disabling \
         the filter, there would have been almost no experiment to run. \
         (Accesses that still land are the ones from locations close to the \
         account's habitual profile — and the filter cannot stop an attacker \
         who already knows the victim's advertised location.)"
    );
}
