//! Seed sweep: run the paper experiment across several seeds and print
//! the mean and range of every headline statistic next to the paper's
//! value — the calibration harness behind EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release --example seed_sweep [n_seeds]
//! ```

use pwnd::analysis::figures;
use pwnd::analysis::tables::{origin_stats, overview};
use pwnd::{Experiment, ExperimentConfig};

struct Series {
    name: &'static str,
    paper: f64,
    values: Vec<f64>,
}

impl Series {
    fn new(name: &'static str, paper: f64) -> Series {
        Series {
            name,
            paper,
            values: Vec::new(),
        }
    }
    fn print(&self) {
        let n = self.values.len() as f64;
        let mean = self.values.iter().sum::<f64>() / n;
        let lo = self.values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = self
            .values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{:<28} paper {:>8.2}   mean {:>8.2}   range [{:>7.2}, {:>7.2}]",
            self.name, self.paper, mean, lo, hi
        );
    }
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    let mut series = vec![
        Series::new("unique accesses", 326.0),
        Series::new("emails opened", 147.0),
        Series::new("emails sent", 845.0),
        Series::new("drafts composed", 12.0),
        Series::new("accounts accessed", 90.0),
        Series::new("paste accesses", 144.0),
        Series::new("forum accesses", 125.0),
        Series::new("malware accesses", 57.0),
        Series::new("accounts blocked", 42.0),
        Series::new("accounts hijacked", 36.0),
        Series::new("tor accesses", 132.0),
        Series::new("countries", 29.0),
        Series::new("blacklisted ips", 20.0),
        Series::new("paste F(25d)", 0.80),
        Series::new("forum F(25d)", 0.60),
        Series::new("malware F(25d)", 0.40),
        Series::new("fig1 paste hijacker", 0.20),
        Series::new("fig1 forum gold digger", 0.30),
        Series::new("fig6 paste UK loc km", 1400.0),
        Series::new("fig6 paste UK noloc km", 1784.0),
        Series::new("fig6 paste US loc km", 939.0),
        Series::new("fig6 paste US noloc km", 7900.0),
        Series::new("cvm paste rejects (of 2)", 2.0),
        Series::new("cvm forum rejects (of 2)", 0.0),
    ];

    for seed in 0..n {
        let out = Experiment::new(ExperimentConfig::paper(1000 + seed)).run();
        let ds = &out.dataset;
        let ov = overview(ds);
        let org = origin_stats(ds, Some(&out.blacklist));
        let f1 = figures::fig1(ds);
        let f3 = figures::fig3(ds);
        let f6 = figures::fig6(ds);
        let cvm = figures::cvm_tests(&f6);

        let get = |o: &str| ov.accesses_by_outlet.get(o).copied().unwrap_or(0) as f64;
        let f25 = |o: &str| {
            f3.series
                .iter()
                .find(|(name, _)| name == o)
                .map(|(_, e)| e.eval(25.0))
                .unwrap_or(f64::NAN)
        };
        let fig6_median = |outlet: &str, region: &str, with_loc: bool| {
            f6.iter()
                .find(|c| c.outlet == outlet && c.region == region && c.with_location == with_loc)
                .and_then(|c| c.median_km)
                .unwrap_or(f64::NAN)
        };
        let rejects = |outlet: &str| {
            cvm.iter()
                .filter(|t| t.label.starts_with(outlet) && t.rejected)
                .count() as f64
        };
        let vals = [
            ov.total_accesses as f64,
            ov.emails_opened as f64,
            ov.emails_sent as f64,
            ov.drafts_created as f64,
            ov.accounts_accessed as f64,
            get("paste"),
            get("forum"),
            get("malware"),
            ov.accounts_blocked as f64,
            ov.accounts_hijacked as f64,
            org.tor_total as f64,
            org.countries as f64,
            org.blacklisted_ips as f64,
            f25("paste"),
            f25("forum"),
            f25("malware"),
            f1.rows
                .iter()
                .find(|r| r.0 == "paste")
                .map(|r| r.1[2])
                .unwrap_or(0.0),
            f1.rows
                .iter()
                .find(|r| r.0 == "forum")
                .map(|r| r.1[1])
                .unwrap_or(0.0),
            fig6_median("paste", "UK", true),
            fig6_median("paste", "UK", false),
            fig6_median("paste", "US", true),
            fig6_median("paste", "US", false),
            rejects("paste"),
            rejects("forum"),
        ];
        for (s, v) in series.iter_mut().zip(vals) {
            s.values.push(v);
        }
        eprintln!("seed {} done", 1000 + seed);
    }
    println!("\n=== calibration sweep over {n} seeds ===");
    for s in &series {
        s.print();
    }
}
