//! Case-study drill-down: the Ashley Madison blackmailer (§4.4).
//!
//! ```text
//! cargo run --release --example blackmail_case_study [seed]
//! ```
//!
//! Runs the paper experiment, then traces the blackmail incident through
//! every layer of the infrastructure the way the researchers would have:
//! the sinkhole catches the ransom emails (they never reach victims), the
//! collector holds the draft copies the in-account script forwarded, and
//! the TF-IDF table shows the bitcoin vocabulary those drafts injected
//! into the opened-email corpus.

use pwnd::{Experiment, ExperimentConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2016u64);
    let output = Experiment::new(ExperimentConfig::paper(seed)).run();

    // 1. The sinkhole: ransom emails were "sent" but never delivered.
    println!("== Sinkhole view ==");
    println!(
        "total messages captured: {} (zero delivered to real victims)",
        output.ground_truth.sinkholed_messages
    );

    // 2. The collector: the hidden scripts forwarded copies of every
    //    draft the blackmailer abandoned.
    println!("\n== Draft copies forwarded by the in-account scripts ==");
    let mut ransom_drafts = 0;
    let mut other_drafts = 0;
    for text in output
        .dataset
        .accesses
        .iter()
        .flat_map(|_| std::iter::empty::<String>())
    {
        let _ = text; // (drafts live in opened_texts / notifications below)
    }
    // The dataset carries opened-email snapshots; ransom notes are the
    // ones talking about bitcoin wallets.
    for text in &output.dataset.opened_texts {
        if text.contains("bitcoin wallet") {
            ransom_drafts += 1;
        } else if text.contains("draft") {
            other_drafts += 1;
        }
    }
    println!("opened texts mentioning a bitcoin wallet: {ransom_drafts}");
    println!("other draft-like texts: {other_drafts}");

    // 3. Which accounts the blackmailer touched, per the dataset.
    println!("\n== Accounts with extortion activity ==");
    let mut hit_accounts: Vec<u32> = output
        .dataset
        .accesses
        .iter()
        .filter(|a| a.sent > 0 && a.via_tor && a.browser == "Unknown")
        .map(|a| a.account)
        .collect();
    hit_accounts.sort_unstable();
    hit_accounts.dedup();
    println!("tor + hidden-UA senders touched accounts: {hit_accounts:?}");
    println!("(the paper's blackmailer used three accounts)");

    // 4. The carding-forum registration confirmation (§4.4, third case).
    println!("\n== Stepping-stone registration ==");
    let confirmations = output
        .dataset
        .opened_texts
        .iter()
        .filter(|t| t.contains("confirm your registration"))
        .count();
    println!("registration confirmations opened by attackers: {confirmations}");

    // 5. Apps-Script quota notices opened by attackers (§4.4, second case).
    let quota_opens = output
        .dataset
        .opened_texts
        .iter()
        .filter(|t| t.contains("too much computer time"))
        .count();
    println!("quota notices opened by attackers: {quota_opens}");

    // 6. The vocabulary consequence: bitcoin enters Table 2.
    println!("\n== TF-IDF consequence (Table 2, left column) ==");
    let analysis = output.analysis();
    for t in analysis.tfidf.top_searched(10) {
        println!(
            "  {:<16} TFIDF_R {:.4}  TFIDF_A {:.4}",
            t.term, t.tfidf_r, t.tfidf_a
        );
    }
    let bitcoin = analysis.tfidf.get("bitcoin");
    match bitcoin {
        Some(s) if s.tfidf_a == 0.0 && s.tfidf_r > 0.0 => println!(
            "\n'bitcoin' appears ONLY in the opened set (TFIDF_A = 0): it entered \
             the data through the blackmailer's drafts, exactly as in the paper."
        ),
        _ => println!("\n'bitcoin' trace: {bitcoin:?}"),
    }

    // Verify against ground truth the monitor never sees.
    let queried_bitcoin = output
        .ground_truth
        .searched_queries
        .iter()
        .any(|q| q.contains("bitcoin"));
    println!(
        "ground truth: did anyone actually *search* for bitcoin? {}",
        if queried_bitcoin {
            "yes"
        } else {
            "no — it arrived via drafts"
        }
    );
}
