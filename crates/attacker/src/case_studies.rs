//! The §4.4 case studies, as scripted actors.
//!
//! Three concrete incidents from the paper are reproduced exactly:
//!
//! 1. **The Ashley Madison blackmailer** — one attacker used three honey
//!    accounts to send ransom demands (payable in bitcoin, with payment
//!    tutorials) to scandal victims, and abandoned many more drafts.
//!    Those drafts are what later injected the bitcoin vocabulary into
//!    the opened-email corpus of Table 2.
//! 2. **The carding-forum registrar** — an attacker used a honey account
//!    as the registration address on a carding forum; the confirmation
//!    email arrived in the honey inbox.
//! 3. **The quota-notice openers** — attackers opened the platform's
//!    "using too much computer time" notices (this one emerges naturally
//!    from gold diggers opening unread mail; no scripted actor needed).

use crate::behavior::TaxonomyClass;
use crate::identity::{AttackerIdentity, OriginPolicy};
use crate::plan::{AccessPlan, Action, VisitPlan};
use pwnd_net::geo::GeoDb;
use pwnd_net::useragent::{Browser, ClientConfig, Os};
use pwnd_sim::{Rng, SimDuration, SimTime};

/// Number of ransom drafts the blackmailer abandons per account.
pub const BLACKMAIL_DRAFTS_PER_ACCOUNT: usize = 4;

/// Number of ransom emails actually sent per account (before the abuse
/// detector reacts to the extortion content).
pub const BLACKMAIL_SENDS_PER_ACCOUNT: usize = 4;

fn ransom_body(victim: &str, wallet: u64, rng: &mut Rng) -> String {
    let amount = rng.range_u64(2, 6);
    format!(
        "Hello {victim},\n\
         I have the complete results of the Ashley Madison leak and your \
         name is listed in it. Unless you make a payment of {amount} \
         bitcoin to the bitcoin wallet listed below, I will send the \
         evidence to your family and your employer. Think what this would \
         do to your family.\n\
         bitcoin wallet: 1AM{wallet:012x}\n\
         How to pay with bitcoin: create an account on localbitcoins, \
         find a bitcoin seller with good results, buy bitcoins, and \
         transfer the bitcoins to the bitcoin wallet listed below. \
         localbitcoins is the easiest place for a first bitcoin payment. \
         You have 72 hours. Think of your family.\n"
    )
}

/// Build the blackmailer's access plans over `accounts` (the paper used
/// three honey accounts). One identity — one person — acting across all
/// of them, starting at `start`.
pub fn blackmailer_plans(
    accounts: &[u32],
    start: SimTime,
    geo: &GeoDb,
    rng: &mut Rng,
) -> Vec<AccessPlan> {
    let home = geo.sample(rng);
    let identity = AttackerIdentity {
        home_city: home,
        origin: OriginPolicy::Tor,
        client: ClientConfig::stealth(Browser::Firefox, Os::Windows),
        malleable: false,
    };
    accounts
        .iter()
        .enumerate()
        .map(|(i, &account)| {
            let mut actions = Vec::new();
            for d in 0..BLACKMAIL_DRAFTS_PER_ACCOUNT {
                let victim = format!("victim{}{}@amleak.example", account, d);
                let body = ransom_body(&victim, rng.next_u64(), rng);
                actions.push(Action::CreateDraft {
                    to: vec![victim],
                    subject: "I know everything - payment required".into(),
                    body,
                });
            }
            for s in 0..BLACKMAIL_SENDS_PER_ACCOUNT {
                let victim = format!("target{}{}@amleak.example", account, s);
                let body = ransom_body(&victim, rng.next_u64(), rng);
                actions.push(Action::SendEmail {
                    to: vec![victim],
                    subject: "Your Ashley Madison account - read now".into(),
                    body,
                });
            }
            AccessPlan {
                account,
                identity: identity.clone(),
                class: TaxonomyClass::Spammer,
                visits: vec![
                    VisitPlan {
                        start: start + SimDuration::hours(6 * i as u64),
                        length: SimDuration::hours(1),
                        actions,
                    },
                    // He returns days later to review the abandoned
                    // drafts before giving up on the account — and other
                    // criminals open them on later visits too, which is
                    // how the bitcoin vocabulary entered the paper's
                    // opened-email corpus.
                    VisitPlan {
                        start: start + SimDuration::days(4) + SimDuration::hours(6 * i as u64),
                        length: SimDuration::minutes(20),
                        actions: vec![Action::OpenDrafts { max: 4 }],
                    },
                ],
            }
        })
        .collect()
}

/// Build the carding-forum registrar's plan on one account.
pub fn forum_registrar_plan(
    account: u32,
    start: SimTime,
    geo: &GeoDb,
    rng: &mut Rng,
) -> AccessPlan {
    let home = geo.sample(rng);
    AccessPlan {
        account,
        identity: AttackerIdentity {
            home_city: home,
            origin: OriginPolicy::City(home),
            client: ClientConfig::plain(Browser::Chrome, Os::Windows),
            malleable: false,
        },
        class: TaxonomyClass::GoldDigger,
        visits: vec![VisitPlan {
            start,
            length: SimDuration::minutes(30),
            actions: vec![
                Action::RegisterExternal {
                    service: "verified-carder.example".into(),
                },
                Action::OpenUnread { max: 1 },
            ],
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blackmailer_covers_three_accounts_with_one_identity() {
        let mut rng = Rng::seed_from(1);
        let geo = GeoDb::new();
        let plans = blackmailer_plans(&[3, 7, 9], SimTime::from_secs(100), &geo, &mut rng);
        assert_eq!(plans.len(), 3);
        for p in &plans {
            assert_eq!(p.identity.origin, OriginPolicy::Tor);
            assert!(p.identity.client.hide_user_agent);
        }
        let accounts: Vec<u32> = plans.iter().map(|p| p.account).collect();
        assert_eq!(accounts, vec![3, 7, 9]);
    }

    #[test]
    fn ransom_drafts_carry_table2_vocabulary() {
        let mut rng = Rng::seed_from(2);
        let geo = GeoDb::new();
        let plans = blackmailer_plans(&[0], SimTime::ZERO, &geo, &mut rng);
        let text: String = plans[0].visits[0]
            .actions
            .iter()
            .map(|a| match a {
                Action::CreateDraft { body, .. } | Action::SendEmail { body, .. } => body.clone(),
                _ => String::new(),
            })
            .collect();
        for term in [
            "bitcoin",
            "bitcoins",
            "localbitcoins",
            "family",
            "seller",
            "payment",
            "below",
            "listed",
            "results",
            "wallet",
        ] {
            assert!(text.contains(term), "missing {term}");
        }
    }

    #[test]
    fn blackmailer_abandons_drafts_and_sends() {
        let mut rng = Rng::seed_from(3);
        let geo = GeoDb::new();
        let plans = blackmailer_plans(&[1, 2, 3], SimTime::ZERO, &geo, &mut rng);
        let drafts: usize = plans
            .iter()
            .flat_map(|p| &p.visits)
            .flat_map(|v| &v.actions)
            .filter(|a| matches!(a, Action::CreateDraft { .. }))
            .count();
        // 3 accounts × 4 drafts: the bulk of the paper's 12 unique drafts.
        assert_eq!(drafts, 12);
    }

    #[test]
    fn registrar_registers_then_reads_confirmation() {
        let mut rng = Rng::seed_from(4);
        let geo = GeoDb::new();
        let p = forum_registrar_plan(5, SimTime::from_secs(50), &geo, &mut rng);
        let acts = &p.visits[0].actions;
        assert!(matches!(acts[0], Action::RegisterExternal { .. }));
        assert!(matches!(acts[1], Action::OpenUnread { .. }));
    }
}
