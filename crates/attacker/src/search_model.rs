//! What gold diggers search for.
//!
//! §4.3.5 infers (via TF-IDF) that attackers searched for financially
//! sensitive terms: account information, payments, attachments with
//! money-related names, and material for spearphishing. Our gold diggers
//! draw queries from a weighted pool of exactly those terms — the
//! downstream TF-IDF analysis must *recover* this list from opened-email
//! text alone, which is the paper's methodological claim.

use pwnd_sim::Rng;

/// The query pool: (term, weight). Weights favour the headline Table 2
/// terms. Terms match the corpus's sensitive vocabulary; "bitcoin" is
/// *not* here — it only enters the data through the blackmailer's drafts.
pub const QUERY_POOL: &[(&str, f64)] = &[
    ("account", 3.0),
    ("payment", 3.0),
    ("seller", 1.5),
    ("family", 1.5),
    ("listed", 1.0),
    ("below", 1.0),
    ("results", 1.2),
    ("banking", 1.8),
    ("salary", 1.2),
    ("invoice", 1.2),
    ("password", 2.2),
    ("statement", 1.0),
];

/// What a *targeted* attacker hunts for in an activist's mailbox
/// (the §5 scenario extension): identities, funders, travel plans.
pub const ACTIVIST_QUERY_POOL: &[(&str, f64)] = &[
    ("sources", 3.0),
    ("donors", 2.5),
    ("contacts", 2.5),
    ("passport", 2.0),
    ("location", 2.0),
    ("journalist", 1.5),
    ("funding", 1.5),
    ("identity", 1.2),
    ("travel", 1.2),
    ("safehouse", 1.0),
];

/// Sample `n` distinct search queries from the financial pool.
pub fn sample_queries(n: usize, rng: &mut Rng) -> Vec<&'static str> {
    sample_queries_from(QUERY_POOL, n, rng)
}

/// Sample `n` distinct queries from an arbitrary weighted pool.
pub fn sample_queries_from(
    pool: &'static [(&'static str, f64)],
    n: usize,
    rng: &mut Rng,
) -> Vec<&'static str> {
    assert!(n <= pool.len());
    let weights: Vec<f64> = pool.iter().map(|&(_, w)| w).collect();
    let mut picked = Vec::with_capacity(n);
    let mut taken = vec![false; pool.len()];
    while picked.len() < n {
        let idx = rng.choose_weighted(&weights);
        if !taken[idx] {
            taken[idx] = true;
            picked.push(pool[idx].0);
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_are_distinct_and_from_pool() {
        let mut rng = Rng::seed_from(1);
        for _ in 0..100 {
            let qs = sample_queries(3, &mut rng);
            assert_eq!(qs.len(), 3);
            let mut d = qs.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 3);
            for q in qs {
                assert!(QUERY_POOL.iter().any(|&(t, _)| t == q));
            }
        }
    }

    #[test]
    fn high_weight_terms_dominate() {
        let mut rng = Rng::seed_from(2);
        let mut account = 0;
        let mut statement = 0;
        for _ in 0..5_000 {
            match sample_queries(1, &mut rng)[0] {
                "account" => account += 1,
                "statement" => statement += 1,
                _ => {}
            }
        }
        assert!(
            account > statement * 2,
            "account {account} statement {statement}"
        );
    }

    #[test]
    fn no_bitcoin_in_query_pool() {
        assert!(QUERY_POOL.iter().all(|&(t, _)| !t.contains("bitcoin")));
    }
}
