//! Attacker identities: who connects, from where, with what device.

use crate::profiles::{OutletProfile, EUROPE_RADIUS_KM};
use pwnd_corpus::persona::DecoyRegion;
use pwnd_net::geo::{City, GeoDb, UK_MIDPOINT};
use pwnd_net::useragent::{self, Browser, ClientConfig, Os};
use pwnd_sim::Rng;

/// Where an attacker's logins originate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OriginPolicy {
    /// Through Tor: a random exit per login, location analysis useless.
    Tor,
    /// From a fixed city (the attacker's home, or a proxy near the
    /// advertised decoy midpoint for location-malleable attackers).
    City(&'static City),
}

/// One attacker: a stable device plus an origin policy. The same identity
/// reused across visits is what makes the access "unique" — one cookie.
#[derive(Clone, Debug)]
pub struct AttackerIdentity {
    /// Where the attacker actually lives (ground truth; may differ from
    /// where they connect from).
    pub home_city: &'static City,
    /// Where their logins appear to come from.
    pub origin: OriginPolicy,
    /// Their browser/OS configuration.
    pub client: ClientConfig,
    /// Whether this identity deliberately connected near the advertised
    /// midpoint (ground truth for malleability analyses).
    pub malleable: bool,
}

/// Countries the worldwide criminal population draws homes from, with
/// relative weights. Deliberately a *subset* of the gazetteer: the paper
/// observed origins from 29 countries, not from everywhere — criminal
/// populations concentrate.
pub const ATTACKER_COUNTRIES: &[(&str, f64)] = &[
    ("RU", 3.0),
    ("UA", 2.0),
    ("NG", 2.5),
    ("BR", 2.0),
    ("RO", 1.5),
    ("US", 2.5),
    ("CN", 1.5),
    ("IN", 1.5),
    ("VN", 1.2),
    ("ID", 1.2),
    ("MA", 1.0),
    ("TR", 1.2),
    ("PH", 1.0),
    ("MX", 0.8),
];

/// Sample an attacker's home city: Europe-clustered with the profile's
/// probability, otherwise from the worldwide criminal-population pool.
pub fn sample_home(profile: &OutletProfile, geo: &GeoDb, rng: &mut Rng) -> &'static City {
    if rng.chance(profile.europe_home_probability) {
        geo.sample_near(UK_MIDPOINT, EUROPE_RADIUS_KM, rng)
    } else {
        let weights: Vec<f64> = ATTACKER_COUNTRIES.iter().map(|&(_, w)| w).collect();
        let country = ATTACKER_COUNTRIES[rng.choose_weighted(&weights)].0;
        geo.sample_in(country, rng)
    }
}

/// Sample a device per the profile's mix.
pub fn sample_device(profile: &OutletProfile, rng: &mut Rng) -> ClientConfig {
    let (browser, os) = if rng.chance(profile.devices.fixed_windows_probability) {
        (
            *rng.choose(&[Browser::Firefox, Browser::Chrome, Browser::Explorer]),
            Os::Windows,
        )
    } else {
        useragent::sample_consumer_client(rng)
    };
    if rng.chance(profile.devices.hide_ua_probability) {
        ClientConfig::stealth(browser, os)
    } else {
        ClientConfig::plain(browser, os)
    }
}

/// Build a full identity for an access to an account whose leak may have
/// advertised a decoy region.
pub fn sample_identity(
    profile: &OutletProfile,
    advertised: Option<DecoyRegion>,
    geo: &GeoDb,
    rng: &mut Rng,
) -> AttackerIdentity {
    let home_city = sample_home(profile, geo, rng);
    let client = sample_device(profile, rng);
    if rng.chance(profile.tor_probability) {
        return AttackerIdentity {
            home_city,
            origin: OriginPolicy::Tor,
            client,
            malleable: false,
        };
    }
    if let Some(region) = advertised {
        if rng.chance(profile.location_malleability) {
            let radius = match region {
                DecoyRegion::Uk => profile.malleable_radius_uk_km,
                DecoyRegion::Us => profile.malleable_radius_us_km,
            };
            let proxy = geo.sample_near(region.midpoint(), radius, rng);
            return AttackerIdentity {
                home_city,
                origin: OriginPolicy::City(proxy),
                client,
                malleable: true,
            };
        }
    }
    AttackerIdentity {
        home_city,
        origin: OriginPolicy::City(home_city),
        client,
        malleable: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_net::geo::haversine_km;

    #[test]
    fn malware_identities_are_tor_and_cloaked() {
        let mut rng = Rng::seed_from(1);
        let geo = GeoDb::new();
        let p = OutletProfile::malware();
        let mut tor = 0;
        for _ in 0..500 {
            let id = sample_identity(&p, None, &geo, &mut rng);
            if id.origin == OriginPolicy::Tor {
                tor += 1;
            }
            assert!(id.client.hide_user_agent, "malware UA always hidden");
        }
        assert!(tor >= 480, "tor {tor}/500");
    }

    #[test]
    fn malleable_paste_attackers_connect_near_midpoint() {
        let mut rng = Rng::seed_from(2);
        let geo = GeoDb::new();
        let p = OutletProfile::paste();
        let mut malleable = 0;
        let mut total_non_tor = 0;
        for _ in 0..1_000 {
            let id = sample_identity(&p, Some(DecoyRegion::Us), &geo, &mut rng);
            if id.origin == OriginPolicy::Tor {
                continue;
            }
            total_non_tor += 1;
            if id.malleable {
                malleable += 1;
                if let OriginPolicy::City(c) = id.origin {
                    let d = haversine_km(c.point, DecoyRegion::Us.midpoint());
                    assert!(d <= p.malleable_radius_us_km, "{} at {d}", c.name);
                }
            }
        }
        let frac = malleable as f64 / total_non_tor as f64;
        assert!((0.65..0.85).contains(&frac), "malleable frac {frac}");
    }

    #[test]
    fn no_advertised_location_means_no_malleability() {
        let mut rng = Rng::seed_from(3);
        let geo = GeoDb::new();
        let p = OutletProfile::paste();
        for _ in 0..300 {
            let id = sample_identity(&p, None, &geo, &mut rng);
            assert!(!id.malleable);
            if let OriginPolicy::City(c) = id.origin {
                assert_eq!(c.name, id.home_city.name);
            }
        }
    }

    #[test]
    fn homes_are_europe_heavy() {
        let mut rng = Rng::seed_from(4);
        let geo = GeoDb::new();
        let p = OutletProfile::paste();
        let near = (0..1_000)
            .filter(|_| {
                let h = sample_home(&p, &geo, &mut rng);
                haversine_km(h.point, UK_MIDPOINT) <= EUROPE_RADIUS_KM
            })
            .count();
        // forced-Europe fraction plus whatever the world draw adds.
        assert!(near > 450, "{near}/1000 in Europe");
    }

    #[test]
    fn forum_devices_less_cloaked_than_paste() {
        let mut rng = Rng::seed_from(5);
        let hidden = |p: &OutletProfile, rng: &mut Rng| {
            (0..1_000)
                .filter(|_| sample_device(p, rng).hide_user_agent)
                .count()
        };
        let paste = hidden(&OutletProfile::paste(), &mut rng);
        let forum = hidden(&OutletProfile::forum(), &mut rng);
        assert!(paste > forum, "paste {paste} forum {forum}");
    }
}
