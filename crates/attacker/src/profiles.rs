//! Per-outlet calibration constants.
//!
//! Everything tunable about the attacker population lives here, and every
//! constant names the paper statistic it targets. Benches print
//! paper-vs-measured tables; EXPERIMENTS.md records the comparison.

use crate::behavior::TaxonomyClass;
use pwnd_leak::plan::OutletKind;

/// Device variety knobs for an outlet's population (Figure 5).
#[derive(Clone, Copy, Debug)]
pub struct DeviceMix {
    /// Probability the attacker presents an empty user agent.
    /// Targets Figure 5a: malware 100% unknown browsers, paste ≈50%
    /// unknown, forums noticeably less.
    pub hide_ua_probability: f64,
    /// Probability the attacker is on a fixed Windows box rather than the
    /// consumer mix. Targets Figure 5b: malware accesses were
    /// Windows-heavy and homogeneous; paste/forum populations are motley
    /// (including Android).
    pub fixed_windows_probability: f64,
}

/// One outlet's population parameters.
#[derive(Clone, Debug)]
pub struct OutletProfile {
    /// Which outlet this profile describes.
    pub outlet: OutletKind,
    /// Probability an access comes through Tor.
    /// Targets §4.3.4: paste 28/144 ≈ 0.19, forums 48/125 ≈ 0.38,
    /// malware 56/57 ≈ 0.98.
    pub tor_probability: f64,
    /// Device mix.
    pub devices: DeviceMix,
    /// Taxonomy weights for a fresh access, in
    /// [curious, gold digger, spammer, hijacker] order.
    /// Targets Figure 1: malware has no hijackers/spammers; paste has
    /// ≈20% hijackers; forums have the largest (≈30%) gold-digger share.
    /// Overall composition targets 224 curious / 82 gold / 36 hijacker
    /// accesses and 8 spammer accounts out of 326.
    pub taxonomy_weights: [f64; 4],
    /// Probability that an attacker *with advertised victim location*
    /// connects through a proxy near the advertised midpoint instead of
    /// from home. Targets Figures 6a/6b + the Cramér–von Mises result:
    /// significant for paste (p < 0.01), not significant for forums.
    pub location_malleability: f64,
    /// Radius (km) around the UK midpoint within which malleable
    /// attackers pick their proxy. Wider than the US radius: the paper's
    /// UK paste-with-location median circle is 1400 km (proxies all over
    /// Europe), while the US one is 939 km.
    pub malleable_radius_uk_km: f64,
    /// Radius (km) around the US midpoint for malleable proxies.
    pub malleable_radius_us_km: f64,
    /// Probability the attacker's *home* is in the European cluster
    /// rather than sampled worldwide. Targets the no-location medians of
    /// Figure 6 (UK ≈ 1784 km — a Europe-heavy crowd — while the same
    /// crowd sits ≈ 7900 km from Pontiac).
    pub europe_home_probability: f64,
    /// Probability that a session rummaging through the account stumbles
    /// on something it shouldn't — passed to the script-discovery roll.
    pub thoroughness: f64,
    /// The weighted query pool gold diggers draw from. Defaults to the
    /// financial pool; the §5 activist scenario swaps in
    /// [`crate::search_model::ACTIVIST_QUERY_POOL`].
    pub query_pool: &'static [(&'static str, f64)],
}

/// Europe cluster radius around London used for home sampling, km.
pub const EUROPE_RADIUS_KM: f64 = 2_500.0;

impl OutletProfile {
    /// Paste-site population: fast, motley, 20% hijackers, evasive about
    /// location when given one.
    pub fn paste() -> OutletProfile {
        OutletProfile {
            outlet: OutletKind::Paste,
            tor_probability: 0.19,
            devices: DeviceMix {
                hide_ua_probability: 0.50,
                fixed_windows_probability: 0.10,
            },
            taxonomy_weights: [0.655, 0.16, 0.03, 0.155],
            location_malleability: 0.75,
            malleable_radius_uk_km: 1_700.0,
            malleable_radius_us_km: 900.0,
            europe_home_probability: 0.50,
            thoroughness: 0.4,
            query_pool: crate::search_model::QUERY_POOL,
        }
    }

    /// Forum population: slower, keenest gold diggers, least careful.
    pub fn forum() -> OutletProfile {
        OutletProfile {
            outlet: OutletKind::Forum,
            tor_probability: 0.38,
            devices: DeviceMix {
                hide_ua_probability: 0.25,
                fixed_windows_probability: 0.15,
            },
            taxonomy_weights: [0.64, 0.26, 0.035, 0.065],
            location_malleability: 0.06,
            malleable_radius_uk_km: 2_200.0,
            malleable_radius_us_km: 1_500.0,
            europe_home_probability: 0.60,
            thoroughness: 0.6,
            query_pool: crate::search_model::QUERY_POOL,
        }
    }

    /// Malware/botmaster population: nearly always Tor, fully
    /// UA-cloaked, Windows-homogeneous, never destructive. The botmaster
    /// checks credentials ("curious"); buyers after a market sale assess
    /// value ("gold digger") — the buyer profile is selected by the
    /// driver via [`OutletProfile::malware_buyer`].
    pub fn malware() -> OutletProfile {
        OutletProfile {
            outlet: OutletKind::Malware,
            tor_probability: 0.98,
            devices: DeviceMix {
                hide_ua_probability: 1.0,
                fixed_windows_probability: 0.75,
            },
            taxonomy_weights: [1.0, 0.0, 0.0, 0.0],
            location_malleability: 0.0,
            malleable_radius_uk_km: 0.0,
            malleable_radius_us_km: 0.0,
            europe_home_probability: 0.70,
            thoroughness: 0.2,
            query_pool: crate::search_model::QUERY_POOL,
        }
    }

    /// The post-sale buyer variant of the malware profile: all accesses
    /// are gold-digger assessments (Figure 4: the resale bursts were of
    /// gold-digger type), still stealthy.
    pub fn malware_buyer() -> OutletProfile {
        OutletProfile {
            taxonomy_weights: [0.3, 0.7, 0.0, 0.0],
            ..OutletProfile::malware()
        }
    }

    /// A targeted variant of this profile for the activist scenario
    /// (§5 future work): motivated attackers dig harder and hunt for the
    /// activist-sensitive vocabulary.
    pub fn targeting_activists(mut self) -> OutletProfile {
        self.query_pool = crate::search_model::ACTIVIST_QUERY_POOL;
        // Targeted attackers are disproportionately gold diggers.
        let hijack = self.taxonomy_weights[3];
        self.taxonomy_weights = [
            (self.taxonomy_weights[0] - 0.15).max(0.1),
            self.taxonomy_weights[1] + 0.15,
            self.taxonomy_weights[2],
            hijack,
        ];
        self.thoroughness = (self.thoroughness + 0.2).min(1.0);
        self
    }

    /// The profile for an outlet kind (initial custodian behaviour).
    pub fn for_outlet(outlet: OutletKind) -> OutletProfile {
        match outlet {
            OutletKind::Paste => OutletProfile::paste(),
            OutletKind::Forum => OutletProfile::forum(),
            OutletKind::Malware => OutletProfile::malware(),
        }
    }

    /// Draw a taxonomy class from this profile's weights.
    pub fn sample_taxonomy(&self, rng: &mut pwnd_sim::Rng) -> TaxonomyClass {
        match rng.choose_weighted(&self.taxonomy_weights) {
            0 => TaxonomyClass::Curious,
            1 => TaxonomyClass::GoldDigger,
            2 => TaxonomyClass::Spammer,
            _ => TaxonomyClass::Hijacker,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_sim::Rng;

    #[test]
    fn tor_probabilities_match_paper_ratios() {
        // paste 28/144, forum 48/125, malware 56/57.
        assert!((OutletProfile::paste().tor_probability - 28.0 / 144.0).abs() < 0.02);
        assert!((OutletProfile::forum().tor_probability - 48.0 / 125.0).abs() < 0.02);
        assert!(OutletProfile::malware().tor_probability > 0.95);
    }

    #[test]
    fn malware_population_never_destructive() {
        let p = OutletProfile::malware();
        assert_eq!(p.taxonomy_weights[2], 0.0, "no spammers");
        assert_eq!(p.taxonomy_weights[3], 0.0, "no hijackers");
        let b = OutletProfile::malware_buyer();
        assert_eq!(b.taxonomy_weights[2], 0.0);
        assert_eq!(b.taxonomy_weights[3], 0.0);
        assert!(b.taxonomy_weights[1] > 0.5, "buyers are gold diggers");
    }

    #[test]
    fn paste_has_most_hijackers_forums_most_gold_diggers() {
        let paste = OutletProfile::paste();
        let forum = OutletProfile::forum();
        assert!(paste.taxonomy_weights[3] > forum.taxonomy_weights[3]);
        assert!(forum.taxonomy_weights[1] > paste.taxonomy_weights[1]);
    }

    #[test]
    fn malware_fully_cloaks_user_agents() {
        assert_eq!(OutletProfile::malware().devices.hide_ua_probability, 1.0);
        assert!(OutletProfile::paste().devices.hide_ua_probability < 1.0);
    }

    #[test]
    fn paste_most_location_malleable() {
        let paste = OutletProfile::paste();
        let forum = OutletProfile::forum();
        assert!(paste.location_malleability > 2.0 * forum.location_malleability);
        assert_eq!(OutletProfile::malware().location_malleability, 0.0);
    }

    #[test]
    fn taxonomy_sampling_follows_weights() {
        let mut rng = Rng::seed_from(1);
        let p = OutletProfile::paste();
        let mut counts = [0usize; 4];
        for _ in 0..10_000 {
            match p.sample_taxonomy(&mut rng) {
                TaxonomyClass::Curious => counts[0] += 1,
                TaxonomyClass::GoldDigger => counts[1] += 1,
                TaxonomyClass::Spammer => counts[2] += 1,
                TaxonomyClass::Hijacker => counts[3] += 1,
            }
        }
        assert!(counts[0] > counts[3]);
        assert!(counts[3] > counts[2]);
        let hijacker_frac = counts[3] as f64 / 10_000.0;
        assert!((0.13..0.19).contains(&hijacker_frac), "{hijacker_frac}");
    }

    #[test]
    fn for_outlet_dispatch() {
        for kind in OutletKind::ALL {
            assert_eq!(OutletProfile::for_outlet(kind).outlet, kind);
        }
    }
}
