#![warn(missing_docs)]

//! # pwnd-attacker — the criminal population
//!
//! The dependent variable of the study is *attacker behaviour*: what the
//! people who pick up leaked credentials actually do. This crate models
//! that population as stochastic actors whose parameters are calibrated,
//! one named constant at a time, against the paper's measurements
//! (see [`profiles`] — every constant cites the statistic it targets).
//!
//! An attacker is a (device, origin-policy, behaviour) triple:
//!
//! * the **device** is a browser/OS pair, possibly configured to present
//!   an empty user agent (Figure 5's "unknown" browsers);
//! * the **origin policy** decides where logins come from — the
//!   attacker's home city, a Tor exit, or (for leaks that advertise the
//!   victim's location) a proxy near the advertised midpoint: the
//!   *location malleability* of §4.3.4;
//! * the **behaviour** is one of the four taxonomy classes (§4.2):
//!   curious, gold digger, spammer, hijacker — expressed as a plan of
//!   timed visits and actions that the experiment driver executes against
//!   the webmail service.
//!
//! The crate emits *plans*, not side effects: [`plan::AccessPlan`] values
//! that `pwnd-core` interprets. That keeps the population model
//! independently testable.

pub mod arrivals;
pub mod behavior;
pub mod case_studies;
pub mod identity;
pub mod plan;
pub mod profiles;
pub mod search_model;

pub use behavior::TaxonomyClass;
pub use identity::{AttackerIdentity, OriginPolicy};
pub use plan::{AccessPlan, Action, VisitPlan};
pub use profiles::OutletProfile;
