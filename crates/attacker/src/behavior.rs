//! Taxonomy behaviour classes and their session-shape parameters.
//!
//! §4.2 defines four classes by what an access *does*; §4.3.1 (Figure 2)
//! characterizes how long each class's accesses last: almost everything
//! is minutes, spammers burst-and-vanish, and curious / gold-digger /
//! hijacker accesses have a ~10% tail that keeps returning for days.

use pwnd_sim::dist::LogNormal;
use pwnd_sim::{Rng, SimDuration};

/// The four §4.2 attacker classes. Not mutually exclusive in the data —
/// a spammer access may also hijack — but each access is *driven* by one
/// dominant intent, which is what this enum captures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaxonomyClass {
    /// Logs in to check the credentials work, does nothing else.
    Curious,
    /// Searches the account for valuable information.
    GoldDigger,
    /// Uses the account to send email.
    Spammer,
    /// Locks the owner out by changing the password.
    Hijacker,
}

impl TaxonomyClass {
    /// All classes.
    pub const ALL: [TaxonomyClass; 4] = [
        TaxonomyClass::Curious,
        TaxonomyClass::GoldDigger,
        TaxonomyClass::Spammer,
        TaxonomyClass::Hijacker,
    ];

    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            TaxonomyClass::Curious => "Curious",
            TaxonomyClass::GoldDigger => "Gold Digger",
            TaxonomyClass::Spammer => "Spammer",
            TaxonomyClass::Hijacker => "Hijacker",
        }
    }
}

/// Session-shape parameters for one class.
#[derive(Clone, Debug)]
pub struct SessionShape {
    /// Distribution of a single visit's length (seconds).
    pub visit_length: LogNormal,
    /// Probability the access returns for another visit after each visit
    /// (geometric number of return visits). Figure 2: curious accesses
    /// keep coming back to check for new information; spammers never do.
    pub return_probability: f64,
    /// Distribution of the gap between visits (seconds). Returns happen
    /// over days.
    pub return_gap: LogNormal,
}

impl SessionShape {
    /// Shape parameters for `class`.
    pub fn for_class(class: TaxonomyClass) -> SessionShape {
        match class {
            // Short check; the paper's curious CDF has a long revisit tail
            // ("repeated over many days ... to find out if there is new
            // information"), conflicting with [13] — our return
            // probability is set accordingly high.
            TaxonomyClass::Curious => SessionShape {
                visit_length: LogNormal::with_median(150.0, 0.8),
                return_probability: 0.5,
                return_gap: LogNormal::with_median(2.0 * 86_400.0, 0.9),
            },
            // Longer rummage; ~10% multi-day tail.
            TaxonomyClass::GoldDigger => SessionShape {
                visit_length: LogNormal::with_median(600.0, 1.0),
                return_probability: 0.35,
                return_gap: LogNormal::with_median(2.5 * 86_400.0, 0.9),
            },
            // "Spammers tend to use accounts aggressively for a short time
            // and then disconnect."
            TaxonomyClass::Spammer => SessionShape {
                visit_length: LogNormal::with_median(3_600.0, 0.5),
                return_probability: 0.05,
                return_gap: LogNormal::with_median(86_400.0, 0.5),
            },
            // Quick lockout, occasionally back to use the spoils.
            TaxonomyClass::Hijacker => SessionShape {
                visit_length: LogNormal::with_median(300.0, 0.9),
                return_probability: 0.30,
                return_gap: LogNormal::with_median(3.0 * 86_400.0, 0.9),
            },
        }
    }

    /// Sample one visit length.
    pub fn sample_visit_length(&self, rng: &mut Rng) -> SimDuration {
        SimDuration::from_secs_f64(self.visit_length.sample(rng).clamp(20.0, 6.0 * 3600.0))
    }

    /// Sample the number of *return* visits (0 = single visit).
    pub fn sample_return_count(&self, rng: &mut Rng) -> usize {
        let mut n = 0;
        while n < 12 && rng.chance(self.return_probability) {
            n += 1;
        }
        n
    }

    /// Sample the gap before a return visit.
    pub fn sample_return_gap(&self, rng: &mut Rng) -> SimDuration {
        SimDuration::from_secs_f64(
            self.return_gap
                .sample(rng)
                .clamp(4.0 * 3600.0, 30.0 * 86_400.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spammers_rarely_return_curious_often_do() {
        let mut rng = Rng::seed_from(1);
        let spam = SessionShape::for_class(TaxonomyClass::Spammer);
        let curious = SessionShape::for_class(TaxonomyClass::Curious);
        let count = |s: &SessionShape, rng: &mut Rng| -> usize {
            (0..2_000).map(|_| s.sample_return_count(rng)).sum()
        };
        let spam_returns = count(&spam, &mut rng);
        let curious_returns = count(&curious, &mut rng);
        assert!(
            curious_returns > 5 * spam_returns,
            "curious {curious_returns} spam {spam_returns}"
        );
    }

    #[test]
    fn gold_digger_visits_longer_than_curious() {
        let mut rng = Rng::seed_from(2);
        let gd = SessionShape::for_class(TaxonomyClass::GoldDigger);
        let cu = SessionShape::for_class(TaxonomyClass::Curious);
        let mean = |s: &SessionShape, rng: &mut Rng| -> f64 {
            (0..2_000)
                .map(|_| s.sample_visit_length(rng).as_secs() as f64)
                .sum::<f64>()
                / 2_000.0
        };
        assert!(mean(&gd, &mut rng) > mean(&cu, &mut rng));
    }

    #[test]
    fn visit_lengths_mostly_minutes() {
        // Figure 2: "The vast majority of unique accesses lasts a few
        // minutes."
        let mut rng = Rng::seed_from(3);
        for class in [TaxonomyClass::Curious, TaxonomyClass::Hijacker] {
            let s = SessionShape::for_class(class);
            let under_30min = (0..2_000)
                .filter(|_| s.sample_visit_length(&mut rng) < SimDuration::minutes(30))
                .count();
            assert!(under_30min > 1_500, "{class:?}: {under_30min}/2000");
        }
    }

    #[test]
    fn return_gaps_are_days() {
        let mut rng = Rng::seed_from(4);
        let s = SessionShape::for_class(TaxonomyClass::Curious);
        for _ in 0..200 {
            let gap = s.sample_return_gap(&mut rng);
            assert!(gap >= SimDuration::hours(4));
            assert!(gap <= SimDuration::days(30));
        }
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(TaxonomyClass::GoldDigger.label(), "Gold Digger");
        assert_eq!(TaxonomyClass::ALL.len(), 4);
    }
}
