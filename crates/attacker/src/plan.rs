//! Access plans: the timed action scripts the experiment driver executes.
//!
//! An [`AccessPlan`] is one *unique access* in the paper's sense — one
//! attacker identity (one cookie) acting on one account across one or
//! more timed visits. The driver in `pwnd-core` interprets the actions
//! against the webmail service; this module only *composes* them, so the
//! behavioural model can be tested without a service instance.

use crate::behavior::{SessionShape, TaxonomyClass};
use crate::identity::AttackerIdentity;
use crate::profiles::OutletProfile;
use crate::search_model::{sample_queries, sample_queries_from};
use pwnd_corpus::persona::DecoyRegion;
use pwnd_net::geo::GeoDb;
use pwnd_sim::{Rng, SimDuration, SimTime};

/// One action inside a visit.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Look at the inbox listing (no observable notification).
    ListInbox,
    /// Search the mailbox and open up to `open_top` of the results.
    Search {
        /// Query string.
        query: String,
        /// How many of the top hits to open.
        open_top: usize,
    },
    /// Open up to `max` unread inbox messages (newest first).
    OpenUnread {
        /// Cap.
        max: usize,
    },
    /// Open up to `max` existing drafts (how later visitors found the
    /// blackmailer's abandoned ransom notes).
    OpenDrafts {
        /// Cap.
        max: usize,
    },
    /// Star the most recently opened message.
    StarLastOpened,
    /// Compose and abandon a draft.
    CreateDraft {
        /// Recipients.
        to: Vec<String>,
        /// Subject.
        subject: String,
        /// Body.
        body: String,
    },
    /// Send one message.
    SendEmail {
        /// Recipients.
        to: Vec<String>,
        /// Subject.
        subject: String,
        /// Body.
        body: String,
    },
    /// Send a burst of messages at a fixed cadence until done or blocked.
    SendBurst {
        /// Number of messages to attempt.
        count: usize,
        /// Subject template.
        subject: String,
        /// Body template.
        body: String,
        /// Seconds between sends.
        interval_secs: u64,
    },
    /// Change the account password (hijack).
    ChangePassword {
        /// The attacker's new password.
        new_password: String,
    },
    /// Rummage through the account's documents — may discover and delete
    /// the monitoring script (probability comes from the outlet profile's
    /// thoroughness; the driver rolls it).
    Rummage {
        /// Discovery-roll intensity in \[0,1\]; multiplies the script
        /// runtime's base discovery probability.
        intensity: f64,
    },
    /// Use the account as the registration address on an external service
    /// (the §4.4 carding-forum case study): a confirmation email arrives
    /// and is opened.
    RegisterExternal {
        /// The external service's name.
        service: String,
    },
}

/// One timed visit.
#[derive(Clone, Debug)]
pub struct VisitPlan {
    /// When the visit's login happens.
    pub start: SimTime,
    /// How long the visit lasts; actions are spread across this span.
    pub length: SimDuration,
    /// Actions in order.
    pub actions: Vec<Action>,
}

/// One unique access: identity + dominant class + visits.
#[derive(Clone, Debug)]
pub struct AccessPlan {
    /// Target account (experiment index).
    pub account: u32,
    /// The acting identity (stable device = one cookie).
    pub identity: AttackerIdentity,
    /// Dominant taxonomy class.
    pub class: TaxonomyClass,
    /// Timed visits, in chronological order.
    pub visits: Vec<VisitPlan>,
}

impl AccessPlan {
    /// Planned `t_last − t_0` across visits (lower-bounds the measured
    /// duration exactly as in the paper).
    pub fn planned_duration(&self) -> SimDuration {
        match (self.visits.first(), self.visits.last()) {
            (Some(first), Some(last)) => (last.start + last.length).since(first.start),
            _ => SimDuration::ZERO,
        }
    }
}

fn gold_digger_actions(profile: &OutletProfile, rng: &mut Rng, first_visit: bool) -> Vec<Action> {
    let mut actions = vec![Action::ListInbox];
    let n_queries = if first_visit {
        1 + usize::from(rng.chance(0.25))
    } else {
        1
    };
    for q in sample_queries_from(profile.query_pool, n_queries, rng) {
        actions.push(Action::Search {
            query: q.to_string(),
            open_top: 1,
        });
    }
    if rng.chance(0.3) {
        // Poke at whatever sits unread at the top of the inbox — this is
        // how the paper's attackers came to open the Apps-Script quota
        // notices (§4.4).
        actions.push(Action::OpenUnread { max: 1 });
    }
    if rng.chance(0.35) {
        actions.push(Action::OpenDrafts {
            max: rng.range_u64(1, 3) as usize,
        });
    }
    if rng.chance(0.12) {
        actions.push(Action::StarLastOpened);
    }
    actions.push(Action::Rummage {
        intensity: profile.thoroughness,
    });
    actions
}

fn spam_subject_body(rng: &mut Rng) -> (String, String) {
    let subjects = [
        "You won't believe these deals",
        "Urgent: your parcel is waiting",
        "Make money from home",
        "Limited offer inside",
    ];
    let bodies = [
        "Click the link to claim your reward now.",
        "Best prices on meds, discreet shipping worldwide.",
        "Your friend recommended this amazing opportunity.",
    ];
    (
        (*rng.choose(&subjects)).to_string(),
        (*rng.choose(&bodies)).to_string(),
    )
}

/// Shift `t` forward into the attacker's local waking window (08:00 to
/// midnight, by home-city longitude) if it falls in their night. Human
/// criminals act on stolen credentials when they are awake; this is what
/// puts diurnal structure into the access timeline.
fn align_to_waking(t: SimTime, lon: f64, rng: &mut Rng) -> SimTime {
    let tz_offset_secs = ((lon / 15.0).round() as i64) * 3600;
    let local = (t.as_secs() as i64 + tz_offset_secs).rem_euclid(86_400);
    let local_hour = local / 3600;
    if (8..24).contains(&local_hour) {
        return t;
    }
    // Asleep: resume at a jittered time during the coming morning.
    let target = 8 * 3600 + rng.range_u64(0, 6 * 3600) as i64;
    let delta = (target - local).rem_euclid(86_400);
    t + SimDuration::from_secs(delta as u64)
}

/// Compose the full plan for one fresh access.
///
/// `advertised` carries the leak's decoy region if one was published;
/// `start` is when the attacker first acts on the credentials.
pub fn build_access_plan(
    profile: &OutletProfile,
    account: u32,
    advertised: Option<DecoyRegion>,
    start: SimTime,
    geo: &GeoDb,
    rng: &mut Rng,
) -> AccessPlan {
    let identity = crate::identity::sample_identity(profile, advertised, geo, rng);
    let class = profile.sample_taxonomy(rng);
    let shape = SessionShape::for_class(class);

    let n_visits = 1 + shape.sample_return_count(rng);
    let mut visits = Vec::with_capacity(n_visits);
    let lon = identity.home_city.point.lon;
    let mut t = align_to_waking(start, lon, rng);
    for v in 0..n_visits {
        let length = shape.sample_visit_length(rng);
        let first = v == 0;
        let actions: Vec<Action> = match class {
            TaxonomyClass::Curious => {
                // Login, glance, leave. Repeats "to check for new activity".
                if rng.chance(0.6) {
                    vec![Action::ListInbox]
                } else {
                    vec![]
                }
            }
            TaxonomyClass::GoldDigger => {
                if first || rng.chance(0.5) {
                    gold_digger_actions(profile, rng, first)
                } else {
                    // A quick glance for anything new.
                    vec![Action::ListInbox]
                }
            }
            TaxonomyClass::Spammer => {
                let (subject, body) = spam_subject_body(rng);
                let mut acts = Vec::new();
                if first {
                    // No access behaved *exclusively* as spammer (§4.2):
                    // they also dig or hijack.
                    if rng.chance(0.5) {
                        let q = sample_queries(1, rng)[0];
                        acts.push(Action::Search {
                            query: q.to_string(),
                            open_top: 1,
                        });
                    }
                    if rng.chance(0.25) {
                        acts.push(Action::CreateDraft {
                            to: vec![],
                            subject: subject.clone(),
                            body: body.clone(),
                        });
                    }
                    acts.push(Action::SendBurst {
                        count: rng.range_u64(110, 180) as usize,
                        subject,
                        body,
                        interval_secs: rng.range_u64(20, 60),
                    });
                    if rng.chance(0.4) {
                        acts.push(Action::ChangePassword {
                            new_password: format!("spam-{:08x}", rng.next_u64() as u32),
                        });
                    }
                } else {
                    acts.push(Action::SendBurst {
                        count: rng.range_u64(20, 60) as usize,
                        subject,
                        body,
                        interval_secs: rng.range_u64(20, 60),
                    });
                }
                acts
            }
            TaxonomyClass::Hijacker => {
                if first {
                    let mut acts = Vec::new();
                    if rng.chance(0.4) {
                        acts.push(Action::ListInbox);
                    }
                    acts.push(Action::ChangePassword {
                        new_password: format!("owned-{:08x}", rng.next_u64() as u32),
                    });
                    acts
                } else {
                    // Post-hijack use of the spoils.
                    gold_digger_actions(profile, rng, false)
                }
            }
        };
        visits.push(VisitPlan {
            start: t,
            length,
            actions,
        });
        // Next visit: gap, then snapped into the attacker's waking hours
        // (strictly after this visit ends either way).
        let raw = t + length + shape.sample_return_gap(rng);
        t = align_to_waking(raw, lon, rng).max(t + length + SimDuration::minutes(1));
    }

    AccessPlan {
        account,
        identity,
        class,
        visits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(class_forcing_seed: u64) -> AccessPlan {
        let mut rng = Rng::seed_from(class_forcing_seed);
        let geo = GeoDb::new();
        build_access_plan(
            &OutletProfile::paste(),
            0,
            Some(DecoyRegion::Uk),
            SimTime::from_secs(1_000),
            &geo,
            &mut rng,
        )
    }

    fn build_class(class: TaxonomyClass) -> AccessPlan {
        // Scan seeds until the sampled class matches; deterministic.
        for seed in 0..500 {
            let p = build(seed);
            if p.class == class {
                return p;
            }
        }
        panic!("no seed produced {class:?}");
    }

    #[test]
    fn visits_are_chronological() {
        for seed in 0..50 {
            let p = build(seed);
            assert!(!p.visits.is_empty());
            for w in p.visits.windows(2) {
                assert!(w[1].start >= w[0].start + w[0].length + SimDuration::minutes(1));
            }
            // The first visit happens at the arrival instant or — if the
            // attacker was asleep — within their next waking day.
            assert!(p.visits[0].start >= SimTime::from_secs(1_000));
            assert!(p.visits[0].start <= SimTime::from_secs(1_000) + SimDuration::days(2));
        }
    }

    #[test]
    fn visits_respect_waking_hours() {
        // All visit starts fall in the attacker's local 08:00-24:00.
        for seed in 0..200 {
            let mut rng = Rng::seed_from(seed);
            let geo = GeoDb::new();
            let p = build_access_plan(
                &OutletProfile::paste(),
                0,
                None,
                SimTime::from_secs(3 * 3600), // 03:00 UTC
                &geo,
                &mut rng,
            );
            let lon = p.identity.home_city.point.lon;
            let tz = ((lon / 15.0).round() as i64) * 3600;
            for v in &p.visits {
                let local = (v.start.as_secs() as i64 + tz).rem_euclid(86_400);
                let hour = local / 3600;
                assert!((8..24).contains(&hour), "seed {seed}: local hour {hour}");
            }
        }
    }

    #[test]
    fn hijacker_changes_password_on_first_visit() {
        let p = build_class(TaxonomyClass::Hijacker);
        assert!(p.visits[0]
            .actions
            .iter()
            .any(|a| matches!(a, Action::ChangePassword { .. })));
    }

    #[test]
    fn spammer_bursts_and_is_never_pure() {
        let p = build_class(TaxonomyClass::Spammer);
        let first = &p.visits[0].actions;
        let has_burst = first.iter().any(|a| matches!(a, Action::SendBurst { .. }));
        assert!(has_burst);
        // §4.2: spammers always do something else too (search, draft, or
        // hijack) — across many sampled spammers at least.
        let mut impure = false;
        for seed in 0..2_000 {
            let p = build(seed);
            if p.class == TaxonomyClass::Spammer {
                impure |= p.visits[0].actions.len() > 1;
            }
        }
        assert!(impure);
    }

    #[test]
    fn gold_digger_searches_sensitive_terms() {
        let p = build_class(TaxonomyClass::GoldDigger);
        let queries: Vec<&str> = p
            .visits
            .iter()
            .flat_map(|v| &v.actions)
            .filter_map(|a| match a {
                Action::Search { query, .. } => Some(query.as_str()),
                _ => None,
            })
            .collect();
        assert!(!queries.is_empty());
        for q in queries {
            assert!(crate::search_model::QUERY_POOL.iter().any(|&(t, _)| t == q));
        }
    }

    #[test]
    fn curious_accesses_do_nothing_substantial() {
        let p = build_class(TaxonomyClass::Curious);
        for v in &p.visits {
            for a in &v.actions {
                assert!(matches!(a, Action::ListInbox), "curious did {a:?}");
            }
        }
    }

    #[test]
    fn planned_duration_spans_visits() {
        for seed in 0..100 {
            let p = build(seed);
            if p.visits.len() > 1 {
                assert!(p.planned_duration() >= SimDuration::hours(4));
                return;
            }
        }
        panic!("no multi-visit plan in 100 seeds");
    }
}
