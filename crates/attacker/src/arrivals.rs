//! When accesses arrive at each leaked account.
//!
//! Public outlets (pastes, forum threads) expose credentials to *many*
//! independent actors: arrivals follow the outlet's decaying visit-rate
//! curve (Figure 3's per-outlet CDFs). Malware-stolen credentials are
//! private: the botmaster runs a credential check shortly after
//! exfiltration, and further accesses only appear when a market sale
//! hands the account to a buyer (Figure 4's bursts at ~30/~100 days).

use pwnd_leak::forum::Forum;
use pwnd_leak::market::Sale;
use pwnd_leak::paste::PasteSite;
use pwnd_sim::dist::PoissonProcess;
use pwnd_sim::{Rng, SimDuration, SimTime};

/// Access arrivals for one credential posted on a paste site.
pub fn paste_arrivals(
    site: &PasteSite,
    posted_at: SimTime,
    horizon: SimTime,
    rng: &mut Rng,
) -> Vec<SimTime> {
    let site = site.clone();
    let max = site.rate_max();
    let p = PoissonProcess::new(move |t| site.visit_rate(posted_at, t), max);
    p.sample_all(posted_at, horizon, rng)
}

/// Access arrivals for one credential posted in a forum teaser thread.
pub fn forum_arrivals(
    forum: &Forum,
    posted_at: SimTime,
    horizon: SimTime,
    rng: &mut Rng,
) -> Vec<SimTime> {
    let forum = forum.clone();
    let max = forum.rate_max();
    let p = PoissonProcess::new(move |t| forum.visit_rate(posted_at, t), max);
    p.sample_all(posted_at, horizon, rng)
}

/// One malware-outlet arrival: when, and whether it is a post-sale buyer
/// (buyers skew gold-digger; the botmaster's checks are curious).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MalwareArrival {
    /// Login time.
    pub at: SimTime,
    /// `true` when the actor bought the account on the market.
    pub buyer: bool,
    /// Sale wave index for buyers.
    pub wave: Option<u32>,
}

/// Arrivals for one malware-stolen account.
///
/// `stolen_at` is the exfiltration time; `sales` the market's planned
/// sale waves (only waves containing `account` produce buyer arrivals).
pub fn malware_arrivals(
    account: u32,
    stolen_at: SimTime,
    sales: &[Sale],
    horizon: SimTime,
    rng: &mut Rng,
) -> Vec<MalwareArrival> {
    let mut out = Vec::new();
    // Botmaster checks: one per stolen credential, within the first
    // ~8 days (Figure 3's malware curve starts slow).
    let checks = 1;
    for _ in 0..checks {
        let delay = SimDuration::from_secs_f64(rng.range_f64(0.5, 8.0) * 86_400.0);
        let at = stolen_at + delay;
        if at < horizon {
            out.push(MalwareArrival {
                at,
                buyer: false,
                wave: None,
            });
        }
    }
    // Buyer assessments after each sale containing this account.
    for sale in sales {
        if !sale.accounts.contains(&account) {
            continue;
        }
        let n = rng.range_u64(1, 4) as usize; // buyers dig harder
        for _ in 0..n {
            let delay = SimDuration::from_secs_f64(rng.range_f64(0.3, 8.0) * 86_400.0);
            let at = sale.at + delay;
            if at < horizon {
                out.push(MalwareArrival {
                    at,
                    buyer: true,
                    wave: Some(sale.wave),
                });
            }
        }
    }
    out.sort_by_key(|a| a.at);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_leak::market::Market;

    const HORIZON_DAYS: u64 = 236;

    fn horizon() -> SimTime {
        SimTime::ZERO + SimDuration::days(HORIZON_DAYS)
    }

    #[test]
    fn paste_volume_matches_calibration() {
        // 144 accesses over 50 paste accounts ≈ 2.9/account; popular
        // sites carry most of it.
        let mut rng = Rng::seed_from(1);
        let site = PasteSite::pastebin();
        let total: usize = (0..200)
            .map(|_| paste_arrivals(&site, SimTime::ZERO, horizon(), &mut rng).len())
            .sum();
        let mean = total as f64 / 200.0;
        // Attempted arrivals exceed the paper's *observed* 2.9/account:
        // hijacks lock accounts and censor later arrivals.
        assert!((5.0..8.0).contains(&mean), "pastebin mean {mean}");
    }

    #[test]
    fn forum_volume_matches_calibration() {
        // 125 accesses over 30 forum accounts ≈ 4.2/account.
        let mut rng = Rng::seed_from(2);
        let forums = Forum::all();
        let total: usize = (0..200)
            .map(|i| {
                let f = &forums[i % forums.len()];
                forum_arrivals(f, SimTime::ZERO, horizon(), &mut rng).len()
            })
            .sum();
        let mean = total as f64 / 200.0;
        assert!((5.0..8.5).contains(&mean), "forum mean {mean}");
    }

    #[test]
    fn paste_front_loaded_forums_slower() {
        // Figure 3: by day 25, paste ≈ 80%, forums ≈ 60%.
        let mut rng = Rng::seed_from(3);
        let frac_by_25 = |arrivals: &[SimTime]| {
            if arrivals.is_empty() {
                return f64::NAN;
            }
            arrivals
                .iter()
                .filter(|&&t| t <= SimTime::ZERO + SimDuration::days(25))
                .count() as f64
                / arrivals.len() as f64
        };
        let mut paste_all = Vec::new();
        let mut forum_all = Vec::new();
        let site = PasteSite::pastebin();
        let forum = Forum::hackforums();
        for _ in 0..300 {
            paste_all.extend(paste_arrivals(&site, SimTime::ZERO, horizon(), &mut rng));
            forum_all.extend(forum_arrivals(&forum, SimTime::ZERO, horizon(), &mut rng));
        }
        let p = frac_by_25(&paste_all);
        let f = frac_by_25(&forum_all);
        assert!(p > f, "paste {p} vs forum {f}");
        assert!((0.65..0.92).contains(&p), "paste frac {p}");
        assert!((0.42..0.75).contains(&f), "forum frac {f}");
    }

    #[test]
    fn russian_paste_arrivals_start_late() {
        let mut rng = Rng::seed_from(4);
        let site = PasteSite::russian_forus();
        for _ in 0..50 {
            for t in paste_arrivals(&site, SimTime::ZERO, horizon(), &mut rng) {
                assert!(t >= SimTime::ZERO + SimDuration::days(65));
            }
        }
    }

    #[test]
    fn malware_buyers_follow_sales() {
        let mut rng = Rng::seed_from(5);
        let market = Market::default();
        let loot: Vec<(u32, SimTime)> = (0..20).map(|i| (i, SimTime::from_secs(3_600))).collect();
        let (sales, _) = market.plan_sales(&loot, &mut rng);
        let mut botmaster = 0;
        let mut buyers = 0;
        for account in 0..20 {
            for a in malware_arrivals(
                account,
                SimTime::from_secs(3_600),
                &sales,
                horizon(),
                &mut rng,
            ) {
                if a.buyer {
                    buyers += 1;
                    // Buyer arrivals happen after the wave sale date.
                    let wave = a.wave.unwrap() as usize;
                    assert!(a.at >= sales[wave].at);
                } else {
                    botmaster += 1;
                    assert!(a.at <= SimTime::ZERO + SimDuration::days(9));
                }
            }
        }
        assert!(botmaster >= 20, "botmaster checks {botmaster}");
        assert!(buyers >= 15, "buyer accesses {buyers}");
        // Total on the paper's order (57 accesses over 20 accounts).
        let total = botmaster + buyers;
        assert!((35..=90).contains(&total), "total {total}");
    }

    #[test]
    fn malware_arrivals_sorted_and_within_horizon() {
        let mut rng = Rng::seed_from(6);
        let market = Market::default();
        let loot: Vec<(u32, SimTime)> = (0..5).map(|i| (i, SimTime::from_secs(0))).collect();
        let (sales, _) = market.plan_sales(&loot, &mut rng);
        for account in 0..5 {
            let arr = malware_arrivals(account, SimTime::ZERO, &sales, horizon(), &mut rng);
            assert!(arr.windows(2).all(|w| w[0].at <= w[1].at));
            assert!(arr.iter().all(|a| a.at < horizon()));
        }
    }
}
