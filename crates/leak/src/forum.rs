//! Underground forums: teaser threads and logged inquiries.
//!
//! Following Stone-Gross et al.'s observations, the researchers posted a
//! *sample* of "stolen" credentials on each forum, claimed to have more
//! for sale, logged the inquiries that arrived, and never followed up
//! (§3.2). Forum audiences are slower than paste sites but more motivated
//! — Figure 1 shows forums with the highest gold-digger fraction.

use pwnd_sim::{Rng, SimDuration, SimTime};
use pwnd_telemetry::TelemetrySink;

/// One of the open forums used in the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct Forum {
    /// Forum hostname.
    pub name: &'static str,
    /// Peak thread-visitor rate (credential-trying visitors/day/thread).
    pub peak_rate_per_day: f64,
    /// Decay constant, days. Forum threads keep getting bumped, so decay
    /// is slower than on paste sites.
    pub decay_days: f64,
    /// Long-tail floor, visits/day.
    pub floor_rate_per_day: f64,
    /// Expected number of "how much for the full dataset?" inquiries per
    /// teaser thread.
    pub mean_inquiries: f64,
}

impl Forum {
    /// offensivecommunity.net
    pub fn offensive_community() -> Forum {
        Forum {
            name: "offensivecommunity.net",
            peak_rate_per_day: 0.19,
            decay_days: 21.0,
            floor_rate_per_day: 0.008,
            mean_inquiries: 2.0,
        }
    }

    /// bestblackhatforums.eu
    pub fn best_blackhat() -> Forum {
        Forum {
            name: "bestblackhatforums.eu",
            peak_rate_per_day: 0.17,
            decay_days: 21.0,
            floor_rate_per_day: 0.008,
            mean_inquiries: 1.5,
        }
    }

    /// hackforums.net
    pub fn hackforums() -> Forum {
        Forum {
            name: "hackforums.net",
            peak_rate_per_day: 0.23,
            decay_days: 21.0,
            floor_rate_per_day: 0.008,
            mean_inquiries: 3.0,
        }
    }

    /// blackhatworld.com
    pub fn blackhatworld() -> Forum {
        Forum {
            name: "blackhatworld.com",
            peak_rate_per_day: 0.17,
            decay_days: 21.0,
            floor_rate_per_day: 0.008,
            mean_inquiries: 1.5,
        }
    }

    /// The four forums in rotation.
    pub fn all() -> Vec<Forum> {
        vec![
            Forum::offensive_community(),
            Forum::best_blackhat(),
            Forum::hackforums(),
            Forum::blackhatworld(),
        ]
    }

    /// Instantaneous credential-trying visit rate (visits/second) for a
    /// thread posted at `posted_at`.
    pub fn visit_rate(&self, posted_at: SimTime, t: SimTime) -> f64 {
        if t < posted_at {
            return 0.0;
        }
        let age_days = t.since(posted_at).as_days_f64();
        let per_day =
            self.peak_rate_per_day * (-age_days / self.decay_days).exp() + self.floor_rate_per_day;
        per_day / 86_400.0
    }

    /// Upper bound of the visit rate.
    pub fn rate_max(&self) -> f64 {
        (self.peak_rate_per_day + self.floor_rate_per_day) / 86_400.0
    }
}

/// An inquiry received on a teaser thread. The researchers log these and
/// never reply.
#[derive(Clone, Debug, PartialEq)]
pub struct Inquiry {
    /// When the inquiry arrived.
    pub at: SimTime,
    /// The asker's forum handle.
    pub from_handle: String,
    /// The message body.
    pub message: String,
}

const INQUIRY_TEMPLATES: &[&str] = &[
    "how much for the full dump?",
    "are these fresh? need bulk",
    "pm me price for the rest",
    "sample works, want 500 more",
    "do you take btc? interested in the whole set",
];

const HANDLE_PREFIXES: &[&str] = &["dark", "xx", "cyber", "ghost", "zero", "haxx", "shadow"];
const HANDLE_SUFFIXES: &[&str] = &["wolf", "byte", "king", "dealer", "root", "cash", "crow"];

/// Generate the inquiries a teaser thread attracts over its lifetime,
/// exponentially spread over the first 30 days.
pub fn generate_inquiries(forum: &Forum, posted_at: SimTime, rng: &mut Rng) -> Vec<Inquiry> {
    // Poisson count with the forum's mean.
    let mut count = 0usize;
    let l = (-forum.mean_inquiries).exp();
    let mut p = 1.0;
    loop {
        p *= rng.f64();
        if p <= l {
            break;
        }
        count += 1;
    }
    let mut out: Vec<Inquiry> = (0..count)
        .map(|_| {
            let delay_days = -30.0 * (1.0 - rng.f64()).ln() / 3.0; // exp, mean 10d
            Inquiry {
                at: posted_at + SimDuration::from_secs_f64(delay_days * 86_400.0),
                from_handle: format!(
                    "{}{}{}",
                    rng.choose(HANDLE_PREFIXES),
                    rng.choose(HANDLE_SUFFIXES),
                    rng.below(1000)
                ),
                message: (*rng.choose(INQUIRY_TEMPLATES)).to_string(),
            }
        })
        .collect();
    out.sort_by_key(|i| i.at);
    out
}

/// The seller account the researchers register on a forum. The paper
/// chose forums that "were open for anybody to register" precisely so
/// this step needs no vetting (§3.2).
#[derive(Clone, Debug, PartialEq)]
pub struct SellerAccount {
    /// Which forum the account lives on.
    pub forum: &'static str,
    /// The seller's handle.
    pub handle: String,
    /// Registration time.
    pub registered_at: SimTime,
}

impl SellerAccount {
    /// Register a fresh seller on `forum` at `at`.
    pub fn register(forum: &Forum, at: SimTime, rng: &mut Rng) -> SellerAccount {
        SellerAccount {
            forum: forum.name,
            handle: format!(
                "{}{}{}",
                rng.choose(HANDLE_PREFIXES),
                rng.choose(HANDLE_SUFFIXES),
                rng.below(10_000)
            ),
            registered_at: at,
        }
    }
}

/// A teaser thread: a free sample of "stolen" credentials plus the
/// promise of a larger dataset for a fee — the Stone-Gross et al. modus
/// operandi the researchers mimicked.
#[derive(Clone, Debug, PartialEq)]
pub struct TeaserThread {
    /// Which forum it was posted on.
    pub forum: &'static str,
    /// The posting seller's handle.
    pub seller: String,
    /// Posting time.
    pub posted_at: SimTime,
    /// Thread title.
    pub title: String,
    /// The credential lines actually disclosed (the free sample).
    pub sample_lines: Vec<String>,
    /// The advertised size of the full dataset ("more where this came
    /// from"). Never delivered — the researchers logged inquiries and
    /// went silent.
    pub promised_total: usize,
    /// Advertised price for the full dataset, USD.
    pub price_usd: u32,
}

impl TeaserThread {
    /// Post a teaser carrying `sample_lines` on the seller's forum.
    pub fn post(
        seller: &SellerAccount,
        sample_lines: Vec<String>,
        at: SimTime,
        rng: &mut Rng,
    ) -> TeaserThread {
        let titles = [
            "FRESH webmail accounts - free sample inside",
            "[SELLING] corporate mail logins, samples first post",
            "mail access combo - testing samples, bulk available",
        ];
        TeaserThread {
            forum: seller.forum,
            seller: seller.handle.clone(),
            posted_at: at,
            title: (*rng.choose(&titles)).to_string(),
            promised_total: (sample_lines.len() + 1) * rng.range_u64(20, 60) as usize,
            price_usd: rng.range_u64(50, 400) as u32,
            sample_lines,
        }
    }
}

/// The seller's private-message inbox: inquiries arrive, none are ever
/// answered ("we logged the messages ... but we did not follow up").
#[derive(Clone, Debug, Default)]
pub struct PmInbox {
    messages: Vec<Inquiry>,
    telemetry: TelemetrySink,
}

impl PmInbox {
    /// An empty inbox.
    pub fn new() -> PmInbox {
        PmInbox::default()
    }

    /// Attach a telemetry sink (`leak.forum_inquiries` and `forum_inquiry`
    /// trace records).
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    /// Receive one inquiry.
    pub fn receive(&mut self, inquiry: Inquiry) {
        self.telemetry.count("leak.forum_inquiries");
        self.telemetry
            .trace_with(inquiry.at.as_secs(), "forum_inquiry", None, || {
                format!("from={}", inquiry.from_handle)
            });
        self.messages.push(inquiry);
    }

    /// All messages, arrival order.
    pub fn messages(&self) -> &[Inquiry] {
        &self.messages
    }

    /// Count of messages — all of them unanswered, by protocol.
    pub fn unanswered(&self) -> usize {
        self.messages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_forums_match_paper() {
        let names: Vec<&str> = Forum::all().iter().map(|f| f.name).collect();
        assert_eq!(
            names,
            vec![
                "offensivecommunity.net",
                "bestblackhatforums.eu",
                "hackforums.net",
                "blackhatworld.com"
            ]
        );
    }

    #[test]
    fn forum_rate_decays_slower_than_pastebin() {
        let forum = Forum::hackforums();
        let paste = crate::paste::PasteSite::pastebin();
        let posted = SimTime::ZERO;
        let ratio_at = |d: u64| {
            let f = forum.visit_rate(posted, posted + SimDuration::days(d));
            let p = paste.visit_rate(posted, posted + SimDuration::days(d));
            f / p
        };
        // Forums start slower but hold their audience longer.
        assert!(ratio_at(0) < 1.0);
        assert!(ratio_at(40) > ratio_at(0));
    }

    #[test]
    fn no_visits_before_posting() {
        let forum = Forum::blackhatworld();
        let posted = SimTime::from_secs(1_000_000);
        assert_eq!(forum.visit_rate(posted, SimTime::ZERO), 0.0);
    }

    #[test]
    fn inquiries_arrive_after_posting_sorted() {
        let mut rng = Rng::seed_from(1);
        let forum = Forum::hackforums();
        let posted = SimTime::ZERO + SimDuration::days(3);
        let mut any = false;
        for _ in 0..20 {
            let inqs = generate_inquiries(&forum, posted, &mut rng);
            any |= !inqs.is_empty();
            assert!(inqs.windows(2).all(|w| w[0].at <= w[1].at));
            for i in &inqs {
                assert!(i.at >= posted);
                assert!(!i.from_handle.is_empty());
                assert!(!i.message.is_empty());
            }
        }
        assert!(any, "20 threads on hackforums should attract inquiries");
    }

    #[test]
    fn seller_registration_and_teaser_post() {
        let mut rng = Rng::seed_from(7);
        let forum = Forum::offensive_community();
        let seller = SellerAccount::register(&forum, SimTime::from_secs(100), &mut rng);
        assert_eq!(seller.forum, "offensivecommunity.net");
        assert!(!seller.handle.is_empty());
        let lines = vec![
            "a@honeymail.example:pw1".to_string(),
            "b@honeymail.example:pw2".to_string(),
        ];
        let thread = TeaserThread::post(&seller, lines.clone(), SimTime::from_secs(200), &mut rng);
        assert_eq!(thread.sample_lines, lines);
        assert!(
            thread.promised_total > lines.len(),
            "teaser must promise more"
        );
        assert!(thread.price_usd >= 50);
        assert_eq!(thread.seller, seller.handle);
    }

    #[test]
    fn pm_inbox_collects_and_never_answers() {
        let mut rng = Rng::seed_from(8);
        let forum = Forum::hackforums();
        let mut inbox = PmInbox::new();
        for inq in generate_inquiries(&forum, SimTime::ZERO, &mut rng) {
            inbox.receive(inq);
        }
        assert_eq!(inbox.unanswered(), inbox.messages().len());
    }

    #[test]
    fn inquiry_volume_tracks_forum_mean() {
        let mut rng = Rng::seed_from(2);
        let busy = Forum::hackforums();
        let quiet = Forum::best_blackhat();
        let total = |f: &Forum, rng: &mut Rng| -> usize {
            (0..200)
                .map(|_| generate_inquiries(f, SimTime::ZERO, rng).len())
                .sum()
        };
        assert!(total(&busy, &mut rng) > total(&quiet, &mut rng));
    }
}
