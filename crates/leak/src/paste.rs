//! Paste sites and their audience-reach dynamics.
//!
//! Figure 3: within 25 days of the leak, paste-site accounts had received
//! 80% of all the unique accesses they would ever get — the audience is
//! large and fast, then the paste sinks off the recent-pastes page. The
//! ten credentials leaked to Russian paste sites sat untouched for over
//! two months (Figure 4) — their audience is tiny and slow. We model each
//! site's visit intensity as an exponentially decaying rate (plus a small
//! long-tail floor from search-engine stragglers), delayed for the
//! Russian sites.

use pwnd_sim::{SimDuration, SimTime};

/// A paste site's audience profile.
#[derive(Clone, Debug, PartialEq)]
pub struct PasteSite {
    /// Site hostname.
    pub name: &'static str,
    /// Peak attacker-visit rate right after posting, in visits/day
    /// (per paste).
    pub peak_rate_per_day: f64,
    /// Exponential decay constant of that rate, in days.
    pub decay_days: f64,
    /// Long-tail floor rate, visits/day (crawlers, search hits).
    pub floor_rate_per_day: f64,
    /// Delay before *anyone* of consequence sees the paste (the Russian
    /// sites' silence).
    pub audience_delay: SimDuration,
}

impl PasteSite {
    /// pastebin.com — the flagship, big fast audience.
    pub fn pastebin() -> PasteSite {
        PasteSite {
            name: "pastebin.com",
            peak_rate_per_day: 0.58,
            decay_days: 10.0,
            floor_rate_per_day: 0.004,
            audience_delay: SimDuration::ZERO,
        }
    }

    /// pastie.org — smaller but similar shape.
    pub fn pastie() -> PasteSite {
        PasteSite {
            name: "pastie.org",
            peak_rate_per_day: 0.52,
            decay_days: 12.0,
            floor_rate_per_day: 0.004,
            audience_delay: SimDuration::ZERO,
        }
    }

    /// p.for-us.nl — a Russian paste site with a minuscule audience.
    pub fn russian_forus() -> PasteSite {
        PasteSite {
            name: "p.for-us.nl",
            peak_rate_per_day: 0.03,
            decay_days: 50.0,
            floor_rate_per_day: 0.001,
            audience_delay: SimDuration::days(65),
        }
    }

    /// paste.org.ru — same population.
    pub fn russian_orgru() -> PasteSite {
        PasteSite {
            name: "paste.org.ru",
            peak_rate_per_day: 0.03,
            decay_days: 50.0,
            floor_rate_per_day: 0.001,
            audience_delay: SimDuration::days(70),
        }
    }

    /// The popular (non-Russian) sites in rotation.
    pub fn popular() -> Vec<PasteSite> {
        vec![PasteSite::pastebin(), PasteSite::pastie()]
    }

    /// The Russian sites in rotation.
    pub fn russian() -> Vec<PasteSite> {
        vec![PasteSite::russian_forus(), PasteSite::russian_orgru()]
    }

    /// Instantaneous attacker-visit rate (visits/second) at time `t` for a
    /// paste posted at `posted_at`.
    pub fn visit_rate(&self, posted_at: SimTime, t: SimTime) -> f64 {
        if t < posted_at + self.audience_delay {
            return 0.0;
        }
        let age_days = t.since(posted_at + self.audience_delay).as_days_f64();
        let per_day =
            self.peak_rate_per_day * (-age_days / self.decay_days).exp() + self.floor_rate_per_day;
        per_day / 86_400.0
    }

    /// Upper bound of [`PasteSite::visit_rate`] over all time (for
    /// thinning samplers).
    pub fn rate_max(&self) -> f64 {
        (self.peak_rate_per_day + self.floor_rate_per_day) / 86_400.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_decays_after_posting() {
        let site = PasteSite::pastebin();
        let posted = SimTime::ZERO;
        let r0 = site.visit_rate(posted, posted);
        let r30 = site.visit_rate(posted, posted + SimDuration::days(30));
        let r200 = site.visit_rate(posted, posted + SimDuration::days(200));
        assert!(r0 > r30);
        assert!(r30 > r200);
        // Long tail never hits zero.
        assert!(r200 > 0.0);
    }

    #[test]
    fn russian_sites_silent_for_two_months() {
        let site = PasteSite::russian_forus();
        let posted = SimTime::ZERO;
        assert_eq!(site.visit_rate(posted, posted + SimDuration::days(30)), 0.0);
        assert_eq!(site.visit_rate(posted, posted + SimDuration::days(64)), 0.0);
        assert!(site.visit_rate(posted, posted + SimDuration::days(66)) > 0.0);
    }

    #[test]
    fn rate_max_bounds_rate() {
        for site in PasteSite::popular().into_iter().chain(PasteSite::russian()) {
            let posted = SimTime::ZERO;
            let m = site.rate_max();
            for d in 0..300 {
                let r = site.visit_rate(posted, posted + SimDuration::days(d));
                assert!(r <= m * (1.0 + 1e-12), "{} day {d}", site.name);
            }
        }
    }

    #[test]
    fn popular_sites_much_faster_than_russian() {
        let fast = PasteSite::pastebin();
        let slow = PasteSite::russian_forus();
        // Integrated visits over the first 25 days: pastebin should
        // dominate by an order of magnitude (Figure 3's 80% vs the
        // Russian subset's silence).
        let integrate = |s: &PasteSite| -> f64 {
            (0..25 * 24)
                .map(|h| s.visit_rate(SimTime::ZERO, SimTime::from_secs(h * 3600)) * 3600.0)
                .sum()
        };
        assert!(integrate(&fast) > 10.0 * integrate(&slow).max(1e-12));
    }
}
