#![warn(missing_docs)]

//! # pwnd-leak — credential leak outlets
//!
//! The experiment's independent variable is *where* credentials leak
//! (§3.2, Table 1): paste sites (including low-traffic Russian ones),
//! open underground forums (teaser posts promising a bigger dataset for a
//! fee), and information-stealing malware (credentials exfiltrated to a
//! C&C server, held privately by one botmaster, and possibly resold on
//! the underground market months later — the Figure 4 bursts).
//!
//! This crate models the **custody and visibility dynamics** of each
//! outlet: who can see a credential at what time. The behaviour of the
//! people who then *use* the credentials lives in `pwnd-attacker`.
//!
//! * [`plan`] — leak groups and the Table 1 experiment plan;
//! * [`paste`] — paste sites with audience-reach profiles;
//! * [`forum`] — forum threads, teaser mechanics, logged inquiries;
//! * [`malware`] — sandbox/VM infection cycles, C&C liveness, exfiltration;
//! * [`market`] — underground resale of malware-stolen accounts.

pub mod forum;
pub mod malware;
pub mod market;
pub mod paste;
pub mod plan;

pub use plan::{LeakContent, LeakPlan, LeakRecord, OutletKind};
