//! Leak groups and the Table 1 plan.

use pwnd_corpus::persona::DecoyRegion;

/// The three outlet families of the study.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OutletKind {
    /// Public paste sites (pastebin.com, pastie.org, and the Russian
    /// p.for-us.nl / paste.org.ru).
    Paste,
    /// Open underground forums (offensivecommunity.net and friends).
    Forum,
    /// Information-stealing malware (Zeus / Corebot families).
    Malware,
}

impl OutletKind {
    /// Label used in datasets and reports.
    pub fn label(self) -> &'static str {
        match self {
            OutletKind::Paste => "paste",
            OutletKind::Forum => "forum",
            OutletKind::Malware => "malware",
        }
    }

    /// All outlet kinds.
    pub const ALL: [OutletKind; 3] = [OutletKind::Paste, OutletKind::Forum, OutletKind::Malware];
}

/// One group of honey accounts leaked the same way (a Table 1 row).
#[derive(Clone, Debug, PartialEq)]
pub struct LeakGroup {
    /// Outlet family.
    pub kind: OutletKind,
    /// Number of accounts in the group.
    pub count: usize,
    /// Whether the leak advertises the persona's decoy location + DOB.
    pub with_location: bool,
    /// For paste groups only: how many of the accounts go to the Russian
    /// paste sites instead of the popular ones.
    pub russian_paste: usize,
}

/// The full leak plan.
#[derive(Clone, Debug, PartialEq)]
pub struct LeakPlan {
    /// Groups, in Table 1 order.
    pub groups: Vec<LeakGroup>,
}

impl LeakPlan {
    /// The paper's Table 1 plan:
    ///
    /// | Group | Accounts | Outlet |
    /// |-------|----------|--------|
    /// | 1 | 30 | paste sites, no location (10 of them on Russian sites) |
    /// | 2 | 20 | paste sites, with location |
    /// | 3 | 10 | forums, no location |
    /// | 4 | 20 | forums, with location |
    /// | 5 | 20 | malware, no location |
    pub fn paper() -> LeakPlan {
        LeakPlan {
            groups: vec![
                LeakGroup {
                    kind: OutletKind::Paste,
                    count: 30,
                    with_location: false,
                    russian_paste: 10,
                },
                LeakGroup {
                    kind: OutletKind::Paste,
                    count: 20,
                    with_location: true,
                    russian_paste: 0,
                },
                LeakGroup {
                    kind: OutletKind::Forum,
                    count: 10,
                    with_location: false,
                    russian_paste: 0,
                },
                LeakGroup {
                    kind: OutletKind::Forum,
                    count: 20,
                    with_location: true,
                    russian_paste: 0,
                },
                LeakGroup {
                    kind: OutletKind::Malware,
                    count: 20,
                    with_location: false,
                    russian_paste: 0,
                },
            ],
        }
    }

    /// The Table 1 plan scaled to `accounts` honey accounts, preserving
    /// the paper's outlet proportions (50% paste / 30% forum / 20%
    /// malware, location and Russian-paste splits included).
    ///
    /// Group sizes are apportioned by the largest-remainder method so
    /// they always sum to exactly `accounts`; groups that round to zero
    /// are dropped. The fleet engine uses this to build partial shards
    /// (`accounts % shard_size` tail shards).
    pub fn scaled(accounts: usize) -> LeakPlan {
        let base = LeakPlan::paper();
        let total = base.total_accounts();
        // Integer share + remainder per Table 1 group.
        let mut shares: Vec<(usize, usize, usize)> = base
            .groups
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let exact = g.count * accounts;
                (i, exact / total, exact % total)
            })
            .collect();
        let assigned: usize = shares.iter().map(|&(_, q, _)| q).sum();
        // Hand the leftover seats to the largest remainders (ties go to
        // the earlier Table 1 row — deterministic).
        let mut by_rem = shares.clone();
        by_rem.sort_by_key(|&(i, _, r)| (std::cmp::Reverse(r), i));
        for &(i, _, _) in by_rem.iter().take(accounts - assigned) {
            shares[i].1 += 1;
        }
        let groups = base
            .groups
            .into_iter()
            .zip(shares)
            .filter_map(|(g, (_, count, _))| {
                (count > 0).then(|| LeakGroup {
                    // Scale the Russian-paste sub-split within the group.
                    russian_paste: if g.russian_paste > 0 {
                        (g.russian_paste * count + g.count / 2) / g.count
                    } else {
                        0
                    },
                    count,
                    ..g
                })
            })
            .collect();
        LeakPlan { groups }
    }

    /// Total accounts across all groups.
    pub fn total_accounts(&self) -> usize {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// Accounts leaked through a given outlet kind.
    pub fn count_for(&self, kind: OutletKind) -> usize {
        self.groups
            .iter()
            .filter(|g| g.kind == kind)
            .map(|g| g.count)
            .sum()
    }
}

/// What a leak discloses about one account.
#[derive(Clone, Debug, PartialEq)]
pub struct LeakContent {
    /// Webmail address.
    pub address: String,
    /// Password at leak time.
    pub password: String,
    /// Advertised persona location (city name) and region, when disclosed.
    pub advertised: Option<(DecoyRegion, String)>,
    /// Advertised date of birth (formatted), when disclosed.
    pub dob: Option<String>,
}

impl LeakContent {
    /// Bare username/password pair.
    pub fn bare(address: &str, password: &str) -> LeakContent {
        LeakContent {
            address: address.to_string(),
            password: password.to_string(),
            advertised: None,
            dob: None,
        }
    }

    /// Render as the text actually pasted/posted (one credential line).
    pub fn render(&self) -> String {
        match (&self.advertised, &self.dob) {
            (Some((region, city)), Some(dob)) => format!(
                "{}:{} | location: {}, {} | dob: {}",
                self.address,
                self.password,
                city,
                match region {
                    DecoyRegion::Uk => "UK",
                    DecoyRegion::Us => "US",
                },
                dob
            ),
            _ => format!("{}:{}", self.address, self.password),
        }
    }
}

/// A record of one account's leak: where, when, and what was disclosed.
#[derive(Clone, Debug, PartialEq)]
pub struct LeakRecord {
    /// Account index in the experiment.
    pub account: u32,
    /// Outlet family.
    pub kind: OutletKind,
    /// Specific site/forum/sample label.
    pub site: String,
    /// When the credentials were published/exfiltrated.
    pub at: pwnd_sim::SimTime,
    /// Disclosed content.
    pub content: LeakContent,
    /// Whether this paste went to the Russian sites (affects audience).
    pub russian: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plan_matches_table1() {
        let p = LeakPlan::paper();
        assert_eq!(p.total_accounts(), 100);
        assert_eq!(p.count_for(OutletKind::Paste), 50);
        assert_eq!(p.count_for(OutletKind::Forum), 30);
        assert_eq!(p.count_for(OutletKind::Malware), 20);
        assert_eq!(p.groups.len(), 5);
        assert_eq!(p.groups[0].russian_paste, 10);
        assert!(!p.groups[0].with_location);
        assert!(p.groups[1].with_location);
    }

    #[test]
    fn scaled_plan_is_exact_and_proportional() {
        for n in [1, 7, 10, 33, 50, 100, 101, 250, 20_000] {
            let p = LeakPlan::scaled(n);
            assert_eq!(p.total_accounts(), n, "total for n={n}");
            for g in &p.groups {
                assert!(g.russian_paste <= g.count);
            }
        }
        // Full scale reproduces Table 1 exactly.
        assert_eq!(LeakPlan::scaled(100), LeakPlan::paper());
        // Double scale doubles every row.
        let p = LeakPlan::scaled(200);
        let counts: Vec<usize> = p.groups.iter().map(|g| g.count).collect();
        assert_eq!(counts, vec![60, 40, 20, 40, 40]);
        assert_eq!(p.groups[0].russian_paste, 20);
    }

    #[test]
    fn bare_content_renders_as_colon_pair() {
        let c = LeakContent::bare("a@honeymail.example", "pw123");
        assert_eq!(c.render(), "a@honeymail.example:pw123");
    }

    #[test]
    fn located_content_renders_location_and_dob() {
        let c = LeakContent {
            address: "a@honeymail.example".into(),
            password: "pw".into(),
            advertised: Some((DecoyRegion::Uk, "London".into())),
            dob: Some("1975-03-14".into()),
        };
        let r = c.render();
        assert!(r.contains("London, UK"));
        assert!(r.contains("1975-03-14"));
    }

    #[test]
    fn outlet_labels() {
        assert_eq!(OutletKind::Paste.label(), "paste");
        assert_eq!(OutletKind::Forum.label(), "forum");
        assert_eq!(OutletKind::Malware.label(), "malware");
    }
}
