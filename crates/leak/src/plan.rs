//! Leak groups and the Table 1 plan.

use pwnd_corpus::persona::DecoyRegion;

/// The three outlet families of the study.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OutletKind {
    /// Public paste sites (pastebin.com, pastie.org, and the Russian
    /// p.for-us.nl / paste.org.ru).
    Paste,
    /// Open underground forums (offensivecommunity.net and friends).
    Forum,
    /// Information-stealing malware (Zeus / Corebot families).
    Malware,
}

impl OutletKind {
    /// Label used in datasets and reports.
    pub fn label(self) -> &'static str {
        match self {
            OutletKind::Paste => "paste",
            OutletKind::Forum => "forum",
            OutletKind::Malware => "malware",
        }
    }

    /// All outlet kinds.
    pub const ALL: [OutletKind; 3] = [OutletKind::Paste, OutletKind::Forum, OutletKind::Malware];
}

/// One group of honey accounts leaked the same way (a Table 1 row).
#[derive(Clone, Debug, PartialEq)]
pub struct LeakGroup {
    /// Outlet family.
    pub kind: OutletKind,
    /// Number of accounts in the group.
    pub count: usize,
    /// Whether the leak advertises the persona's decoy location + DOB.
    pub with_location: bool,
    /// For paste groups only: how many of the accounts go to the Russian
    /// paste sites instead of the popular ones.
    pub russian_paste: usize,
}

/// The full leak plan.
#[derive(Clone, Debug, PartialEq)]
pub struct LeakPlan {
    /// Groups, in Table 1 order.
    pub groups: Vec<LeakGroup>,
}

impl LeakPlan {
    /// The paper's Table 1 plan:
    ///
    /// | Group | Accounts | Outlet |
    /// |-------|----------|--------|
    /// | 1 | 30 | paste sites, no location (10 of them on Russian sites) |
    /// | 2 | 20 | paste sites, with location |
    /// | 3 | 10 | forums, no location |
    /// | 4 | 20 | forums, with location |
    /// | 5 | 20 | malware, no location |
    pub fn paper() -> LeakPlan {
        LeakPlan {
            groups: vec![
                LeakGroup {
                    kind: OutletKind::Paste,
                    count: 30,
                    with_location: false,
                    russian_paste: 10,
                },
                LeakGroup {
                    kind: OutletKind::Paste,
                    count: 20,
                    with_location: true,
                    russian_paste: 0,
                },
                LeakGroup {
                    kind: OutletKind::Forum,
                    count: 10,
                    with_location: false,
                    russian_paste: 0,
                },
                LeakGroup {
                    kind: OutletKind::Forum,
                    count: 20,
                    with_location: true,
                    russian_paste: 0,
                },
                LeakGroup {
                    kind: OutletKind::Malware,
                    count: 20,
                    with_location: false,
                    russian_paste: 0,
                },
            ],
        }
    }

    /// Total accounts across all groups.
    pub fn total_accounts(&self) -> usize {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// Accounts leaked through a given outlet kind.
    pub fn count_for(&self, kind: OutletKind) -> usize {
        self.groups
            .iter()
            .filter(|g| g.kind == kind)
            .map(|g| g.count)
            .sum()
    }
}

/// What a leak discloses about one account.
#[derive(Clone, Debug, PartialEq)]
pub struct LeakContent {
    /// Webmail address.
    pub address: String,
    /// Password at leak time.
    pub password: String,
    /// Advertised persona location (city name) and region, when disclosed.
    pub advertised: Option<(DecoyRegion, String)>,
    /// Advertised date of birth (formatted), when disclosed.
    pub dob: Option<String>,
}

impl LeakContent {
    /// Bare username/password pair.
    pub fn bare(address: &str, password: &str) -> LeakContent {
        LeakContent {
            address: address.to_string(),
            password: password.to_string(),
            advertised: None,
            dob: None,
        }
    }

    /// Render as the text actually pasted/posted (one credential line).
    pub fn render(&self) -> String {
        match (&self.advertised, &self.dob) {
            (Some((region, city)), Some(dob)) => format!(
                "{}:{} | location: {}, {} | dob: {}",
                self.address,
                self.password,
                city,
                match region {
                    DecoyRegion::Uk => "UK",
                    DecoyRegion::Us => "US",
                },
                dob
            ),
            _ => format!("{}:{}", self.address, self.password),
        }
    }
}

/// A record of one account's leak: where, when, and what was disclosed.
#[derive(Clone, Debug, PartialEq)]
pub struct LeakRecord {
    /// Account index in the experiment.
    pub account: u32,
    /// Outlet family.
    pub kind: OutletKind,
    /// Specific site/forum/sample label.
    pub site: String,
    /// When the credentials were published/exfiltrated.
    pub at: pwnd_sim::SimTime,
    /// Disclosed content.
    pub content: LeakContent,
    /// Whether this paste went to the Russian sites (affects audience).
    pub russian: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plan_matches_table1() {
        let p = LeakPlan::paper();
        assert_eq!(p.total_accounts(), 100);
        assert_eq!(p.count_for(OutletKind::Paste), 50);
        assert_eq!(p.count_for(OutletKind::Forum), 30);
        assert_eq!(p.count_for(OutletKind::Malware), 20);
        assert_eq!(p.groups.len(), 5);
        assert_eq!(p.groups[0].russian_paste, 10);
        assert!(!p.groups[0].with_location);
        assert!(p.groups[1].with_location);
    }

    #[test]
    fn bare_content_renders_as_colon_pair() {
        let c = LeakContent::bare("a@honeymail.example", "pw123");
        assert_eq!(c.render(), "a@honeymail.example:pw123");
    }

    #[test]
    fn located_content_renders_location_and_dob() {
        let c = LeakContent {
            address: "a@honeymail.example".into(),
            password: "pw".into(),
            advertised: Some((DecoyRegion::Uk, "London".into())),
            dob: Some("1975-03-14".into()),
        };
        let r = c.render();
        assert!(r.contains("London, UK"));
        assert!(r.contains("1975-03-14"));
    }

    #[test]
    fn outlet_labels() {
        assert_eq!(OutletKind::Paste.label(), "paste");
        assert_eq!(OutletKind::Forum.label(), "forum");
        assert_eq!(OutletKind::Malware.label(), "malware");
    }
}
