//! The underground resale market for malware-stolen accounts.
//!
//! Accounts stolen by malware are private to one botmaster "until they
//! decide to sell them or to give them to someone else". Figure 4 shows
//! two sharp bursts of fresh accesses to malware-leaked accounts, ~30 and
//! ~100 days after the leak, and those later accesses switch from
//! "curious" to "gold digger" — the signature of a sale. We model the
//! botmaster's custody timeline: initial credential checks shortly after
//! exfiltration, then batch sales at market epochs that hand the accounts
//! to more motivated buyers.

use crate::malware::CncId;
use pwnd_sim::{Rng, SimDuration, SimTime};

/// Who currently holds (and acts on) a stolen account.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Custodian {
    /// The botmaster who ran the C&C.
    Botmaster(CncId),
    /// A buyer from the underground market (numbered per sale wave).
    Buyer {
        /// Which sale wave produced this buyer.
        wave: u32,
    },
}

/// One batch sale event.
#[derive(Clone, Debug, PartialEq)]
pub struct Sale {
    /// When the batch changed hands.
    pub at: SimTime,
    /// Sale wave index (0-based).
    pub wave: u32,
    /// Accounts included.
    pub accounts: Vec<u32>,
}

/// The custody timeline of malware-stolen accounts.
#[derive(Clone, Debug)]
pub struct Market {
    /// Days after exfiltration at which the botmaster sells batches
    /// (Figure 4's inflection points).
    pub sale_wave_days: Vec<f64>,
    /// Fraction of the remaining loot sold in each wave.
    pub wave_fraction: f64,
}

impl Default for Market {
    fn default() -> Self {
        Market {
            sale_wave_days: vec![30.0, 100.0],
            wave_fraction: 0.6,
        }
    }
}

impl Market {
    /// Plan the sales for one C&C's loot: which accounts are sold in which
    /// wave. Accounts never sold stay with the botmaster.
    pub fn plan_sales(&self, loot: &[(u32, SimTime)], rng: &mut Rng) -> (Vec<Sale>, Vec<u32>) {
        let mut remaining: Vec<(u32, SimTime)> = loot.to_vec();
        let mut sales = Vec::new();
        for (wave, &days) in self.sale_wave_days.iter().enumerate() {
            if remaining.is_empty() {
                break;
            }
            let take = ((remaining.len() as f64) * self.wave_fraction).round() as usize;
            let take = take.clamp(usize::from(!remaining.is_empty()), remaining.len());
            let picked = rng.sample_indices(remaining.len(), take);
            let mut picked_sorted = picked;
            picked_sorted.sort_unstable_by(|a, b| b.cmp(a)); // remove from back
            let mut accounts = Vec::with_capacity(take);
            // The sale timestamp keys off the earliest theft in the batch,
            // plus small per-wave jitter.
            let base = remaining.iter().map(|&(_, t)| t).min().expect("non-empty");
            let jitter = SimDuration::from_secs_f64(rng.range_f64(0.0, 3.0) * 86_400.0);
            let at = base + SimDuration::from_secs_f64(days * 86_400.0) + jitter;
            for idx in picked_sorted {
                accounts.push(remaining.swap_remove(idx).0);
            }
            accounts.sort_unstable();
            sales.push(Sale {
                at,
                wave: wave as u32,
                accounts,
            });
        }
        let unsold = remaining.into_iter().map(|(a, _)| a).collect();
        (sales, unsold)
    }

    /// Custodian of `account` at time `t`, given the planned sales.
    pub fn custodian_at(sales: &[Sale], cnc: CncId, account: u32, t: SimTime) -> Custodian {
        let mut current = Custodian::Botmaster(cnc);
        for sale in sales {
            if sale.at <= t && sale.accounts.contains(&account) {
                current = Custodian::Buyer { wave: sale.wave };
            }
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loot() -> Vec<(u32, SimTime)> {
        (0..20)
            .map(|i| (i, SimTime::from_secs(i as u64 * 3600)))
            .collect()
    }

    #[test]
    fn two_waves_cover_most_of_the_loot() {
        let market = Market::default();
        let mut rng = Rng::seed_from(1);
        let (sales, unsold) = market.plan_sales(&loot(), &mut rng);
        assert_eq!(sales.len(), 2);
        let sold: usize = sales.iter().map(|s| s.accounts.len()).sum();
        assert_eq!(sold + unsold.len(), 20);
        assert!(sold >= 15, "waves should move most accounts ({sold})");
    }

    #[test]
    fn wave_timing_matches_figure4() {
        let market = Market::default();
        let mut rng = Rng::seed_from(2);
        let (sales, _) = market.plan_sales(&loot(), &mut rng);
        let d0 = sales[0].at.as_days_f64();
        let d1 = sales[1].at.as_days_f64();
        assert!((30.0..36.0).contains(&d0), "wave 0 at day {d0}");
        assert!((100.0..106.0).contains(&d1), "wave 1 at day {d1}");
    }

    #[test]
    fn custody_transfers_on_sale() {
        let market = Market::default();
        let mut rng = Rng::seed_from(3);
        let (sales, _) = market.plan_sales(&loot(), &mut rng);
        let cnc = CncId(0);
        let acct = sales[0].accounts[0];
        let before = Market::custodian_at(&sales, cnc, acct, SimTime::ZERO + SimDuration::days(5));
        let after = Market::custodian_at(&sales, cnc, acct, sales[0].at + SimDuration::days(1));
        assert_eq!(before, Custodian::Botmaster(cnc));
        assert_eq!(after, Custodian::Buyer { wave: 0 });
    }

    #[test]
    fn empty_loot_plans_nothing() {
        let market = Market::default();
        let mut rng = Rng::seed_from(4);
        let (sales, unsold) = market.plan_sales(&[], &mut rng);
        assert!(sales.is_empty());
        assert!(unsold.is_empty());
    }

    #[test]
    fn sales_are_disjoint() {
        let market = Market::default();
        let mut rng = Rng::seed_from(5);
        let (sales, unsold) = market.plan_sales(&loot(), &mut rng);
        let mut all: Vec<u32> = sales.iter().flat_map(|s| s.accounts.clone()).collect();
        all.extend(&unsold);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 20, "every account appears exactly once");
    }
}
