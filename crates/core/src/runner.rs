//! The deterministic parallel run engine.
//!
//! The paper's headline numbers come from aggregating many independent
//! observations; our analogue is the multi-seed sweep and the chaos
//! ablation, where every run is — by the determinism contract the lint
//! gate enforces — a pure function of `(seed, config)`. That makes a
//! batch embarrassingly parallel: [`Runner`] executes independent
//! [`ExperimentConfig`]s across scoped worker threads pulling from a
//! shared queue, and collects the [`RunOutput`]s back **in submission
//! order**, so every consumer (sweep table, chaos table, dataset
//! export) sees byte-identical results whatever the thread count.
//!
//! ## The determinism argument
//!
//! 1. Each run reads only its own `ExperimentConfig` and its own
//!    telemetry sink; no state is shared between runs (the lint gate
//!    bans ambient RNG, wall-clock reads, and env/IO in every crate a
//!    run touches).
//! 2. Workers may *execute* runs in any order, but each result lands in
//!    the slot of its submission index; after the scope joins, outputs
//!    are read out by index. Scheduling therefore reorders execution,
//!    never output.
//! 3. Telemetry is merged post hoc by [`TelemetryReport::merge`], whose
//!    rules (sum counters, max gauges, interleave traces by sim time
//!    then submission index) depend only on the per-run reports and the
//!    submission order — not on which worker produced them. Wall-clock
//!    phase timings are the one scheduling-dependent artifact, and those
//!    are excluded from report equality by design.
//!
//! `runner_is_schedule_invariant` below proves the contract rather than
//! asserting it: same batch, 1 job vs many, byte-identical datasets and
//! equal merged telemetry.

use crate::config::ExperimentConfig;
use crate::experiment::Experiment;
use crate::output::RunOutput;
use pwnd_telemetry::{format_duration, TelemetryReport, TelemetrySink};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

/// Executes batches of independent experiment runs across worker
/// threads, preserving submission order in the collected outputs.
#[derive(Clone, Debug)]
pub struct Runner {
    jobs: usize,
    telemetry: bool,
}

/// What a batch produced: the run outputs in submission order, plus the
/// merged telemetry report (empty unless the runner was built
/// [`Runner::with_telemetry`]).
pub struct Batch {
    /// One output per submitted config, in submission order.
    pub outputs: Vec<RunOutput>,
    /// Merged telemetry: per-run metrics and traces combined by
    /// [`TelemetryReport::merge`], plus the runner's own `runner.*`
    /// series and phases.
    pub telemetry: TelemetryReport,
    /// Worker threads the batch ran across.
    pub jobs: usize,
}

/// What [`Runner::run_map`] produced: the mapped per-run values in
/// submission order, plus the merged telemetry report. [`Batch`] is the
/// identity-mapped special case.
pub struct MappedBatch<T> {
    /// One mapped value per submitted config, in submission order.
    pub outputs: Vec<T>,
    /// Merged telemetry (empty unless [`Runner::with_telemetry`]).
    pub telemetry: TelemetryReport,
    /// Worker threads the batch ran across.
    pub jobs: usize,
}

/// Wall-clock summary of one batch, for the `--profile` breakdown.
#[derive(Clone, Debug)]
pub struct BatchProfile {
    /// Worker threads used.
    pub jobs: usize,
    /// Runs executed.
    pub runs: u32,
    /// Sum of per-run wall time — what a sequential executor would pay.
    pub serial: Duration,
    /// Wall time of the whole batch.
    pub wall: Duration,
    /// Total time workers spent waiting on the shared queue.
    pub queue_wait: Duration,
}

impl BatchProfile {
    /// Parallel speedup: serial-equivalent time over batch wall time.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            1.0
        } else {
            self.serial.as_secs_f64() / wall
        }
    }

    /// The `--profile` breakdown lines.
    pub fn render(&self) -> String {
        format!(
            "runner: {} runs across {} jobs\n\
             serial-equivalent {}, wall {}, speedup {:.2}x, queue wait {}\n",
            self.runs,
            self.jobs,
            format_duration(self.serial),
            format_duration(self.wall),
            self.speedup(),
            format_duration(self.queue_wait),
        )
    }
}

impl Batch {
    /// The wall-clock profile of this batch, when telemetry was on.
    pub fn profile(&self) -> Option<BatchProfile> {
        let phase = |name: &str| self.telemetry.phases.iter().find(|p| p.name == name);
        let run = phase("runner.run")?;
        let wall = phase("runner.batch")?.total;
        Some(BatchProfile {
            jobs: self.jobs,
            runs: run.entries,
            serial: run.total,
            wall,
            queue_wait: phase("runner.queue-wait")
                .map(|p| p.total)
                .unwrap_or_default(),
        })
    }
}

impl Runner {
    /// A runner with `jobs` worker threads (0 is clamped to 1). One job
    /// runs everything inline on the calling thread — exactly the
    /// sequential code path a plain loop would take.
    pub fn new(jobs: usize) -> Runner {
        Runner {
            jobs: jobs.max(1),
            telemetry: false,
        }
    }

    /// Worker threads this runner uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Enable telemetry: every run gets its own enabled sink (so
    /// [`RunOutput::telemetry_report`] works per run) and the batch
    /// report merges them all, adding `runner.jobs`, `runner.runs`, and
    /// the `runner.batch` / `runner.run` / `runner.queue-wait` phases.
    pub fn with_telemetry(mut self, enabled: bool) -> Runner {
        self.telemetry = enabled;
        self
    }

    /// Run every config to completion and collect the outputs in
    /// submission order.
    ///
    /// ```no_run
    /// use pwnd_core::{ExperimentConfig, Runner};
    ///
    /// // Four seeds across four workers; outputs come back in
    /// // submission order, byte-identical to a sequential loop.
    /// let configs: Vec<_> = (0..4).map(ExperimentConfig::quick).collect();
    /// let batch = Runner::new(4).run_all(configs);
    /// assert_eq!(batch.outputs.len(), 4);
    /// ```
    pub fn run_all(&self, configs: Vec<ExperimentConfig>) -> Batch {
        let mapped = self.run_map(configs, |output| output);
        Batch {
            outputs: mapped.outputs,
            telemetry: mapped.telemetry,
            jobs: mapped.jobs,
        }
    }

    /// Run every config and transform each [`RunOutput`] *inside the
    /// worker* before it is parked in its submission slot. The fleet
    /// engine uses this to keep only the per-shard dataset and byte
    /// accounting, dropping the corpus text and ground truth while the
    /// batch is still running instead of holding every full output
    /// until the join.
    ///
    /// Ordering contract is identical to [`Runner::run_all`]: `map` is
    /// applied per run, and results land in submission order whatever
    /// the schedule.
    pub fn run_map<T, F>(&self, configs: Vec<ExperimentConfig>, map: F) -> MappedBatch<T>
    where
        T: Send,
        F: Fn(RunOutput) -> T + Sync,
    {
        self.run_map_observed(configs, map, |_, _| {})
    }

    /// [`Runner::run_map`] where `map` also receives the run's
    /// submission index. The fleet store uses this to rewrite each
    /// shard's account ids to their fleet-global range *inside the
    /// worker*, so shard files can be merged by concatenation without
    /// ever reparsing them.
    pub fn run_map_indexed<T, F>(&self, configs: Vec<ExperimentConfig>, map: F) -> MappedBatch<T>
    where
        T: Send,
        F: Fn(usize, RunOutput) -> T + Sync,
    {
        self.run_map_indexed_observed(configs, map, |_, _| {})
    }

    /// [`Runner::run_map`] with a telemetry observer: `observe(index,
    /// report)` is called *inside the worker* with each run's snapshot
    /// as the run completes — in completion order, which the schedule
    /// decides, so observers that need submission order must reorder
    /// (see `OrderedReportWriter` in the fleet engine). This is the
    /// streaming-telemetry hook: each shard's report can leave the
    /// process as one JSONL line while the batch is still running,
    /// instead of accumulating every report until the join.
    ///
    /// With telemetry disabled the observer still fires, with an empty
    /// report.
    pub fn run_map_observed<T, F, O>(
        &self,
        configs: Vec<ExperimentConfig>,
        map: F,
        observe: O,
    ) -> MappedBatch<T>
    where
        T: Send,
        F: Fn(RunOutput) -> T + Sync,
        O: Fn(usize, &TelemetryReport) + Sync,
    {
        self.run_map_indexed_observed(configs, |_, output| map(output), observe)
    }

    /// The full-generality primitive behind every `run_*` method: `map`
    /// receives `(submission index, output)` inside the worker, and
    /// `observe(index, report)` fires per completed run in completion
    /// order. Results still land in submission order whatever the
    /// schedule.
    pub fn run_map_indexed_observed<T, F, O>(
        &self,
        configs: Vec<ExperimentConfig>,
        map: F,
        observe: O,
    ) -> MappedBatch<T>
    where
        T: Send,
        F: Fn(usize, RunOutput) -> T + Sync,
        O: Fn(usize, &TelemetryReport) + Sync,
    {
        let n = configs.len();
        let batch_sink = self.sink();
        batch_sink.gauge_set("runner.jobs", self.jobs as u64);
        batch_sink.count_by("runner.runs", n as u64);
        let batch_span = batch_sink.span("runner.batch");

        let queue: Mutex<VecDeque<(usize, ExperimentConfig)>> =
            Mutex::new(configs.into_iter().enumerate().collect());
        type Slot<T> = Option<(T, TelemetryReport)>;
        let slots: Mutex<Vec<Slot<T>>> = Mutex::new((0..n).map(|_| None).collect());

        let workers = self.jobs.min(n.max(1));
        let worker_reports: Vec<TelemetryReport> = if workers <= 1 {
            // The sequential path: no threads, no locks contended — the
            // calling thread drains the queue exactly like a plain loop.
            vec![self.worker_loop(&queue, &slots, &map, &observe)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| scope.spawn(|| self.worker_loop(&queue, &slots, &map, &observe)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("runner worker panicked"))
                    .collect()
            })
        };

        drop(batch_span);
        let (outputs, run_reports): (Vec<T>, Vec<TelemetryReport>) = slots
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .into_iter()
            .map(|slot| slot.expect("every submitted run produces an output"))
            .unzip();

        let telemetry = if self.telemetry {
            // Merge order is pure submission order: run reports first
            // (by index), then the workers' runner-phase reports (by
            // worker index), then the batch-level report. Only phase
            // wall-clocks differ between schedules, and those are
            // excluded from report equality.
            let mut reports = run_reports;
            reports.extend(worker_reports);
            reports.push(batch_sink.report());
            TelemetryReport::merge(&reports)
        } else {
            TelemetryReport::default()
        };

        MappedBatch {
            outputs,
            telemetry,
            jobs: workers,
        }
    }

    fn sink(&self) -> TelemetrySink {
        if self.telemetry {
            TelemetrySink::enabled()
        } else {
            TelemetrySink::disabled()
        }
    }

    /// One worker: pull the next submitted config, run it, snapshot its
    /// telemetry, map it, park the result in its submission slot; repeat
    /// until the queue drains. Returns the worker's runner-phase report
    /// (queue waits, per-run wall-clock).
    fn worker_loop<T, F, O>(
        &self,
        queue: &Mutex<VecDeque<(usize, ExperimentConfig)>>,
        slots: &Mutex<Vec<Option<(T, TelemetryReport)>>>,
        map: &F,
        observe: &O,
    ) -> TelemetryReport
    where
        T: Send,
        F: Fn(usize, RunOutput) -> T + Sync,
        O: Fn(usize, &TelemetryReport) + Sync,
    {
        let worker_sink = self.sink();
        loop {
            let next = {
                let _wait = worker_sink.span("runner.queue-wait");
                queue
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .pop_front()
            };
            let Some((index, config)) = next else {
                break;
            };
            let run_span = worker_sink.span("runner.run");
            let output = Experiment::new(config).with_telemetry(self.sink()).run();
            drop(run_span);
            // Snapshot before mapping: `map` may drop the output's sink.
            let report = if self.telemetry {
                output.telemetry_report()
            } else {
                TelemetryReport::default()
            };
            observe(index, &report);
            let mapped = map(index, output);
            let mut slots = slots
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            slots[index] = Some((mapped, report));
        }
        worker_sink.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_telemetry::TelemetryReport;

    fn quick_configs(seeds: std::ops::Range<u64>) -> Vec<ExperimentConfig> {
        seeds.map(ExperimentConfig::quick).collect()
    }

    #[test]
    fn outputs_come_back_in_submission_order() {
        // Seeds diverge (proven by `different_seeds_differ`), so
        // matching each parallel output against its own sequential run
        // pins every slot to its submission index.
        let batch = Runner::new(4).run_all(quick_configs(10..14));
        assert_eq!(batch.outputs.len(), 4);
        for (i, out) in batch.outputs.iter().enumerate() {
            let solo = Experiment::new(ExperimentConfig::quick(10 + i as u64)).run();
            assert_eq!(out.dataset_json(), solo.dataset_json(), "slot {i}");
        }
    }

    #[test]
    fn runner_is_schedule_invariant() {
        let seq = Runner::new(1)
            .with_telemetry(true)
            .run_all(quick_configs(20..24));
        let par = Runner::new(4)
            .with_telemetry(true)
            .run_all(quick_configs(20..24));
        for (a, b) in seq.outputs.iter().zip(&par.outputs) {
            assert_eq!(a.dataset_json(), b.dataset_json());
        }
        // Merged telemetry is identical too, except the runner.jobs
        // gauge which *names* the schedule.
        let strip_jobs = |r: &TelemetryReport| {
            let mut r = r.clone();
            r.metrics.gauges.remove("runner.jobs");
            r
        };
        assert_eq!(strip_jobs(&seq.telemetry), strip_jobs(&par.telemetry));
        assert_eq!(seq.telemetry.metrics.gauge("runner.jobs"), 1);
        assert_eq!(par.telemetry.metrics.gauge("runner.jobs"), 4);
    }

    #[test]
    fn merged_telemetry_sums_runs_and_stays_deterministic() {
        let a = Runner::new(3)
            .with_telemetry(true)
            .run_all(quick_configs(30..33));
        let b = Runner::new(3)
            .with_telemetry(true)
            .run_all(quick_configs(30..33));
        assert_eq!(a.telemetry, b.telemetry);
        assert_eq!(a.telemetry.counter("runner.runs"), 3);
        // Counters really are the sum over runs.
        let per_run: u64 = a
            .outputs
            .iter()
            .map(|o| o.telemetry_report().counter("webmail.logins"))
            .sum();
        assert!(per_run > 0);
        assert_eq!(a.telemetry.counter("webmail.logins"), per_run);
        // And the profile is well-formed.
        let profile = a.profile().expect("telemetry was enabled");
        assert_eq!(profile.runs, 3);
        assert!(profile.speedup() > 0.0);
        assert!(profile.render().contains("3 runs across 3 jobs"));
    }

    #[test]
    fn disabled_telemetry_stays_silent() {
        let batch = Runner::new(2).run_all(quick_configs(40..42));
        assert!(batch.telemetry.metrics.counters.is_empty());
        assert!(batch.telemetry.trace.is_empty());
        assert!(batch.profile().is_none());
        assert!(!batch.outputs[0].telemetry.is_enabled());
    }

    #[test]
    fn observer_sees_every_run_report_once_whatever_the_schedule() {
        let observed = |jobs: usize| {
            let seen: Mutex<Vec<(usize, TelemetryReport)>> = Mutex::new(Vec::new());
            let batch = Runner::new(jobs).with_telemetry(true).run_map_observed(
                quick_configs(50..54),
                |o| o.dataset_json(),
                |i, r| {
                    seen.lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push((i, r.clone()));
                },
            );
            assert_eq!(batch.outputs.len(), 4);
            let mut seen = seen
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            seen.sort_by_key(|(i, _)| *i);
            seen
        };
        let seq = observed(1);
        let par = observed(4);
        let indices: Vec<usize> = par.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices, vec![0, 1, 2, 3]);
        // Each observed report is the run's own snapshot: schedule-
        // independent (report equality excludes wall-clock phases).
        for ((i, a), (_, b)) in seq.iter().zip(&par) {
            assert_eq!(a, b, "slot {i}");
            assert!(a.counter("webmail.logins") > 0);
        }
    }

    #[test]
    fn indexed_map_sees_each_submission_index_in_the_worker() {
        let batch =
            Runner::new(4).run_map_indexed(quick_configs(60..64), |i, o| (i, o.dataset_json()));
        for (slot, (seen, json)) in batch.outputs.iter().enumerate() {
            assert_eq!(*seen, slot, "map saw its own submission index");
            let solo = Experiment::new(ExperimentConfig::quick(60 + slot as u64)).run();
            assert_eq!(*json, solo.dataset_json(), "slot {slot}");
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = Runner::new(8).with_telemetry(true).run_all(Vec::new());
        assert!(batch.outputs.is_empty());
        assert_eq!(batch.telemetry.counter("runner.runs"), 0);
    }
}
