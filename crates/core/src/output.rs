//! Run outputs: the censored dataset, ground truth, and analysis entry
//! points.

use pwnd_analysis::report::FullAnalysis;
use pwnd_leak::forum::{Inquiry, SellerAccount, TeaserThread};
use pwnd_leak::malware::CycleRecord;
use pwnd_leak::plan::LeakRecord;
use pwnd_monitor::dataset::Dataset;
use pwnd_net::dnsbl::Blacklist;
use pwnd_telemetry::{TelemetryReport, TelemetrySink};

/// What the simulator knows that the researchers could not observe.
/// Tests use this to validate the censoring logic; analyses never touch
/// it.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    /// Accounts whose password was changed by an attacker.
    pub hijacked_accounts: Vec<u32>,
    /// Accounts blocked by the provider (with block day).
    pub blocked_accounts: Vec<(u32, f64)>,
    /// Messages captured by the sinkhole (none ever delivered).
    pub sinkholed_messages: usize,
    /// Every search query attackers actually ran (provider-side logs the
    /// monitor cannot read — the TF-IDF pipeline must *infer* these).
    pub searched_queries: Vec<String>,
    /// Accounts whose monitoring script was found and deleted.
    pub scripts_deleted: Vec<u32>,
    /// Total accesses the provider recorded (pre-censoring), per account.
    pub provider_access_counts: Vec<(u32, u64)>,
    /// Forum inquiries logged on the teaser threads.
    pub inquiries: Vec<Inquiry>,
    /// The seller accounts registered on each forum.
    pub sellers: Vec<SellerAccount>,
    /// The teaser threads posted (one per forum, carrying the samples).
    pub teaser_threads: Vec<TeaserThread>,
    /// Unique accesses the attacker model *attempted* (some fail against
    /// hijacked or blocked accounts and never appear in the dataset).
    pub attempted_accesses: usize,
    /// "Too much computer time" platform notices delivered into honey
    /// inboxes (the paper saw two, later opened by attackers).
    pub quota_notices_delivered: u64,
    /// Sandbox campaign log: one record per VM infect-and-login cycle.
    pub malware_cycles: Vec<CycleRecord>,
    /// Script notifications lost in transit by the fault layer (zero in
    /// fault-free runs).
    pub notifications_lost: u64,
    /// Redelivered notifications the collector deduplicated.
    pub duplicate_notifications: u64,
    /// Known monitoring blind windows recorded by the run.
    pub monitoring_gaps: usize,
}

/// Everything a run produces.
pub struct RunOutput {
    /// The censored, published dataset (what the paper released).
    pub dataset: Dataset,
    /// Simulator ground truth.
    pub ground_truth: GroundTruth,
    /// Where every credential was leaked.
    pub leaks: Vec<LeakRecord>,
    /// Concatenated text of all seeded emails (TF-IDF document `d_A`).
    pub corpus_text: String,
    /// Stopwords stripped before TF-IDF (honey handles, infra markers).
    pub extra_stopwords: Vec<String>,
    /// The DNSBL snapshot for the post-hoc blacklist check.
    pub blacklist: Blacklist,
    /// The run's telemetry sink (disabled unless the experiment was built
    /// with [`Experiment::with_telemetry`](crate::experiment::Experiment::with_telemetry)).
    /// Still live: [`RunOutput::analysis`] adds its own phase span.
    pub telemetry: TelemetrySink,
    /// Byte-size proxy for the run's peak resident state: the webmail
    /// service's interned hot state plus the built dataset, from pure
    /// collection accounting (never the OS). The fleet engine reports
    /// the high-water across shards as `fleet.peak_rss_proxy`.
    pub rss_proxy_bytes: u64,
}

impl RunOutput {
    /// Run the full §4 analysis pipeline over the dataset.
    pub fn analysis(&self) -> FullAnalysis {
        let _span = self.telemetry.span("analysis");
        FullAnalysis::compute(
            &self.dataset,
            &self.corpus_text,
            &self.extra_stopwords,
            Some(&self.blacklist),
        )
    }

    /// Snapshot the run's telemetry (metrics, trace, phase timings).
    pub fn telemetry_report(&self) -> TelemetryReport {
        self.telemetry.report()
    }

    /// Export the dataset as JSON (the paper's public-dataset artifact).
    pub fn dataset_json(&self) -> String {
        self.dataset.to_json()
    }
}
