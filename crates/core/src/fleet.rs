//! The fleet engine: one logical experiment sharded across the runner.
//!
//! The paper deployed 100 honey accounts; the fleet engine scales that
//! *population* — `pwnd fleet --accounts 20000` — by sharding it into
//! paper-sized sub-experiments, executing the shards on the PR 4
//! [`Runner`] worker pool, and merging the per-shard datasets and
//! telemetry into one fleet-wide view with globally re-numbered account
//! ids.
//!
//! ## Determinism
//!
//! Shard `i` runs `ExperimentConfig` derived purely from
//! `(fleet seed, i)` with a [`LeakPlan::scaled`] plan sized to the
//! shard, so the shard population is a pure function of the fleet
//! config. The runner parks shard outputs in submission order whatever
//! the schedule, and the merge walks shards in index order — the merged
//! dataset and every table are byte-identical for any `--jobs` count
//! (`tests/fleet_scale.rs` proves it).
//!
//! ## Memory
//!
//! Shards are mapped in-worker ([`Runner::run_map`]) down to their
//! dataset plus byte accounting; the corpus text and ground truth never
//! survive the worker. `fleet.peak_rss_proxy` reports the high-water
//! per-shard resident state (interner + collections, counted from the
//! data structures — the wall clock and the OS are never consulted),
//! and the merged export can stream as JSONL via
//! [`FleetOutput::write_jsonl`] without re-materializing the JSON text.

use crate::config::ExperimentConfig;
use crate::runner::Runner;
use pwnd_leak::plan::LeakPlan;
use pwnd_monitor::dataset::Dataset;
use pwnd_monitor::export::DatasetWriter;
use pwnd_telemetry::{Table, TelemetryReport, TelemetrySink};
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::Mutex;

/// Accounts per shard: the paper's deployment size, which keeps every
/// shard's calibration (Table 1 proportions, signup rate limits,
/// scraper load) at the scale the constants were tuned for.
pub const SHARD_ACCOUNTS: u32 = 100;

/// Configuration of one fleet run.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Master seed; shard `i` derives its seed as `seed + i`.
    pub seed: u64,
    /// Total honey-account population across all shards.
    pub accounts: u32,
    /// Runner worker threads.
    pub jobs: usize,
    /// Collect per-shard telemetry and merge it (adds the `runner.*`
    /// series and phases; the `fleet.*` gauges are always recorded).
    pub telemetry: bool,
}

impl FleetConfig {
    /// A fleet of `accounts` honey accounts on `jobs` workers.
    pub fn new(seed: u64, accounts: u32, jobs: usize) -> FleetConfig {
        FleetConfig {
            seed,
            accounts,
            jobs,
            telemetry: false,
        }
    }

    /// Enable per-shard telemetry merging.
    pub fn with_telemetry(mut self, enabled: bool) -> FleetConfig {
        self.telemetry = enabled;
        self
    }

    /// Shard sizes, in shard order: full [`SHARD_ACCOUNTS`] shards plus
    /// one tail shard for the remainder.
    pub fn shard_sizes(&self) -> Vec<u32> {
        let full = self.accounts / SHARD_ACCOUNTS;
        let tail = self.accounts % SHARD_ACCOUNTS;
        let mut sizes = vec![SHARD_ACCOUNTS; full as usize];
        if tail > 0 {
            sizes.push(tail);
        }
        sizes
    }

    /// The derived config for shard `index` of `size` accounts: the
    /// quick per-account profile (fleet scale trades per-account email
    /// volume for population size) with a proportionally scaled Table 1
    /// leak plan.
    pub fn shard_config(&self, index: usize, size: u32) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick(self.seed.wrapping_add(index as u64));
        cfg.plan = LeakPlan::scaled(size as usize);
        cfg
    }

    /// Every shard this fleet decomposes into, in shard order — the
    /// identity the fleet store records per shard file and re-derives
    /// on resume to decide what can be reused.
    pub fn shard_specs(&self) -> Vec<ShardSpec> {
        self.shard_sizes()
            .into_iter()
            .enumerate()
            .map(|(index, accounts)| {
                let cfg = self.shard_config(index, accounts);
                ShardSpec {
                    index,
                    seed: cfg.seed,
                    accounts,
                    account_base: (index as u32) * SHARD_ACCOUNTS,
                    config_fingerprint: cfg.fingerprint(),
                    fault_profile: cfg.faults.profile.describe().to_string(),
                }
            })
            .collect()
    }

    /// The fingerprint of the fleet's config *template*: shard 0's
    /// config at the canonical shard size with the seed zeroed out.
    /// Every shard of this fleet shares it (shards differ only in seed
    /// and plan size, which the per-shard spec records separately), so
    /// the store can detect "same seed, different experiment" in one
    /// comparison.
    pub fn template_fingerprint(&self) -> String {
        let mut cfg = self.shard_config(0, SHARD_ACCOUNTS);
        cfg.seed = 0;
        cfg.fingerprint()
    }
}

/// The identity of one shard of a fleet: everything that determines the
/// shard's output bytes. Two specs being equal means the shard files
/// are interchangeable — which is exactly the reuse rule the fleet
/// store applies on resume.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Position in the fleet (0-based).
    pub index: usize,
    /// The shard's derived experiment seed (`fleet seed + index`).
    pub seed: u64,
    /// Honey accounts this shard simulates.
    pub accounts: u32,
    /// First fleet-global account id in the shard's range
    /// (`index * SHARD_ACCOUNTS`).
    pub account_base: u32,
    /// [`ExperimentConfig::fingerprint`] of the shard's full config.
    pub config_fingerprint: String,
    /// Canonical fault-profile name (informational; the fingerprint is
    /// what guards reuse).
    pub fault_profile: String,
}

/// What one shard contributes to the merge: its censored dataset and
/// its peak-state byte accounting. Everything else a run produces is
/// dropped inside the worker.
struct ShardResult {
    dataset: Dataset,
    rss_proxy_bytes: u64,
}

/// Re-serializes out-of-order submissions into index order.
///
/// Workers complete shards in schedule order, but a streamed telemetry
/// file must read in shard order to be deterministic. Each completed
/// line is submitted under its shard index; lines at the write frontier
/// flush immediately, lines ahead of it park in a `BTreeMap` until the
/// gap fills. Peak buffering is bounded by how far the schedule runs
/// ahead — at most one pending line per in-flight worker — so memory
/// stays O(jobs), not O(shards).
struct OrderedLineWriter<W: Write> {
    state: Mutex<OrderedState<W>>,
}

struct OrderedState<W: Write> {
    out: W,
    next: usize,
    pending: BTreeMap<usize, String>,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> OrderedLineWriter<W> {
    fn new(out: W) -> Self {
        OrderedLineWriter {
            state: Mutex::new(OrderedState {
                out,
                next: 0,
                pending: BTreeMap::new(),
                written: 0,
                error: None,
            }),
        }
    }

    /// Submit `line` (without trailing newline) as entry `index`.
    /// Write errors are latched and re-raised by [`Self::finish`].
    fn submit(&self, index: usize, line: String) {
        let mut s = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if s.error.is_some() {
            return;
        }
        s.pending.insert(index, line);
        loop {
            let next = s.next;
            let Some(line) = s.pending.remove(&next) else {
                break;
            };
            if let Err(e) = s
                .out
                .write_all(line.as_bytes())
                .and_then(|()| s.out.write_all(b"\n"))
            {
                s.error = Some(e);
                return;
            }
            s.written += 1;
            s.next += 1;
        }
    }

    /// Flush and surface any latched write error; returns lines written.
    fn finish(self) -> io::Result<u64> {
        let mut s = self
            .state
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(e) = s.error {
            return Err(e);
        }
        s.out.flush()?;
        Ok(s.written)
    }
}

/// The merged result of a fleet run.
pub struct FleetOutput {
    /// The fleet-wide censored dataset, account ids re-numbered
    /// globally (shard `i` occupies ids `[i * 100, i * 100 + size)`).
    pub dataset: Dataset,
    /// Merged telemetry: per-shard reports (when enabled) plus the
    /// always-on `fleet.*` gauges.
    pub telemetry: TelemetryReport,
    /// The merge of *only* the per-shard run reports, in shard order —
    /// exactly what re-merging a streamed `--telemetry-out` file
    /// reproduces (no `runner.*` / `fleet.*` series, which exist only
    /// in-process). Empty unless telemetry was enabled.
    pub shard_telemetry: TelemetryReport,
    /// Total honey accounts simulated.
    pub accounts: u32,
    /// Shards the population was split into.
    pub shards: usize,
    /// Worker threads the shards ran across.
    pub jobs: usize,
    /// High-water per-shard resident state, in bytes (interned webmail
    /// state + built dataset, from collection accounting).
    pub peak_rss_proxy: u64,
}

impl FleetOutput {
    /// Export the merged dataset as pretty JSON (same format as a
    /// single run's [`RunOutput::dataset_json`](crate::RunOutput::dataset_json)).
    pub fn dataset_json(&self) -> String {
        self.dataset.to_json()
    }

    /// Stream the merged dataset as JSON Lines into `out`, one record
    /// per line, returning the number of records written. Peak memory
    /// is one record — this is the export path for 100k-account fleets.
    pub fn write_jsonl<W: Write>(&self, out: W) -> io::Result<u64> {
        let mut writer = DatasetWriter::new(out);
        writer.write_dataset(&self.dataset)?;
        let written = writer.records_written();
        writer.finish()?;
        Ok(written)
    }

    /// The fleet summary table: population, shard layout, access and
    /// detection totals, and the peak-state byte accounting.
    pub fn summary_table(&self) -> Table {
        let hijacks = self
            .dataset
            .accounts
            .iter()
            .filter(|a| a.hijack_detected_secs.is_some())
            .count();
        let blocks = self
            .dataset
            .accounts
            .iter()
            .filter(|a| a.block_detected_secs.is_some())
            .count();
        let opened: u64 = self
            .dataset
            .accesses
            .iter()
            .map(|a| u64::from(a.opened))
            .sum();
        let mut t = Table::new(&["fleet metric", "value"]).numeric();
        t.row(["accounts", &self.accounts.to_string()]);
        t.row(["shards", &self.shards.to_string()]);
        t.row(["jobs", &self.jobs.to_string()]);
        t.row(["unique accesses", &self.dataset.accesses.len().to_string()]);
        t.row([
            "accounts accessed",
            &self.dataset.accounts_with_accesses().to_string(),
        ]);
        t.row(["emails opened", &opened.to_string()]);
        t.row(["hijacks detected", &hijacks.to_string()]);
        t.row(["blocks detected", &blocks.to_string()]);
        t.row(["peak shard state (bytes)", &self.peak_rss_proxy.to_string()]);
        t.row([
            "merged dataset (bytes)",
            &self.dataset.heap_bytes().to_string(),
        ]);
        t
    }
}

/// Run a whole fleet: shard the population, execute the shards on the
/// runner, merge datasets and telemetry deterministically.
pub fn run_fleet(cfg: &FleetConfig) -> FleetOutput {
    run_fleet_observed(cfg, |_, _| {})
}

/// [`run_fleet`] that additionally streams each shard's telemetry
/// report as one JSONL line into `telemetry_out`, in shard order,
/// while the fleet is still running. Telemetry is forced on. Peak
/// streaming memory is O(jobs) buffered lines (see
/// `OrderedLineWriter`), so a 100k-account fleet's telemetry leaves
/// the process without ever being held whole.
///
/// The streamed lines re-merge (`TelemetryReport::merge` over
/// `TelemetryReport::from_json_line`) into exactly
/// [`FleetOutput::shard_telemetry`] — `pwnd profile --input` relies on
/// this.
pub fn run_fleet_streaming<W: Write + Send>(
    cfg: &FleetConfig,
    telemetry_out: W,
) -> io::Result<FleetOutput> {
    let cfg = cfg.clone().with_telemetry(true);
    let writer = OrderedLineWriter::new(telemetry_out);
    let out = run_fleet_observed(&cfg, |index, report| {
        writer.submit(index, report.to_json_line());
    });
    let written = writer.finish()?;
    debug_assert_eq!(written, out.shards as u64);
    Ok(out)
}

/// What a store-backed partial fleet run reports: no merged dataset —
/// the shards left the process through the `on_shard` callback — just
/// the batch telemetry and accounting.
#[derive(Debug)]
pub struct ShardRunSummary {
    /// Merged batch telemetry (`runner.*` series plus per-shard reports
    /// when [`FleetConfig::telemetry`] is on).
    pub telemetry: TelemetryReport,
    /// Worker threads the shards ran across.
    pub jobs: usize,
    /// High-water per-shard resident state, in bytes.
    pub peak_rss_proxy: u64,
    /// Shards actually executed.
    pub shards_run: usize,
}

/// Run only the given shards of a fleet, handing each shard's finished
/// JSONL bytes (account ids already rewritten to the shard's global
/// range) to `on_shard` from inside the worker that produced it.
///
/// This is the fleet store's engine: the store decides which shards
/// need (re-)running, and `on_shard` writes each one durably the moment
/// it completes — so a crash costs at most the shards in flight, and
/// peak memory is O(jobs) serialized shards, never the merged fleet.
/// Because ids are globalized before serialization, shard files merge
/// by per-record-kind concatenation in shard order, byte-identical to
/// [`FleetOutput::write_jsonl`] on an in-memory run.
///
/// `on_shard` may be called in any completion order; its first error is
/// latched, remaining completions are discarded, and the error is
/// returned after the batch joins.
pub fn run_fleet_shards<F>(
    cfg: &FleetConfig,
    specs: &[ShardSpec],
    on_shard: F,
) -> io::Result<ShardRunSummary>
where
    F: Fn(&ShardSpec, &[u8]) -> io::Result<()> + Sync,
{
    let configs: Vec<ExperimentConfig> = specs
        .iter()
        .map(|s| cfg.shard_config(s.index, s.accounts))
        .collect();
    let error: Mutex<Option<io::Error>> = Mutex::new(None);
    let runner = Runner::new(cfg.jobs).with_telemetry(cfg.telemetry);
    let batch = runner.run_map_indexed(configs, |slot, output| {
        let spec = &specs[slot];
        let mut dataset = output.dataset;
        for a in &mut dataset.accesses {
            a.account += spec.account_base;
        }
        for a in &mut dataset.accounts {
            a.account += spec.account_base;
        }
        for g in &mut dataset.gaps {
            g.account += spec.account_base;
        }
        let outcome = (|| {
            let mut bytes = Vec::new();
            let mut writer = DatasetWriter::new(&mut bytes);
            writer.write_dataset(&dataset)?;
            writer.finish()?;
            let failing = error
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .is_some();
            if failing {
                Ok(()) // the batch is already dead; drop this shard
            } else {
                on_shard(spec, &bytes)
            }
        })();
        if let Err(e) = outcome {
            error
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .get_or_insert(e);
        }
        output.rss_proxy_bytes
    });
    if let Some(e) = error
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        return Err(e);
    }
    Ok(ShardRunSummary {
        telemetry: batch.telemetry,
        jobs: batch.jobs,
        peak_rss_proxy: batch.outputs.into_iter().max().unwrap_or(0),
        shards_run: specs.len(),
    })
}

/// Shared fleet body: `observe(index, report)` fires in-worker as each
/// shard completes (completion order, not shard order).
fn run_fleet_observed<O: Fn(usize, &TelemetryReport) + Sync>(
    cfg: &FleetConfig,
    observe: O,
) -> FleetOutput {
    let sizes = cfg.shard_sizes();
    let configs: Vec<ExperimentConfig> = sizes
        .iter()
        .enumerate()
        .map(|(i, &size)| cfg.shard_config(i, size))
        .collect();

    // Keep each shard's own report so `shard_telemetry` (the streamed
    // view) can be merged in shard order after the join.
    let shard_reports: Mutex<Vec<Option<TelemetryReport>>> =
        Mutex::new((0..sizes.len()).map(|_| None).collect());
    let runner = Runner::new(cfg.jobs).with_telemetry(cfg.telemetry);
    let batch = runner.run_map_observed(
        configs,
        |output| ShardResult {
            rss_proxy_bytes: output.rss_proxy_bytes,
            dataset: output.dataset,
        },
        |index, report| {
            observe(index, report);
            if cfg.telemetry {
                let mut slots = shard_reports
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                slots[index] = Some(report.clone());
            }
        },
    );
    let shard_telemetry = TelemetryReport::merge(
        &shard_reports
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .into_iter()
            .flatten()
            .collect::<Vec<_>>(),
    );

    // Merge in shard (submission) order, re-numbering account ids into
    // disjoint global ranges.
    let fleet_sink = TelemetrySink::enabled();
    let mut dataset = Dataset::default();
    let mut peak = 0u64;
    for (i, shard) in batch.outputs.into_iter().enumerate() {
        let base = (i as u32) * SHARD_ACCOUNTS;
        peak = peak.max(shard.rss_proxy_bytes);
        for mut a in shard.dataset.accesses {
            a.account += base;
            dataset.accesses.push(a);
        }
        for mut a in shard.dataset.accounts {
            a.account += base;
            dataset.accounts.push(a);
        }
        dataset.opened_texts.extend(shard.dataset.opened_texts);
        for mut g in shard.dataset.gaps {
            g.account += base;
            dataset.gaps.push(g);
        }
    }

    fleet_sink.gauge_set("fleet.accounts", u64::from(cfg.accounts));
    fleet_sink.gauge_set("fleet.shards", sizes.len() as u64);
    fleet_sink.gauge_max("fleet.peak_rss_proxy", peak);
    fleet_sink.gauge_max("fleet.merged_dataset_bytes", dataset.heap_bytes() as u64);

    let telemetry = TelemetryReport::merge(&[batch.telemetry, fleet_sink.report()]);

    FleetOutput {
        dataset,
        telemetry,
        shard_telemetry,
        accounts: cfg.accounts,
        shards: sizes.len(),
        jobs: batch.jobs,
        peak_rss_proxy: peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_sizes_cover_the_population() {
        let c = FleetConfig::new(1, 250, 2);
        assert_eq!(c.shard_sizes(), vec![100, 100, 50]);
        assert_eq!(FleetConfig::new(1, 100, 1).shard_sizes(), vec![100]);
        assert_eq!(FleetConfig::new(1, 7, 1).shard_sizes(), vec![7]);
        assert!(FleetConfig::new(1, 0, 1).shard_sizes().is_empty());
    }

    #[test]
    fn shard_configs_scale_the_plan_and_derive_seeds() {
        let c = FleetConfig::new(40, 250, 2);
        let s0 = c.shard_config(0, 100);
        let s2 = c.shard_config(2, 50);
        assert_eq!(s0.seed, 40);
        assert_eq!(s2.seed, 42);
        assert_eq!(s0.plan.total_accounts(), 100);
        assert_eq!(s2.plan.total_accounts(), 50);
    }

    #[test]
    fn small_fleet_merges_with_global_account_ids() {
        let out = run_fleet(&FleetConfig::new(7, 150, 2));
        assert_eq!(out.accounts, 150);
        assert_eq!(out.shards, 2);
        assert_eq!(out.dataset.accounts.len(), 150);
        // Account ids are globally unique and shard-ranged.
        let ids: Vec<u32> = out.dataset.accounts.iter().map(|a| a.account).collect();
        assert_eq!(ids.len(), 150);
        assert!(ids.iter().take(100).all(|&id| id < 100));
        assert!(ids.iter().skip(100).all(|&id| (100..150).contains(&id)));
        assert!(out.dataset.accesses.iter().all(|a| a.account < 150));
        assert!(out.peak_rss_proxy > 0);
        assert_eq!(out.telemetry.metrics.gauge("fleet.accounts"), 150);
        assert!(out.telemetry.metrics.gauge("fleet.peak_rss_proxy") > 0);
        let rendered = out.summary_table().render();
        assert!(rendered.contains("accounts"));
        assert!(rendered.contains("150"));
    }

    #[test]
    fn streamed_telemetry_re_merges_into_shard_telemetry_exactly() {
        let mut buf = Vec::new();
        let out = run_fleet_streaming(&FleetConfig::new(9, 250, 3), &mut buf)
            .expect("in-memory write cannot fail");
        let text = String::from_utf8(buf).expect("JSONL is UTF-8");
        let parsed: Vec<TelemetryReport> = text
            .lines()
            .map(|l| TelemetryReport::from_json_line(l).expect("valid report line"))
            .collect();
        // One line per shard, in shard order (shard sizes are 100/100/50,
        // recoverable from each line's account-indexed counters).
        assert_eq!(parsed.len(), out.shards);
        let merged = TelemetryReport::merge(&parsed);
        assert_eq!(merged, out.shard_telemetry);
        assert_eq!(merged.phases, out.shard_telemetry.phases);
        assert_eq!(merged.spans, out.shard_telemetry.spans);
        assert!(merged.counter("webmail.logins") > 0);
        assert!(!merged.spans.is_empty());
        // The streamed view has no in-process-only series.
        assert_eq!(merged.metrics.gauge("fleet.accounts"), 0);
        assert_eq!(merged.counter("runner.runs"), 0);
    }

    #[test]
    fn ordered_writer_reorders_out_of_order_submissions() {
        let w = OrderedLineWriter::new(Vec::new());
        w.submit(2, "two".to_string());
        w.submit(0, "zero".to_string());
        w.submit(1, "one".to_string());
        let state = w
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        assert_eq!(state.written, 3);
        assert!(state.pending.is_empty());
        drop(state);
        let out = {
            let s = w
                .state
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            s.out
        };
        assert_eq!(String::from_utf8(out).unwrap(), "zero\none\ntwo\n");
    }

    #[test]
    fn shard_specs_pin_the_full_shard_identity() {
        let c = FleetConfig::new(40, 250, 2);
        let specs = c.shard_specs();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].seed, 40);
        assert_eq!(specs[2].seed, 42);
        assert_eq!(specs[2].accounts, 50);
        assert_eq!(specs[2].account_base, 200);
        assert_eq!(specs[0].fault_profile, "none");
        // Fingerprints differ across shards (seed and plan size differ)
        // but are reproducible.
        assert_ne!(specs[0].config_fingerprint, specs[1].config_fingerprint);
        assert_eq!(specs, c.shard_specs());
        // The template fingerprint ignores the fleet seed but tracks the
        // experiment shape.
        assert_eq!(
            c.template_fingerprint(),
            FleetConfig::new(99, 250, 8).template_fingerprint()
        );
    }

    #[test]
    fn partial_shard_runs_merge_byte_identically_to_the_in_memory_fleet() {
        let cfg = FleetConfig::new(11, 250, 3);
        let specs = cfg.shard_specs();
        let shards: Mutex<BTreeMap<usize, Vec<u8>>> = Mutex::new(BTreeMap::new());
        let summary = run_fleet_shards(&cfg, &specs, |spec, bytes| {
            shards
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert(spec.index, bytes.to_vec());
            Ok(())
        })
        .expect("collecting into memory cannot fail");
        assert_eq!(summary.shards_run, 3);
        assert!(summary.peak_rss_proxy > 0);

        // Merging the shard files is per-record-kind concatenation in
        // shard order — no reparsing, so no float round-trips.
        let shards = shards
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut merged = String::new();
        for tag in ["access", "account", "opened_text", "gap"] {
            let prefix = format!("{{\"record\":\"{tag}\"");
            for bytes in shards.values() {
                for line in std::str::from_utf8(bytes).expect("JSONL is UTF-8").lines() {
                    if line.starts_with(&prefix) {
                        merged.push_str(line);
                        merged.push('\n');
                    }
                }
            }
        }
        let mut direct = Vec::new();
        run_fleet(&cfg)
            .write_jsonl(&mut direct)
            .expect("in-memory write cannot fail");
        assert_eq!(merged.into_bytes(), direct);
    }

    #[test]
    fn shard_callback_errors_are_latched_and_returned() {
        let cfg = FleetConfig::new(5, 200, 2);
        let specs = cfg.shard_specs();
        let err = run_fleet_shards(&cfg, &specs, |spec, _| {
            Err(io::Error::other(format!(
                "disk full at shard {}",
                spec.index
            )))
        })
        .expect_err("callback failure must surface");
        assert!(err.to_string().contains("disk full"));
    }

    #[test]
    fn fleet_dataset_is_fault_free_shaped() {
        let out = run_fleet(&FleetConfig::new(3, 120, 2));
        let json = out.dataset_json();
        assert!(!json.contains("\"gaps\""));
        assert!(!json.contains("\"coverage\""));
    }
}
