//! The end-to-end experiment driver.

use crate::config::ExperimentConfig;
use crate::output::{GroundTruth, RunOutput};
use pwnd_attacker::arrivals::{forum_arrivals, malware_arrivals, paste_arrivals};
use pwnd_attacker::case_studies;
use pwnd_attacker::identity::OriginPolicy;
use pwnd_attacker::plan::{build_access_plan, AccessPlan, Action};
use pwnd_attacker::profiles::OutletProfile;
use pwnd_corpus::decoy::generate_decoys;
use pwnd_corpus::email::{Email, EmailId, MailTime};
use pwnd_corpus::generator::CorpusGenerator;
use pwnd_corpus::persona::{DecoyRegion, Persona, PersonaFactory};
use pwnd_faults::FaultPlan;
use pwnd_leak::forum::{generate_inquiries, Forum, SellerAccount, TeaserThread};
use pwnd_leak::malware::{
    liveness_filter, sample_pool, Campaign, CncId, InfectionOutcome, Sandbox,
};
use pwnd_leak::market::{Market, Sale};
use pwnd_leak::paste::PasteSite;
use pwnd_leak::plan::{LeakContent, LeakRecord, OutletKind};
use pwnd_monitor::collector::NotificationCollector;
use pwnd_monitor::dataset::{AccountRecord, Dataset, DatasetBuilder, GapRecord};
use pwnd_monitor::scraper::Scraper;
use pwnd_monitor::script::{ScriptConfig, ScriptLocation, ScriptRuntime};
use pwnd_net::access::{ConnectionInfo, CookieId};
use pwnd_net::dnsbl::{Blacklist, ListingReason};
use pwnd_net::geo::GeoDb;
use pwnd_net::geolocate::Geolocator;
use pwnd_net::ip::AddressPlan;
use pwnd_net::tor::TorDirectory;
use pwnd_sim::event::EventQueue;
use pwnd_sim::{Rng, SimDuration, SimTime};
use pwnd_telemetry::TelemetrySink;
use pwnd_webmail::account::AccountId;
use pwnd_webmail::mailbox::Folder;
use pwnd_webmail::service::{
    LoginError, OpError, SendError, ServiceConfig, SessionId, SignupError, WebmailService,
};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Per-account malware custody: the stealing C&C, the exfiltration time,
/// and the market's planned sale waves.
type SalesByAccount = HashMap<u32, (CncId, SimTime, Vec<Sale>)>;

/// A runnable experiment.
pub struct Experiment {
    config: ExperimentConfig,
    telemetry: TelemetrySink,
}

#[derive(Clone, Debug)]
enum Event {
    /// Execute visit `visit` of access plan `access`.
    Visit { access: usize, visit: usize },
    /// Scrape every account's activity page.
    Scrape,
    /// Daily script heartbeats.
    Heartbeat,
}

struct AccessState {
    plan: AccessPlan,
    /// Device cookie, assigned at the first successful login.
    cookie: Option<CookieId>,
    /// Stable origin IP for city-origin identities.
    ip: Option<Ipv4Addr>,
    /// Password this actor knows (the leaked one, or their own after a
    /// hijack).
    known_password: String,
    /// Whether this actor's IP was pre-listed on the DNSBL.
    pre_blacklisted: bool,
    last_opened: Option<EmailId>,
}

struct HoneyAccount {
    id: AccountId,
    persona: Persona,
    address: String,
    password: String,
    outlet: OutletKind,
    site: String,
    russian: bool,
    advertised: Option<DecoyRegion>,
    leaked_at: SimTime,
}

impl Experiment {
    /// Create an experiment from a configuration. Telemetry starts
    /// disabled: the default run pays nothing for observability.
    pub fn new(config: ExperimentConfig) -> Experiment {
        Experiment {
            config,
            telemetry: TelemetrySink::disabled(),
        }
    }

    /// Attach a telemetry sink. The sink is threaded through every layer
    /// (event queue, webmail service, monitor, leak outlets) and collects
    /// metrics, trace records, and phase timings for the whole run.
    /// Telemetry never touches simulation RNG or state: enabling it
    /// cannot change the dataset a seed produces.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Experiment {
        self.telemetry = sink;
        self
    }

    /// Run the experiment to completion and collect everything.
    pub fn run(self) -> RunOutput {
        let cfg = &self.config;
        let mut master = Rng::seed_from(cfg.seed);
        let mut rng_setup = master.fork(1);
        let mut rng_corpus = master.fork(2);
        let mut rng_leak = master.fork(3);
        let mut rng_attack = master.fork(4);
        let rng_scraper = master.fork(5);
        let mut rng_bl = master.fork(6);

        // --- Substrate -------------------------------------------------
        let geo = GeoDb::new();
        let plan = AddressPlan::new(&geo);
        let tor = TorDirectory::generate(cfg.tor_exits, &mut rng_setup);
        let geolocator = Geolocator::new(plan, geo.clone(), tor);
        let service_config = ServiceConfig {
            security: cfg.security_policy(),
            activity_page_capacity: cfg.activity_page_capacity,
            ..ServiceConfig::default()
        };
        let mut service = WebmailService::new(service_config, geolocator.clone());
        let mut runtime = ScriptRuntime::new(ScriptConfig::default());
        let mut collector = NotificationCollector::new();
        let mut scraper = Scraper::new(rng_scraper);
        let mut blacklist = Blacklist::new();
        service.set_telemetry(self.telemetry.clone());
        runtime.set_telemetry(self.telemetry.clone());
        collector.set_telemetry(self.telemetry.clone());
        scraper.set_telemetry(self.telemetry.clone());

        // The fault plan compiles from a salted copy of the master seed
        // and never touches the simulation streams forked above: with
        // `FaultProfile::none()` every consumer below sees an empty plan
        // and the run is byte-identical to one without the fault layer.
        let fault_plan = FaultPlan::compile(
            cfg.seed,
            &cfg.faults.profile,
            SimDuration::days(cfg.observation_days),
        );
        scraper.set_fault_plan(fault_plan.clone());
        scraper.set_retry_policy(cfg.faults.retry.clone());
        scraper.set_confirm_failures(cfg.faults.confirm_failures);
        collector.set_fault_plan(fault_plan.clone());
        runtime.set_fault_plan(fault_plan.clone());
        service.set_maintenance(fault_plan.maintenance_spans());

        // --- Account setup ----------------------------------------------
        let horizon = SimTime::ZERO + SimDuration::days(cfg.observation_days);
        let span = self.telemetry.span("corpus");
        let (mut accounts, corpus_text, extra_stopwords) = self.setup_accounts(
            &mut service,
            &mut runtime,
            &mut scraper,
            &geo,
            &mut rng_setup,
            &mut rng_corpus,
        );
        drop(span);

        // --- Leaks -------------------------------------------------------
        let span = self.telemetry.span("leaks");
        let (leaks, malware_sales, mut ground_truth) =
            self.leak_credentials(&mut accounts, &mut rng_leak);
        drop(span);

        // --- Attacker access plans ----------------------------------------
        let span = self.telemetry.span("attack-plans");
        let mut accesses =
            self.build_accesses(&accounts, &malware_sales, horizon, &geo, &mut rng_attack);
        if cfg.case_studies {
            accesses.extend(self.case_study_accesses(&accounts, &geo, &mut rng_attack));
        }
        drop(span);
        ground_truth.attempted_accesses = accesses.len();
        let mut states: Vec<AccessState> = accesses
            .into_iter()
            .map(|plan| {
                let account = &accounts[plan.account as usize];
                let pre_blacklisted = matches!(plan.identity.origin, OriginPolicy::City(_))
                    && rng_bl.chance(cfg.blacklist_prevalence);
                AccessState {
                    known_password: account.password.clone(),
                    plan,
                    cookie: None,
                    ip: None,
                    pre_blacklisted,
                    last_opened: None,
                }
            })
            .collect();

        // --- Event loop ----------------------------------------------------
        let loop_span = self.telemetry.span("event-loop");
        let mut queue: EventQueue<Event> = EventQueue::new()
            .with_telemetry(self.telemetry.clone())
            .with_labeler(|e| match e {
                Event::Visit { .. } => "visit",
                Event::Scrape => "scrape",
                Event::Heartbeat => "heartbeat",
            });
        let sched_span = self.telemetry.subspan("schedule", &[]);
        for (ai, st) in states.iter().enumerate() {
            for (vi, v) in st.plan.visits.iter().enumerate() {
                if v.start < horizon {
                    queue.schedule(
                        v.start,
                        Event::Visit {
                            access: ai,
                            visit: vi,
                        },
                    );
                }
            }
        }
        queue.schedule(SimTime::ZERO + SimDuration::hours(1), Event::Scrape);
        queue.schedule(SimTime::ZERO + SimDuration::minutes(30), Event::Heartbeat);
        drop(sched_span);

        let scrape_gap = SimDuration::hours(cfg.scrape_interval_hours);
        while let Some((t, ev)) = queue.pop() {
            if t >= horizon {
                break;
            }
            // Attribute the dispatch — including the notification drain
            // below — to its event kind, and for visits to the acting
            // attacker class (Figure 5's taxonomy).
            let ev_span = match &ev {
                Event::Visit { access, .. } => self.telemetry.subspan(
                    "event",
                    &[
                        ("kind", "visit"),
                        ("class", states[*access].plan.class.label()),
                    ],
                ),
                Event::Scrape => self.telemetry.subspan("event", &[("kind", "scrape")]),
                Event::Heartbeat => self.telemetry.subspan("event", &[("kind", "heartbeat")]),
            };
            ev_span.sim(t.as_secs());
            match ev {
                Event::Scrape => {
                    let scrape_span = self.telemetry.span("scrape");
                    scraper.scrape_all(&mut service, t);
                    drop(scrape_span);
                    queue.schedule(t + scrape_gap, Event::Scrape);
                }
                Event::Heartbeat => {
                    runtime.heartbeat_tick(t, &mut service, &mut collector);
                    queue.schedule(t + SimDuration::days(1), Event::Heartbeat);
                }
                Event::Visit { access, visit } => {
                    execute_visit(
                        &mut states[access],
                        visit,
                        &accounts,
                        &mut service,
                        &mut runtime,
                        &geolocator,
                        &mut blacklist,
                        &mut ground_truth,
                        &mut rng_attack,
                        horizon,
                    );
                }
            }
            let events = service.drain_events();
            runtime.process_events(&events, &mut service, &mut collector);
            drop(ev_span);
        }
        // One final scrape right at the horizon, as the researchers would
        // do before ending data collection.
        let scrape_span = self.telemetry.span("scrape");
        scraper.scrape_all(&mut service, horizon);
        drop(scrape_span);
        scraper.finish(horizon);
        drop(loop_span);

        // --- Ground truth ---------------------------------------------------
        for acct in &accounts {
            let rec = service.account(acct.id);
            if rec.is_hijacked() {
                ground_truth.hijacked_accounts.push(acct.id.0);
            }
            if let pwnd_webmail::account::AccountState::Blocked { at } = rec.state {
                ground_truth
                    .blocked_accounts
                    .push((acct.id.0, at.as_days_f64()));
            }
            ground_truth
                .provider_access_counts
                .push((acct.id.0, service.total_accesses_recorded(acct.id)));
            for q in service.query_log(acct.id) {
                ground_truth.searched_queries.push(q.query.clone());
            }
            if !runtime.is_alive(acct.id) {
                ground_truth.scripts_deleted.push(acct.id.0);
            }
        }
        ground_truth.sinkholed_messages = service.sinkhole().len();
        ground_truth.quota_notices_delivered = runtime.quota_notices_sent();
        ground_truth.notifications_lost = collector.lost_in_transit();
        ground_truth.duplicate_notifications = collector.duplicates_detected();

        // --- Dataset ----------------------------------------------------------
        let span = self.telemetry.span("dataset");
        let account_records: Vec<AccountRecord> = accounts
            .iter()
            .map(|a| AccountRecord {
                account: a.id.0,
                outlet: a.outlet.label().to_string(),
                advertised_region: a.advertised.map(|r| {
                    match r {
                        DecoyRegion::Uk => "UK",
                        DecoyRegion::Us => "US",
                    }
                    .to_string()
                }),
                leaked_at_secs: a.leaked_at.as_secs(),
                hijack_detected_secs: scraper.hijacks_detected().get(&a.id).map(|t| t.as_secs()),
                // Block detection is what the daily heartbeats are *for*
                // (§3.1: "to attest that the account was still functional
                // and had not been blocked by Google"): a heartbeat
                // silence longer than two days before the horizon means
                // the script stopped running — the account was suspended
                // (or, rarely, the script was found and deleted; the
                // researchers could not tell those apart either).
                block_detected_secs: collector.last_heartbeat(a.id).and_then(|hb| {
                    if horizon.since(hb) > SimDuration::days(2) {
                        Some((hb + SimDuration::days(1)).as_secs())
                    } else {
                        None
                    }
                }),
                // Filled in by the builder when gaps are tracked.
                coverage: None,
            })
            .collect();
        // Known monitoring blind windows, from all three sources. Only
        // assembled under a non-trivial profile: a fault-free run keeps
        // the legacy dataset shape (no gaps, no coverage fields).
        let mut builder = DatasetBuilder::new(&geolocator, scraper.dumps(), &collector)
            .with_own_cookies(&scraper.own_cookies())
            .with_accounts(account_records);
        if !fault_plan.is_none() {
            let mut gaps: Vec<GapRecord> = Vec::new();
            for &(acct, from, until) in scraper.gaps() {
                gaps.push(GapRecord {
                    account: acct.0,
                    kind: "scraper".to_string(),
                    from_secs: from.as_secs(),
                    until_secs: until.as_secs(),
                });
            }
            for acct in &accounts {
                for (from, until) in collector.heartbeat_gaps(acct.id, SimDuration::days(2)) {
                    gaps.push(GapRecord {
                        account: acct.id.0,
                        kind: "heartbeat".to_string(),
                        from_secs: from.as_secs(),
                        until_secs: until.as_secs(),
                    });
                }
                for w in fault_plan.maintenance_windows() {
                    gaps.push(GapRecord {
                        account: acct.id.0,
                        kind: "maintenance".to_string(),
                        from_secs: w.start.as_secs(),
                        until_secs: w.end.as_secs(),
                    });
                }
            }
            gaps.sort_by(|a, b| {
                (a.account, a.from_secs, a.until_secs, &a.kind).cmp(&(
                    b.account,
                    b.from_secs,
                    b.until_secs,
                    &b.kind,
                ))
            });
            ground_truth.monitoring_gaps = gaps.len();
            builder = builder.with_gaps(gaps, horizon.as_secs());
        }
        let dataset: Dataset = builder.build();
        drop(span);

        // Peak-state accounting for the fleet engine: interned webmail
        // state plus the built dataset, bytes counted from the
        // collections themselves — never the OS or the wall clock.
        let rss_proxy_bytes = (service.interned_state_bytes() + dataset.heap_bytes()) as u64;
        self.telemetry
            .gauge_max("experiment.rss_proxy_bytes", rss_proxy_bytes);

        RunOutput {
            dataset,
            ground_truth,
            leaks,
            corpus_text,
            extra_stopwords,
            blacklist,
            telemetry: self.telemetry.clone(),
            rss_proxy_bytes,
        }
    }

    fn setup_accounts(
        &self,
        service: &mut WebmailService,
        runtime: &mut ScriptRuntime,
        scraper: &mut Scraper,
        geo: &GeoDb,
        rng_setup: &mut Rng,
        rng_corpus: &mut Rng,
    ) -> (Vec<HoneyAccount>, String, Vec<String>) {
        let cfg = &self.config;
        let mut factory = PersonaFactory::new();
        let mut generator = CorpusGenerator::with_archetype(cfg.archetype);
        let mut accounts: Vec<HoneyAccount> = Vec::new();
        let mut corpus_text = String::new();
        let mut stopwords: Vec<String> =
            vec!["honeymail".into(), "example".into(), "meridianpower".into()];

        // Peer personas: the "colleagues" honey accounts exchange mail
        // with. Not honey accounts themselves.
        let peers: Vec<Persona> = factory.generate_batch(12, |_| None, rng_setup);

        // Setup happened in the weeks before the leak.
        let creation_time = SimTime::ZERO;
        let mut signup_ip = AddressPlan::sample_infra(rng_setup);
        let _ = geo; // personas sample cities through the factory's own GeoDb

        for group in &cfg.plan.groups {
            for i in 0..group.count {
                let region = if group.with_location {
                    Some(if i % 2 == 0 {
                        DecoyRegion::Uk
                    } else {
                        DecoyRegion::Us
                    })
                } else {
                    None
                };
                // Sub-phase attribution: persona + signup ("addresses"),
                // email synthesis ("bodies"), TF-IDF corpus accumulation
                // ("vocab"), and mailbox/rule/script insertion ("index").
                // Guards never reorder the RNG draws they wrap.
                let (persona, address, password, id) = {
                    let _stage = self.telemetry.subspan("addresses", &[]);
                    let persona = factory.generate(region, rng_setup);
                    let address = persona.webmail_address();
                    let password = format!("hp-{:08x}", rng_setup.next_u64() as u32);

                    // Account creation hits the provider's per-IP signup
                    // rate limit; complete phone verification and
                    // continue, as the researchers did manually.
                    let id = loop {
                        match service.create_account(&address, &password, signup_ip, creation_time)
                        {
                            Ok(id) => break id,
                            Err(SignupError::PhoneVerificationRequired) => {
                                service.complete_phone_verification(signup_ip);
                                signup_ip = AddressPlan::sample_infra(rng_setup);
                            }
                            Err(SignupError::AddressTaken) => {
                                unreachable!("persona handles are unique")
                            }
                        }
                    };
                    (persona, address, password, id)
                };

                let mailbox = {
                    let _stage = self.telemetry.subspan("bodies", &[]);
                    generator.generate_mailbox(
                        &persona,
                        &peers,
                        cfg.min_emails,
                        cfg.max_emails,
                        rng_corpus,
                    )
                };
                {
                    let _stage = self.telemetry.subspan("vocab", &[]);
                    for e in &mailbox {
                        corpus_text.push_str(&e.full_text());
                        corpus_text.push('\n');
                    }
                }
                let mailbox_len = mailbox.len();
                {
                    let _stage = self.telemetry.subspan("index", &[]);
                    service.seed_mailbox(id, mailbox);
                }
                if cfg.seed_decoys {
                    let decoys = {
                        let _stage = self.telemetry.subspan("bodies", &[]);
                        generate_decoys(&persona, 5_000_000 + id.0 as u64 * 10, rng_corpus)
                    };
                    {
                        let _stage = self.telemetry.subspan("vocab", &[]);
                        for d in &decoys {
                            corpus_text.push_str(&d.email.full_text());
                            corpus_text.push('\n');
                        }
                    }
                    let _stage = self.telemetry.subspan("index", &[]);
                    service.seed_mailbox(id, decoys.into_iter().map(|d| d.email).collect());
                }
                let index_stage = self.telemetry.subspan("index", &[]);
                service.set_send_from_override(id, "sinkhole@monitor.example");
                // A lived-in mailbox has a couple of owner rules (§2);
                // they label the routine traffic during seeding.
                service.add_rule(
                    id,
                    pwnd_webmail::rules::Rule {
                        matcher: pwnd_webmail::rules::Matcher::SubjectContains("report".into()),
                        action: pwnd_webmail::rules::RuleAction::ApplyLabel("reports".into()),
                    },
                );
                if rng_setup.chance(0.5) {
                    service.add_rule(
                        id,
                        pwnd_webmail::rules::Rule {
                            matcher: pwnd_webmail::rules::Matcher::SubjectContains(
                                "meeting".into(),
                            ),
                            action: pwnd_webmail::rules::RuleAction::ApplyLabel("meetings".into()),
                        },
                    );
                }
                runtime.install(id, ScriptLocation::HiddenSpreadsheet);
                // The polling trigger reads the whole mailbox: its daily
                // cost scales with mailbox size, so only the largest
                // mailboxes (≈ 299+ messages) persistently exceed the
                // 90-minute quota — reproducing the paper's "two accounts
                // received 'too much computer time' notices".
                runtime.set_polling_cost(id, 1_800.0 + 12.1 * mailbox_len as f64);
                scraper.register(id, &address, &password);
                drop(index_stage);

                stopwords.push(persona.first.to_lowercase());
                stopwords.push(persona.last.to_lowercase());

                accounts.push(HoneyAccount {
                    id,
                    address,
                    password,
                    outlet: group.kind,
                    site: String::new(),
                    russian: false,
                    advertised: region,
                    leaked_at: SimTime::ZERO,
                    persona,
                });
            }
        }
        for p in &peers {
            stopwords.push(p.first.to_lowercase());
            stopwords.push(p.last.to_lowercase());
        }
        stopwords.sort_unstable();
        stopwords.dedup();
        (accounts, corpus_text, stopwords)
    }

    fn leak_credentials(
        &self,
        accounts: &mut [HoneyAccount],
        rng: &mut Rng,
    ) -> (Vec<LeakRecord>, SalesByAccount, GroundTruth) {
        let cfg = &self.config;
        let popular = PasteSite::popular();
        let russian = PasteSite::russian();
        let forums = Forum::all();
        let mut ground_truth = GroundTruth::default();

        // Malware pipeline: pool → liveness test → assign one live sample
        // per account, cycling; the campaign runs the sandbox cycles back
        // to back and keeps the full VM log.
        let pool = sample_pool(200, 12, rng);
        let live = liveness_filter(pool);
        assert!(!live.is_empty(), "liveness filter must keep some samples");
        let mut campaign = Campaign::new(Sandbox::default());
        campaign.set_telemetry(self.telemetry.clone());
        let market = Market::default();

        let mut leaks = Vec::new();
        // Per-forum credential samples, batched into one teaser thread
        // per forum (the Stone-Gross modus operandi).
        let mut forum_samples: std::collections::BTreeMap<&'static str, Vec<(String, SimTime)>> =
            std::collections::BTreeMap::new();
        let mut paste_idx = 0usize;
        let mut russian_left_in_group;
        let mut forum_idx = 0usize;
        let mut malware_cycle = 0u64;
        let mut acct_cursor = 0usize;

        for group in &cfg.plan.groups {
            russian_left_in_group = group.russian_paste;
            for _ in 0..group.count {
                let account = &mut accounts[acct_cursor];
                acct_cursor += 1;
                // Small stagger: postings spread over the leak day.
                let at = SimTime::ZERO + SimDuration::minutes(10 * acct_cursor as u64);
                let advertised = account
                    .advertised
                    .map(|r| (r, account.persona.home_city.name.to_string()));
                let content = LeakContent {
                    address: account.address.clone(),
                    password: account.password.clone(),
                    advertised,
                    dob: account.advertised.map(|_| account.persona.dob.to_string()),
                };
                let (site, russian, leak_at) = match group.kind {
                    OutletKind::Paste => {
                        if russian_left_in_group > 0 {
                            russian_left_in_group -= 1;
                            let s = &russian[paste_idx % russian.len()];
                            paste_idx += 1;
                            (s.name.to_string(), true, at)
                        } else {
                            let s = &popular[paste_idx % popular.len()];
                            paste_idx += 1;
                            (s.name.to_string(), false, at)
                        }
                    }
                    OutletKind::Forum => {
                        let f = &forums[forum_idx % forums.len()];
                        forum_idx += 1;
                        forum_samples
                            .entry(f.name)
                            .or_default()
                            .push((content.render(), at));
                        (f.name.to_string(), false, at)
                    }
                    OutletKind::Malware => {
                        // One sandbox cycle per credential, back to back.
                        let sample = &live[malware_cycle as usize % live.len()];
                        let start = SimTime::ZERO + SimDuration::hours(malware_cycle);
                        malware_cycle += 1;
                        match campaign.expose(sample, account.id.0, start) {
                            InfectionOutcome::Exfiltrated { cnc, at } => {
                                (format!("{}@{:?}", sample.family.label(), cnc), false, at)
                            }
                            // Liveness-filtered samples always exfiltrate.
                            other => unreachable!("live sample failed: {other:?}"),
                        }
                    }
                };
                account.site = site.clone();
                account.russian = russian;
                account.leaked_at = leak_at;
                leaks.push(LeakRecord {
                    account: account.id.0,
                    kind: group.kind,
                    site,
                    at: leak_at,
                    content,
                    russian,
                });
            }
        }

        // Post the forum teaser threads: register a seller per forum,
        // post one thread carrying that forum's samples, and collect the
        // inquiries into the seller's PM inbox (logged, never answered).
        for forum in &forums {
            let Some(samples) = forum_samples.remove(forum.name) else {
                continue;
            };
            let posted_at = samples.iter().map(|&(_, t)| t).min().expect("non-empty");
            let seller = SellerAccount::register(forum, SimTime::ZERO, rng);
            let lines = samples.into_iter().map(|(l, _)| l).collect();
            let thread = TeaserThread::post(&seller, lines, posted_at, rng);
            let inquiries = generate_inquiries(forum, posted_at, rng);
            for inq in &inquiries {
                self.telemetry.count("leak.forum_inquiries");
                self.telemetry
                    .trace_with(inq.at.as_secs(), "forum_inquiry", None, || {
                        format!("{} on {}", inq.from_handle, forum.name)
                    });
            }
            ground_truth.inquiries.extend(inquiries);
            ground_truth.sellers.push(seller);
            ground_truth.teaser_threads.push(thread);
        }

        // Market sales per C&C (the campaign's loot map is ordered).
        let mut sales_per_account: SalesByAccount = HashMap::new();
        for (&cnc, loot) in campaign.loot() {
            let (sales, _unsold) = market.plan_sales(loot.entries(), rng);
            for sale in &sales {
                self.telemetry.count("leak.market_sales");
                self.telemetry
                    .trace_with(sale.at.as_secs(), "market_sale", None, || {
                        format!(
                            "cnc={} wave={} accounts={}",
                            cnc.0,
                            sale.wave,
                            sale.accounts.len()
                        )
                    });
            }
            for &(acct, stolen_at) in loot.entries() {
                sales_per_account.insert(acct, (cnc, stolen_at, sales.clone()));
            }
        }
        ground_truth.malware_cycles = campaign.log().to_vec();
        (leaks, sales_per_account, ground_truth)
    }

    fn build_accesses(
        &self,
        accounts: &[HoneyAccount],
        malware_sales: &SalesByAccount,
        horizon: SimTime,
        geo: &GeoDb,
        rng: &mut Rng,
    ) -> Vec<AccessPlan> {
        let popular = PasteSite::popular();
        let russian = PasteSite::russian();
        let forums = Forum::all();
        let mut out = Vec::new();
        for account in accounts {
            match account.outlet {
                OutletKind::Paste => {
                    let sites: &[PasteSite] = if account.russian { &russian } else { &popular };
                    let site = sites
                        .iter()
                        .find(|s| s.name == account.site)
                        .expect("leak site known");
                    let profile = self.profile_for(OutletProfile::paste());
                    for t in paste_arrivals(site, account.leaked_at, horizon, rng) {
                        self.telemetry.count_labeled("leak.paste_views", site.name);
                        self.telemetry.trace_with(
                            t.as_secs(),
                            "paste_view",
                            Some(account.id.0),
                            || site.name.to_string(),
                        );
                        out.push(build_access_plan(
                            &profile,
                            account.id.0,
                            account.advertised,
                            t,
                            geo,
                            rng,
                        ));
                    }
                }
                OutletKind::Forum => {
                    let forum = forums
                        .iter()
                        .find(|f| f.name == account.site)
                        .expect("leak forum known");
                    let profile = self.profile_for(OutletProfile::forum());
                    for t in forum_arrivals(forum, account.leaked_at, horizon, rng) {
                        out.push(build_access_plan(
                            &profile,
                            account.id.0,
                            account.advertised,
                            t,
                            geo,
                            rng,
                        ));
                    }
                }
                OutletKind::Malware => {
                    let (_, stolen_at, sales) = &malware_sales[&account.id.0];
                    let botmaster = self.profile_for(OutletProfile::malware());
                    let buyer = self.profile_for(OutletProfile::malware_buyer());
                    for a in malware_arrivals(account.id.0, *stolen_at, sales, horizon, rng) {
                        let profile = if a.buyer { &buyer } else { &botmaster };
                        out.push(build_access_plan(
                            profile,
                            account.id.0,
                            None,
                            a.at,
                            geo,
                            rng,
                        ));
                    }
                }
            }
        }
        out
    }

    /// Specialize an outlet profile to the configured scenario.
    fn profile_for(&self, base: OutletProfile) -> OutletProfile {
        match self.config.archetype {
            pwnd_corpus::archetype::Archetype::CorporateEmployee => base,
            pwnd_corpus::archetype::Archetype::Activist => base.targeting_activists(),
        }
    }

    fn case_study_accesses(
        &self,
        accounts: &[HoneyAccount],
        geo: &GeoDb,
        rng: &mut Rng,
    ) -> Vec<AccessPlan> {
        // The blackmailer used three accounts; pick the first three
        // popular-paste accounts. The registrar used one forum account.
        let paste_targets: Vec<u32> = accounts
            .iter()
            .filter(|a| a.outlet == OutletKind::Paste && !a.russian)
            .take(3)
            .map(|a| a.id.0)
            .collect();
        let forum_target = accounts
            .iter()
            .find(|a| a.outlet == OutletKind::Forum)
            .map(|a| a.id.0);
        let mut out = case_studies::blackmailer_plans(
            &paste_targets,
            SimTime::ZERO + SimDuration::days(3),
            geo,
            rng,
        );
        if let Some(acct) = forum_target {
            out.push(case_studies::forum_registrar_plan(
                acct,
                SimTime::ZERO + SimDuration::days(20),
                geo,
                rng,
            ));
        }
        out
    }
}

/// Execute one visit of one access plan against the service.
#[allow(clippy::too_many_arguments)]
fn execute_visit(
    state: &mut AccessState,
    visit_idx: usize,
    accounts: &[HoneyAccount],
    service: &mut WebmailService,
    runtime: &mut ScriptRuntime,
    geolocator: &Geolocator,
    blacklist: &mut Blacklist,
    _ground_truth: &mut GroundTruth,
    rng: &mut Rng,
    horizon: SimTime,
) {
    let visit = state.plan.visits[visit_idx].clone();
    let account = &accounts[state.plan.account as usize];

    // Resolve the origin IP: Tor picks a fresh exit per login; a fixed
    // city keeps a stable address (same device, same network).
    let ip = match state.plan.identity.origin {
        OriginPolicy::Tor => geolocator.tor().sample_exit(rng),
        OriginPolicy::City(city) => match state.ip {
            Some(ip) => ip,
            None => {
                let ip = geolocator.sample_host_in_city(city, rng);
                if state.pre_blacklisted {
                    // An already-infected residential machine: listed
                    // before our experiment ever saw it.
                    blacklist.list(ip, SimTime::ZERO, ListingReason::InfectedHost);
                }
                state.ip = Some(ip);
                ip
            }
        },
    };
    let mut conn = ConnectionInfo::new(
        ip,
        state.plan.identity.client.clone(),
        match state.plan.identity.origin {
            OriginPolicy::Tor => state.plan.identity.home_city.point,
            OriginPolicy::City(c) => c.point,
        },
    );
    if let Some(cookie) = state.cookie {
        conn = conn.with_cookie(cookie);
    }

    let session = match service.login(&account.address, &state.known_password, &conn, visit.start) {
        Ok((session, cookie)) => {
            state.cookie = Some(cookie);
            session
        }
        // Someone else hijacked the account, the provider blocked it or
        // is down for maintenance, or (filter-enabled ablation) the
        // login looked too suspicious. Attackers don't retry a visit.
        Err(
            LoginError::BadCredentials
            | LoginError::AccountBlocked
            | LoginError::SuspiciousLogin
            | LoginError::Maintenance,
        ) => {
            return;
        }
    };

    // Spread actions across the visit.
    let n = visit.actions.len().max(1) as u64;
    let step = (visit.length.as_secs() / (n + 1)).max(1);
    let mut t = visit.start;
    for action in &visit.actions {
        t += SimDuration::from_secs(step);
        if t >= horizon {
            break;
        }
        if run_action(state, action, session, service, runtime, rng, t).is_err() {
            break; // account blocked mid-visit
        }
    }
}

// The event loop's per-event dispatch: one call = one simulated action.
// Anchoring alloc-hot here (not at the visit loop above) means only
// allocation that repeats *within* one event gets flagged.
// lint:hot-root
fn run_action(
    state: &mut AccessState,
    action: &Action,
    session: SessionId,
    service: &mut WebmailService,
    runtime: &mut ScriptRuntime,
    rng: &mut Rng,
    t: SimTime,
) -> Result<(), ()> {
    let blocked = |e: OpError| match e {
        OpError::AccountBlocked | OpError::InvalidSession => Err(()),
        OpError::NoSuchEmail => Ok(()),
    };
    match action {
        Action::ListInbox => {
            service
                .list_folder(session, Folder::Inbox)
                .map_err(|_| ())?;
        }
        Action::Search { query, open_top } => {
            let hits = match service.search(session, query, t) {
                Ok(h) => h,
                Err(e) => return blocked(e),
            };
            for &id in hits.iter().take(*open_top) {
                match service.open_email(session, id, t) {
                    Ok(_) => state.last_opened = Some(id),
                    Err(e) => return blocked(e),
                }
            }
        }
        Action::OpenUnread { max } => {
            let inbox = match service.list_folder(session, Folder::Inbox) {
                Ok(v) => v,
                Err(e) => return blocked(e),
            };
            for &id in inbox.iter().take(*max) {
                match service.open_email(session, id, t) {
                    Ok(_) => state.last_opened = Some(id),
                    Err(e) => return blocked(e),
                }
            }
        }
        Action::OpenDrafts { max } => {
            let drafts = match service.list_folder(session, Folder::Drafts) {
                Ok(v) => v,
                Err(e) => return blocked(e),
            };
            for &id in drafts.iter().take(*max) {
                match service.open_email(session, id, t) {
                    Ok(_) => state.last_opened = Some(id),
                    Err(e) => return blocked(e),
                }
            }
        }
        Action::StarLastOpened => {
            if let Some(id) = state.last_opened {
                if let Err(e) = service.star_email(session, id, t) {
                    return blocked(e);
                }
            }
        }
        Action::CreateDraft { to, subject, body } => {
            if let Err(e) = service.create_draft(session, to.clone(), subject, body, t) {
                return blocked(e);
            }
        }
        Action::SendEmail { to, subject, body } => {
            match service.send_email(session, to.clone(), subject, body, t) {
                Ok(_) | Err(SendError::NoRecipients) => {}
                Err(SendError::Op(e)) => return blocked(e),
            }
        }
        Action::SendBurst {
            count,
            subject,
            body,
            interval_secs,
        } => {
            let mut st = t;
            for i in 0..*count {
                // lint:allow(alloc-hot): each burst message gets a fresh unique recipient — the address is the event's payload
                let to = vec![format!(
                    "mark{:06x}@spamlist.example",
                    rng.next_u64() as u32
                )];
                match service.send_email(session, to, subject, body, st) {
                    Ok(_) => {}
                    Err(SendError::Op(_)) => return Err(()), // blocked: burst over
                    Err(SendError::NoRecipients) => unreachable!(),
                }
                st += SimDuration::from_secs(*interval_secs);
                let _ = i;
            }
        }
        Action::ChangePassword { new_password } => {
            match service.change_password(session, new_password, t) {
                Ok(()) => state.known_password = new_password.clone(),
                Err(e) => return blocked(e),
            }
        }
        Action::Rummage { intensity } => {
            // Effective discovery probability = base × intensity.
            let roll = if *intensity > 0.0 {
                rng.f64() / intensity
            } else {
                1.0
            };
            let account = AccountId(state.plan.account);
            let _found = runtime.attacker_rummage(account, roll);
        }
        Action::RegisterExternal { service: svc_name } => {
            // The external service emails a registration confirmation
            // into the honey inbox; the attacker then reads it (the next
            // OpenUnread in the plan).
            let account = AccountId(state.plan.account);
            let addr = service.account(account).address.clone();
            service.seed_mailbox(
                account,
                vec![Email {
                    id: EmailId(30_000_000 + state.plan.account as u64),
                    from: format!("no-reply@{svc_name}"),
                    to: vec![addr],
                    subject: format!("Welcome to {svc_name} - confirm your registration"),
                    body: "Click the confirmation link to activate your forum account.".into(),
                    timestamp: MailTime::from_sim(t),
                }],
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiment_produces_plausible_world() {
        let out = Experiment::new(ExperimentConfig::quick(7)).run();
        // 100 accounts, Table 1 groups intact.
        assert_eq!(out.dataset.accounts.len(), 100);
        assert_eq!(out.leaks.len(), 100);
        // Accesses happened and were observed.
        assert!(
            out.dataset.accesses.len() > 50,
            "{}",
            out.dataset.accesses.len()
        );
        // Spam was sent and sinkholed, never delivered.
        assert!(out.ground_truth.sinkholed_messages > 0);
        // Some accounts got hijacked, some blocked.
        assert!(!out.ground_truth.hijacked_accounts.is_empty());
        assert!(!out.ground_truth.blocked_accounts.is_empty());
        // Attackers really searched (provider-side ground truth).
        assert!(!out.ground_truth.searched_queries.is_empty());
        // Corpus text exists for TF-IDF.
        assert!(out.corpus_text.len() > 10_000);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = Experiment::new(ExperimentConfig::quick(99)).run();
        let b = Experiment::new(ExperimentConfig::quick(99)).run();
        assert_eq!(a.dataset.accesses.len(), b.dataset.accesses.len());
        assert_eq!(a.dataset.accesses, b.dataset.accesses);
        assert_eq!(
            a.ground_truth.sinkholed_messages,
            b.ground_truth.sinkholed_messages
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = Experiment::new(ExperimentConfig::quick(1)).run();
        let b = Experiment::new(ExperimentConfig::quick(2)).run();
        assert_ne!(a.dataset.accesses, b.dataset.accesses);
    }

    #[test]
    fn fault_machinery_does_not_perturb_a_fault_free_run() {
        use crate::config::FaultSettings;
        use pwnd_faults::RetryPolicy;

        // The retry machinery must be inert while no faults fire: retries
        // only trigger on transient failures, which a none profile never
        // produces, so even an aggressive policy leaves the published
        // artifact byte-identical. (confirm_failures is deliberately NOT
        // inert — raising it defers detection of *genuine* hijacks by
        // extra scrape sweeps — so only its default of 1 preserves the
        // historical output.)
        let plain = Experiment::new(ExperimentConfig::quick(42)).run();
        let mut cfg = ExperimentConfig::quick(42);
        cfg.faults = FaultSettings {
            retry: RetryPolicy {
                max_attempts: 8,
                ..RetryPolicy::default()
            },
            ..FaultSettings::default()
        };
        let hardened = Experiment::new(cfg).run();
        assert_eq!(plain.dataset_json(), hardened.dataset_json());
        assert_eq!(hardened.ground_truth.notifications_lost, 0);
        assert_eq!(hardened.ground_truth.duplicate_notifications, 0);
        assert_eq!(hardened.ground_truth.monitoring_gaps, 0);
        // And the legacy JSON shape is preserved exactly.
        assert!(!plain.dataset_json().contains("\"coverage\""));
        assert!(!plain.dataset_json().contains("\"gaps\""));
    }

    #[test]
    fn faulted_runs_are_reproducible_and_report_coverage() {
        use crate::config::FaultSettings;
        use pwnd_faults::FaultProfile;

        let cfg = || {
            let mut c = ExperimentConfig::quick(42);
            c.faults = FaultSettings {
                profile: FaultProfile::heavy(),
                confirm_failures: 3,
                ..FaultSettings::default()
            };
            c
        };
        let a = Experiment::new(cfg()).run();
        let b = Experiment::new(cfg()).run();
        assert_eq!(a.dataset_json(), b.dataset_json());
        // The heavy profile visibly degrades monitoring...
        assert!(a.ground_truth.notifications_lost > 0);
        assert!(a.ground_truth.monitoring_gaps > 0);
        assert!(a
            .dataset
            .accounts
            .iter()
            .any(|m| m.coverage.is_some_and(|c| c < 1.0)));
        // ...and every coverage fraction is a sane [0, 1] value.
        assert!(a
            .dataset
            .accounts
            .iter()
            .all(|m| m.coverage.is_some_and(|c| (0.0..=1.0).contains(&c))));
    }

    #[test]
    fn telemetry_does_not_perturb_the_run() {
        let plain = Experiment::new(ExperimentConfig::quick(42)).run();
        let traced = Experiment::new(ExperimentConfig::quick(42))
            .with_telemetry(TelemetrySink::enabled())
            .run();
        // The published artifact must be byte-identical whether or not
        // the run was instrumented.
        assert_eq!(plain.dataset_json(), traced.dataset_json());

        // Two instrumented runs of the same seed agree on every metric
        // and trace record (report equality ignores wall-clock phases).
        let traced2 = Experiment::new(ExperimentConfig::quick(42))
            .with_telemetry(TelemetrySink::enabled())
            .run();
        assert_eq!(traced.telemetry_report(), traced2.telemetry_report());

        // And the instrumentation actually observed the run.
        let report = traced.telemetry_report();
        assert!(report.counter("sim.events_dispatched") > 0);
        assert!(report.counter("webmail.logins") > 0);
        assert!(report.counter("monitor.scrapes") > 0);
        assert!(!report.trace.is_empty());

        // The span tree's deterministic structure — paths, entry
        // counts, sim ranges — is identical run to run, and a disabled
        // sink recorded no tree at all (the no-op contract extends to
        // hierarchical spans).
        let report2 = traced2.telemetry_report();
        assert_eq!(report.spans.structure(), report2.spans.structure());
        assert!(plain.telemetry_report().spans.is_empty());
        let events = report
            .spans
            .nodes
            .iter()
            .filter(|n| n.leaf_base() == "event" && n.parent_path() == Some("event-loop"))
            .count();
        assert!(events >= 3, "event kinds attributed under the loop");
        // The sim-annotated root phase leaves its deterministic span
        // trace event (path + sim range, no wall clock).
        assert!(report
            .trace
            .iter()
            .any(|e| e.kind == "span" && e.detail.starts_with("event-loop sim=")));
    }
}
