//! Experiment configuration.

use pwnd_corpus::archetype::Archetype;
use pwnd_faults::{FaultProfile, RetryPolicy};
use pwnd_leak::plan::LeakPlan;
use pwnd_webmail::security::SecurityPolicy;

/// Fault-injection and resilience settings for one run.
#[derive(Clone, Debug)]
pub struct FaultSettings {
    /// What infrastructure failures to inject. [`FaultProfile::none`]
    /// (the default) injects nothing and leaves the run byte-identical
    /// to a build without the fault layer.
    pub profile: FaultProfile,
    /// Consecutive same-class hard login failures the scraper requires
    /// before declaring a hijack or block. The default of 1 reproduces
    /// the historical trust-the-first-error behavior; raise it (3 is a
    /// sensible production value) so a transient provider error cannot
    /// mislabel an account. Knob documented in DESIGN.md §Failure model.
    pub confirm_failures: u32,
    /// How the scraper retries transient failures (flakes, maintenance).
    pub retry: RetryPolicy,
}

impl Default for FaultSettings {
    fn default() -> FaultSettings {
        FaultSettings {
            profile: FaultProfile::none(),
            confirm_failures: 1,
            retry: RetryPolicy::default(),
        }
    }
}

/// Everything tunable about one experiment run.
///
/// The two presets cover nearly every use: [`ExperimentConfig::paper`]
/// reproduces the published deployment, [`ExperimentConfig::quick`]
/// shrinks it for tests and fleet shards. A config plus a seed is the
/// *entire* input of a run — two runs with equal configs produce
/// byte-identical datasets.
///
/// ```
/// use pwnd_core::ExperimentConfig;
///
/// let cfg = ExperimentConfig::quick(2016);
/// assert_eq!(cfg.seed, 2016);
/// assert_eq!(cfg.plan.total_accounts(), 100);
/// ```
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Master seed; every random stream forks from it.
    pub seed: u64,
    /// The leak plan (Table 1 by default).
    pub plan: LeakPlan,
    /// Observation window after the leak, in days (paper: 25 June 2015 →
    /// 16 February 2016 = 236 days).
    pub observation_days: u64,
    /// Minimum seeded emails per account (paper: 200).
    pub min_emails: usize,
    /// Maximum seeded emails per account (paper: 300).
    pub max_emails: usize,
    /// Hours between activity-page scrapes.
    pub scrape_interval_hours: u64,
    /// Whether the provider's suspicious-login filter is enabled.
    /// `false` reproduces the paper (Google disabled it for the honey
    /// accounts); `true` is the ablation showing most accesses would be
    /// blocked.
    pub login_filter_enabled: bool,
    /// Seed decoy sensitive emails (the paper's §5 future-work idea).
    pub seed_decoys: bool,
    /// Run the §4.4 scripted case studies (blackmailer, forum registrar).
    pub case_studies: bool,
    /// Number of Tor exit nodes in the directory.
    pub tor_exits: usize,
    /// Probability that a non-Tor attacker origin IP is already on the
    /// DNSBL (an infected residential machine). Targets the paper's 20
    /// blacklisted addresses among ~170 non-Tor origins.
    pub blacklist_prevalence: f64,
    /// Rows kept on each visitor-activity page.
    pub activity_page_capacity: usize,
    /// Who the honey personas pretend to be. The paper used corporate
    /// employees; [`Archetype::Activist`] runs the §5 targeted scenario
    /// (activist corpus, motivated attackers hunting activist-sensitive
    /// terms).
    pub archetype: Archetype,
    /// Fault injection and monitoring resilience.
    pub faults: FaultSettings,
}

impl ExperimentConfig {
    /// The paper's configuration.
    pub fn paper(seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            seed,
            plan: LeakPlan::paper(),
            observation_days: 236,
            min_emails: 200,
            max_emails: 300,
            scrape_interval_hours: 6,
            login_filter_enabled: false,
            seed_decoys: false,
            case_studies: true,
            tor_exits: 800,
            blacklist_prevalence: 0.11,
            activity_page_capacity: 10,
            archetype: Archetype::CorporateEmployee,
            faults: FaultSettings::default(),
        }
    }

    /// The §5 activist scenario: same leak plan and monitoring, activist
    /// personas and a targeted attacker population.
    pub fn activist(seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            archetype: Archetype::Activist,
            ..ExperimentConfig::paper(seed)
        }
    }

    /// A reduced configuration for fast tests: fewer seeded emails and a
    /// shorter window, same structure.
    pub fn quick(seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            min_emails: 30,
            max_emails: 50,
            observation_days: 120,
            tor_exits: 200,
            ..ExperimentConfig::paper(seed)
        }
    }

    /// The provider security policy this config implies.
    pub fn security_policy(&self) -> SecurityPolicy {
        SecurityPolicy {
            login_filter_enabled: self.login_filter_enabled,
            ..SecurityPolicy::default()
        }
    }

    /// A content hash of everything that determines this config's
    /// output. Two configs with equal fingerprints produce
    /// byte-identical datasets, so the fleet store records the
    /// fingerprint per shard and refuses to reuse a shard file whose
    /// config has drifted.
    ///
    /// The hash covers the version-tagged `Debug` representation:
    /// `Debug` derives span every field recursively, so any field
    /// change — here or in a nested type like [`LeakPlan`] — changes
    /// the fingerprint. The version tag lets a future format break
    /// invalidate old stores explicitly.
    pub fn fingerprint(&self) -> String {
        let repr = format!("pwnd-experiment-config/1 {self:?}");
        crate::hash::Sha256::digest_hex(repr.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_study() {
        let c = ExperimentConfig::paper(1);
        assert_eq!(c.plan.total_accounts(), 100);
        assert_eq!(c.observation_days, 236);
        assert_eq!(c.min_emails, 200);
        assert_eq!(c.max_emails, 300);
        assert!(!c.login_filter_enabled);
        assert!(!c.security_policy().login_filter_enabled);
    }

    #[test]
    fn quick_config_is_smaller_but_structurally_same() {
        let c = ExperimentConfig::quick(1);
        assert_eq!(c.plan.total_accounts(), 100);
        assert!(c.min_emails < 200);
        assert!(c.observation_days < 236);
    }

    #[test]
    fn fingerprint_tracks_every_output_relevant_field() {
        let base = ExperimentConfig::quick(7);
        assert_eq!(base.fingerprint(), ExperimentConfig::quick(7).fingerprint());

        let mut seed = base.clone();
        seed.seed = 8;
        let mut days = base.clone();
        days.observation_days += 1;
        let mut faults = base.clone();
        faults.faults.profile = pwnd_faults::FaultProfile::light();
        for (name, variant) in [("seed", seed), ("days", days), ("faults", faults)] {
            assert_ne!(variant.fingerprint(), base.fingerprint(), "{name}");
        }
    }
}
