#![warn(missing_docs)]

//! # pwnd-core — experiment orchestration and the public API
//!
//! This crate wires every substrate together and runs the paper's
//! experiment end to end, deterministically, from a single seed:
//!
//! 1. **Setup** — create 100 honey accounts (handling the provider's
//!    signup rate limits), seed each with 200–300 synthetic corporate
//!    emails, point their send-from at the sinkhole, hide a monitoring
//!    script in each, and register them with the scraper.
//! 2. **Leak** — publish credentials per the Table 1 plan: paste sites
//!    (popular + Russian), forum teaser threads, and malware sandbox
//!    cycles whose C&C exfiltration feeds the resale market.
//! 3. **Run** — a discrete-event loop over the 7-month observation
//!    window: attacker visits (composed by `pwnd-attacker`), 6-hourly
//!    scrapes, daily heartbeats, script-notification processing.
//! 4. **Collect** — build the censored [`pwnd_monitor::Dataset`] and the
//!    ground truth, then hand both to `pwnd-analysis`.
//!
//! ```no_run
//! use pwnd_core::{ExperimentConfig, Experiment};
//!
//! let output = Experiment::new(ExperimentConfig::paper(42)).run();
//! println!("{}", output.analysis().render());
//! ```

pub mod config;
pub mod experiment;
pub mod fleet;
pub mod hash;
pub mod output;
pub mod runner;

pub use config::ExperimentConfig;
pub use experiment::Experiment;
pub use fleet::{FleetConfig, FleetOutput};
pub use output::{GroundTruth, RunOutput};
pub use runner::{Batch, BatchProfile, Runner};

/// The deterministic string-interning arena (re-exported from
/// [`pwnd_sim::intern`]); fleet-scale state stores [`Symbol`]s instead
/// of owned strings.
///
/// ```
/// let mut arena = pwnd_core::Interner::new();
/// let sym = arena.intern("gold-digger");
/// assert_eq!(arena.resolve(sym), "gold-digger");
/// ```
pub use pwnd_sim::intern::{Interner, Symbol};
