//! Offline parsing of raw activity-page dumps.
//!
//! §3.1: "The scripts navigate to the visitor activity page in each honey
//! account, and dump the pages to disk, for offline parsing." This module
//! is that round trip: [`render_page`] serializes a scraped page the way
//! the dump files store it (one access per line, tab-separated — the
//! format the paper's parsing scripts consumed), and [`parse_page`]
//! recovers the structured rows. The dataset builder can consume either
//! the in-memory rows or re-parsed dumps; a test asserts both paths agree.

use pwnd_net::access::CookieId;
use pwnd_net::geo::GeoPoint;
use pwnd_net::geolocate::GeoLocation;
use pwnd_net::useragent::{Browser, Fingerprint, Os};
use pwnd_sim::SimTime;
use pwnd_telemetry::TelemetrySink;
use pwnd_webmail::activity::ActivityRow;
use std::net::Ipv4Addr;

/// Magic first line of every dump file.
pub const DUMP_HEADER: &str = "# honeymail activity dump v1";

/// Render one scraped page to the on-disk dump format.
pub fn render_page(account: u32, at: SimTime, rows: &[ActivityRow]) -> String {
    let mut out = String::new();
    out.push_str(DUMP_HEADER);
    out.push('\n');
    out.push_str(&format!(
        "account\t{account}\nscraped_at\t{}\n",
        at.as_secs()
    ));
    for r in rows {
        out.push_str(&format!(
            "row\t{}\t{}\t{}\t{}\t{}\t{:.4}\t{:.4}\t{}\t{}\n",
            r.cookie.0,
            r.at.as_secs(),
            r.ip,
            r.location.country.unwrap_or("??"),
            r.location.city,
            r.location.point.lat,
            r.location.point.lon,
            r.fingerprint.browser.label(),
            r.fingerprint.os.label(),
        ));
    }
    out
}

/// A parse failure, with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

/// A parsed page: account, scrape time, rows.
#[derive(Debug, Clone)]
pub struct ParsedPage {
    /// The scraped account's index.
    pub account: u32,
    /// When the scrape ran.
    pub scraped_at: SimTime,
    /// The recovered rows.
    pub rows: Vec<ActivityRow>,
}

fn browser_from_label(s: &str) -> Browser {
    Browser::IDENTIFIABLE
        .iter()
        .copied()
        .find(|b| b.label() == s)
        .unwrap_or(Browser::Unknown)
}

fn os_from_label(s: &str) -> Os {
    Os::IDENTIFIABLE
        .iter()
        .copied()
        .find(|o| o.label() == s)
        .unwrap_or(Os::Unknown)
}

fn country_from_code(code: &str) -> Option<&'static str> {
    // Dump files store owned strings; the in-memory model uses the
    // gazetteer's static names. Recover the static str by lookup.
    pwnd_net::geo::GeoDb::new()
        .cities()
        .iter()
        .map(|c| c.country)
        .find(|c| *c == code)
}

fn city_from_name(name: &str) -> &'static str {
    pwnd_net::geo::GeoDb::new()
        .by_name(name)
        .map(|c| c.name)
        .unwrap_or("Unknown")
}

fn err(line: usize, reason: &str) -> ParseError {
    ParseError {
        line,
        reason: reason.to_string(),
    }
}

fn parse_row(n: usize, parts: &[&str]) -> Result<ActivityRow, ParseError> {
    let [cookie_s, at_s, ip_s, country_s, city_s, lat_s, lon_s, browser_s, os_s] = parts else {
        return Err(err(n, "row needs 9 fields"));
    };
    let cookie: u64 = cookie_s.parse().map_err(|_| err(n, "bad cookie"))?;
    let at: u64 = at_s.parse().map_err(|_| err(n, "bad time"))?;
    let ip: Ipv4Addr = ip_s.parse().map_err(|_| err(n, "bad ip"))?;
    let country = if *country_s == "??" {
        None
    } else {
        country_from_code(country_s)
    };
    let lat: f64 = lat_s.parse().map_err(|_| err(n, "bad lat"))?;
    let lon: f64 = lon_s.parse().map_err(|_| err(n, "bad lon"))?;
    Ok(ActivityRow {
        cookie: CookieId(cookie),
        at: SimTime::from_secs(at),
        ip,
        location: GeoLocation {
            country,
            city: city_from_name(city_s),
            point: GeoPoint { lat, lon },
        },
        fingerprint: Fingerprint {
            browser: browser_from_label(browser_s),
            os: os_from_label(os_s),
        },
    })
}

/// Shared parse loop. `strict` aborts on the first bad data line;
/// lenient mode records the failure and keeps going.
fn parse_inner(text: &str, strict: bool) -> Result<(ParsedPage, Vec<ParseError>), ParseError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l == DUMP_HEADER => {}
        _ => return Err(err(1, "missing dump header")),
    }
    let mut account: Option<u32> = None;
    let mut scraped_at: Option<SimTime> = None;
    let mut rows = Vec::new(); // lint:allow(alloc-hot): the parsed page's own row buffer, one per dump
    let mut failures = Vec::new(); // lint:allow(alloc-hot): empty until the first malformed line
    for (i, line) in lines {
        let n = i + 1;
        let mut fields = line.split('\t');
        let result = match fields.next() {
            Some("account") => match fields.next().and_then(|v| v.parse().ok()) {
                Some(v) => {
                    account = Some(v);
                    Ok(())
                }
                None => Err(err(n, "bad account")),
            },
            Some("scraped_at") => match fields.next().and_then(|v| v.parse().ok()) {
                Some(v) => {
                    scraped_at = Some(SimTime::from_secs(v));
                    Ok(())
                }
                None => Err(err(n, "bad scraped_at")),
            },
            Some("row") => {
                let parts: Vec<&str> = fields.collect();
                parse_row(n, &parts).map(|r| rows.push(r))
            }
            Some("") | None => Ok(()),
            Some(other) => Err(err(n, &format!("unknown record {other}"))), // lint:allow(alloc-hot): malformed-input path only
        };
        if let Err(e) = result {
            if strict {
                return Err(e);
            }
            failures.push(e);
        }
    }
    let page = ParsedPage {
        account: account.ok_or_else(|| err(0, "no account record"))?,
        scraped_at: scraped_at.ok_or_else(|| err(0, "no scraped_at record"))?,
        rows,
    };
    Ok((page, failures))
}

/// Parse a dump file produced by [`render_page`], aborting on the first
/// malformed line (the historical strict behavior; round-trip tests use
/// it to prove dumps are well formed).
pub fn parse_page(text: &str) -> Result<ParsedPage, ParseError> {
    parse_inner(text, true).map(|(page, _)| page)
}

/// Parse a dump file, skipping malformed data lines instead of aborting.
/// Returns the recovered page plus every failure encountered. Only a
/// structural failure — missing header, or no account / scrape-time
/// record anywhere in the file — still fails the whole page: a truncated
/// or partially corrupted dump should cost the corrupt rows, not the
/// entire scrape.
pub fn parse_page_resilient(text: &str) -> Result<(ParsedPage, Vec<ParseError>), ParseError> {
    parse_inner(text, false)
}

/// Parse a batch of dump files leniently. Unsalvageable pages and
/// skipped lines are counted into `monitor.parse_failures` (labels
/// `page` and `line`) and reported alongside the recovered pages.
// lint:hot-root
pub fn parse_dumps(
    texts: &[String],
    telemetry: &TelemetrySink,
) -> (Vec<ParsedPage>, Vec<ParseError>) {
    let mut pages = Vec::new();
    let mut failures = Vec::new();
    for text in texts {
        match parse_page_resilient(text) {
            Ok((page, errs)) => {
                if !errs.is_empty() {
                    telemetry.count_labeled_by("monitor.parse_failures", "line", errs.len() as u64);
                }
                pages.push(page);
                failures.extend(errs);
            }
            Err(e) => {
                telemetry.count_labeled("monitor.parse_failures", "page");
                failures.push(e);
            }
        }
    }
    (pages, failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_net::geo::GeoDb;

    fn sample_rows() -> Vec<ActivityRow> {
        let geo = GeoDb::new();
        let chicago = geo.by_name("Chicago").unwrap();
        let moscow = geo.by_name("Moscow").unwrap();
        vec![
            ActivityRow {
                cookie: CookieId(7),
                at: SimTime::from_secs(1_000),
                ip: "50.2.3.4".parse().unwrap(),
                location: GeoLocation {
                    country: Some(chicago.country),
                    city: chicago.name,
                    point: chicago.point,
                },
                fingerprint: Fingerprint {
                    browser: Browser::Chrome,
                    os: Os::Windows,
                },
            },
            ActivityRow {
                cookie: CookieId(9),
                at: SimTime::from_secs(2_000),
                ip: "60.1.1.1".parse().unwrap(),
                location: GeoLocation {
                    country: Some(moscow.country),
                    city: moscow.name,
                    point: moscow.point,
                },
                fingerprint: Fingerprint {
                    browser: Browser::Unknown,
                    os: Os::Linux,
                },
            },
        ]
    }

    #[test]
    fn roundtrip_preserves_rows() {
        let rows = sample_rows();
        let text = render_page(42, SimTime::from_secs(3_000), &rows);
        let parsed = parse_page(&text).unwrap();
        assert_eq!(parsed.account, 42);
        assert_eq!(parsed.scraped_at, SimTime::from_secs(3_000));
        assert_eq!(parsed.rows.len(), 2);
        for (a, b) in rows.iter().zip(&parsed.rows) {
            assert_eq!(a.cookie, b.cookie);
            assert_eq!(a.at, b.at);
            assert_eq!(a.ip, b.ip);
            assert_eq!(a.location.country, b.location.country);
            assert_eq!(a.location.city, b.location.city);
            assert_eq!(a.fingerprint, b.fingerprint);
            assert!((a.location.point.lat - b.location.point.lat).abs() < 1e-3);
        }
    }

    #[test]
    fn rejects_missing_header() {
        assert!(parse_page("account\t1\n").is_err());
    }

    #[test]
    fn rejects_malformed_rows() {
        let bad = format!("{DUMP_HEADER}\naccount\t1\nscraped_at\t5\nrow\tnot-a-number\n");
        let e = parse_page(&bad).unwrap_err();
        assert_eq!(e.line, 4);
    }

    #[test]
    fn rejects_unknown_records() {
        let bad = format!("{DUMP_HEADER}\nwhatever\tx\n");
        assert!(parse_page(&bad).is_err());
    }

    #[test]
    fn empty_page_parses_with_no_rows() {
        let text = render_page(5, SimTime::ZERO, &[]);
        let parsed = parse_page(&text).unwrap();
        assert!(parsed.rows.is_empty());
    }

    #[test]
    fn resilient_parse_skips_bad_lines_and_keeps_good_rows() {
        let rows = sample_rows();
        let clean = render_page(42, SimTime::from_secs(3_000), &rows);
        // Corrupt the middle: inject a truncated row and an unknown
        // record between the two good rows.
        let mut lines: Vec<&str> = clean.lines().collect();
        lines.insert(4, "row\tgarbage");
        lines.insert(5, "whatever\tx");
        let corrupted = lines.join("\n");
        assert!(parse_page(&corrupted).is_err(), "strict parse must abort");
        let (page, failures) = parse_page_resilient(&corrupted).unwrap();
        assert_eq!(page.rows.len(), 2, "both good rows survive");
        assert_eq!(failures.len(), 2);
        assert_eq!(failures[0].line, 5);
        assert_eq!(failures[1].line, 6);
    }

    #[test]
    fn resilient_parse_still_rejects_structural_damage() {
        assert!(parse_page_resilient("no header here\n").is_err());
        let no_account = format!("{DUMP_HEADER}\nscraped_at\t5\n");
        assert!(parse_page_resilient(&no_account).is_err());
    }

    #[test]
    fn parse_dumps_counts_failures_and_recovers_pages() {
        let rows = sample_rows();
        let clean = render_page(1, SimTime::from_secs(100), &rows);
        let mut lines: Vec<&str> = clean.lines().collect();
        lines.insert(3, "row\tbroken");
        let damaged = lines.join("\n");
        let unsalvageable = "not a dump at all".to_string();
        let texts = vec![clean.clone(), damaged, unsalvageable];
        let (pages, failures) = parse_dumps(&texts, &TelemetrySink::disabled());
        assert_eq!(pages.len(), 2, "clean and damaged pages both recovered");
        assert_eq!(pages[1].rows.len(), 2);
        assert_eq!(failures.len(), 2, "one bad line + one lost page");
    }
}
