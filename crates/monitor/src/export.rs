//! Streaming dataset export: JSON Lines, one record per line.
//!
//! [`Dataset::to_json`] materializes the whole export in memory before a
//! single byte reaches disk — fine at the paper's 100 accounts, fatal at
//! fleet scale (100k accounts of accesses, account records, and opened
//! texts). [`DatasetWriter`] emits the same records *incrementally*: each
//! access/account/opened-text/gap becomes one compact JSON line tagged
//! with its record type, written straight to any [`std::io::Write`] sink,
//! so peak memory is one record, not one dataset.
//!
//! The stream is lossless: [`read_jsonl`] re-assembles a [`Dataset`]
//! whose [`Dataset::to_json`] is byte-identical to the in-memory export
//! (proven by `tests/fleet_scale.rs`). Record order within a type is
//! preserved; the writer may interleave types freely because re-assembly
//! groups by tag.

use crate::dataset::{AccountRecord, Dataset, GapRecord, ParsedAccess};
use pwnd_telemetry::json::{Json, JsonError};
use std::io::{self, Write};

/// The canonical JSONL record-kind tags: the single `pub const` table
/// shared by [`DatasetWriter`] (emit), [`read_jsonl`] (consume),
/// [`record_tag`] callers, and the fleet store's streaming merge. Every
/// tag string in the workspace comes from here — `pwnd-lint`'s
/// `schema-drift` rule checks that each tag is both written and read,
/// and that no site re-introduces an inline literal.
// lint:jsonl-tags
pub mod tags {
    /// One parsed access (a session aggregated by the monitor).
    pub const ACCESS: &str = "access";
    /// Per-account metadata (outlet, leak time, hijack/block marks).
    pub const ACCOUNT: &str = "account";
    /// One opened-email text snapshot (TF-IDF input).
    pub const OPENED_TEXT: &str = "opened_text";
    /// One monitoring-gap interval (fault-injection coverage hole).
    pub const GAP: &str = "gap";
}

/// Incremental JSONL writer for dataset records.
///
/// Each line is a two-key object `{"record": <tag>, "value": <record>}`
/// with a tag from [`tags`], in the compact JSON rendering. Lines are
/// written (and counted) as records arrive; nothing is buffered beyond
/// the current line.
pub struct DatasetWriter<W: Write> {
    out: W,
    records: u64,
}

impl<W: Write> DatasetWriter<W> {
    /// Wrap a sink. The writer does not buffer; hand it a
    /// `BufWriter` when writing to a file-like sink.
    pub fn new(out: W) -> DatasetWriter<W> {
        DatasetWriter { out, records: 0 }
    }

    fn line(&mut self, tag: &str, value: Json) -> io::Result<()> {
        let obj = Json::Obj(vec![
            ("record".to_string(), Json::Str(tag.to_string())),
            ("value".to_string(), value),
        ]);
        self.out.write_all(obj.compact().as_bytes())?;
        self.out.write_all(b"\n")?;
        self.records += 1;
        Ok(())
    }

    /// Emit one parsed access.
    // lint:jsonl-emit
    pub fn access(&mut self, a: &ParsedAccess) -> io::Result<()> {
        self.line(tags::ACCESS, a.to_json_value())
    }

    /// Emit one per-account metadata record.
    // lint:jsonl-emit
    pub fn account(&mut self, a: &AccountRecord) -> io::Result<()> {
        self.line(tags::ACCOUNT, a.to_json_value())
    }

    /// Emit one opened-email text snapshot.
    // lint:jsonl-emit
    pub fn opened_text(&mut self, text: &str) -> io::Result<()> {
        self.line(tags::OPENED_TEXT, Json::Str(text.to_string()))
    }

    /// Emit one monitoring-gap record.
    // lint:jsonl-emit
    pub fn gap(&mut self, g: &GapRecord) -> io::Result<()> {
        self.line(tags::GAP, g.to_json_value())
    }

    /// Stream every record of an already-built dataset, in the same
    /// order [`Dataset::to_json`] serializes them (accesses, accounts,
    /// opened texts, gaps).
    pub fn write_dataset(&mut self, ds: &Dataset) -> io::Result<()> {
        for a in &ds.accesses {
            self.access(a)?;
        }
        for a in &ds.accounts {
            self.account(a)?;
        }
        for t in &ds.opened_texts {
            self.opened_text(t)?;
        }
        for g in &ds.gaps {
            self.gap(g)?;
        }
        Ok(())
    }

    /// Lines written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flush and hand the sink back.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// The record tags a [`DatasetWriter`] emits, in [`Dataset::to_json`]
/// serialization order. The fleet store's streaming merge walks shard
/// files once per tag in this order so concatenation reproduces the
/// in-memory export byte for byte.
pub const RECORD_TAGS: [&str; 4] = [tags::ACCESS, tags::ACCOUNT, tags::OPENED_TEXT, tags::GAP];

/// The record tag of one JSONL line, without parsing the record — the
/// streaming fleet-store merge classifies millions of lines with this.
/// Returns `None` for lines not starting with the writer's exact
/// `{"record":"<tag>"` prefix (including blank and truncated lines).
// lint:jsonl-consume
pub fn record_tag(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("{\"record\":\"")?;
    rest.find('"').map(|end| &rest[..end])
}

/// Evidence of a truncated write: the final line of a stream was not a
/// complete record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Truncated {
    /// 1-based line number of the partial line.
    pub line: usize,
    /// Length of the unparseable fragment, in bytes.
    pub bytes: usize,
}

/// What [`read_jsonl`] recovered from a stream.
#[derive(Debug)]
pub struct JsonlRead {
    /// Every complete record, grouped by tag in arrival order.
    pub dataset: Dataset,
    /// Present when the stream ended mid-record (a truncated write):
    /// `dataset` then holds the records up to the cut. Callers that
    /// require an intact stream must treat this as corruption.
    pub truncated: Option<Truncated>,
}

/// Re-assemble a [`Dataset`] from a JSONL stream produced by
/// [`DatasetWriter`]. Records are grouped by tag with their relative
/// order preserved, so for an intact stream
/// `read_jsonl(stream)?.dataset.to_json()` is byte-identical to the
/// `to_json()` of the dataset that was streamed. Blank lines are
/// ignored.
///
/// A final line that is not valid JSON is the signature of a write cut
/// mid-record: the records before it are returned with a [`Truncated`]
/// marker instead of failing the whole stream. Everything else —
/// malformed JSON mid-stream, an unknown tag, a record missing fields —
/// is an error naming the line and record kind.
// lint:jsonl-consume
pub fn read_jsonl(stream: &str) -> Result<JsonlRead, JsonError> {
    let last_data_line = stream
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, _)| i)
        .last();
    let mut ds = Dataset::default();
    let mut truncated = None;
    for (lineno, raw) in stream.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let n = lineno + 1;
        let obj = match Json::parse(line) {
            Ok(obj) => obj,
            Err(_) if Some(lineno) == last_data_line => {
                truncated = Some(Truncated {
                    line: n,
                    bytes: raw.len(),
                });
                break;
            }
            Err(e) => {
                return Err(JsonError {
                    msg: format!("line {n}: malformed record: {}", e.msg),
                    at: e.at,
                })
            }
        };
        let tag = obj.get("record").and_then(Json::as_str).ok_or(JsonError {
            msg: format!("line {n}: missing record tag"),
            at: 0,
        })?;
        let kinded = |e: JsonError| JsonError {
            msg: format!("line {n}: {tag} record: {}", e.msg),
            at: e.at,
        };
        let value = obj.get("value").ok_or_else(|| {
            kinded(JsonError {
                msg: "missing value".to_string(),
                at: 0,
            })
        })?;
        match tag {
            tags::ACCESS => ds
                .accesses
                .push(ParsedAccess::from_json_value(value).map_err(kinded)?),
            tags::ACCOUNT => ds
                .accounts
                .push(AccountRecord::from_json_value(value).map_err(kinded)?),
            tags::OPENED_TEXT => {
                ds.opened_texts
                    .push(value.as_str().map(String::from).ok_or_else(|| {
                        kinded(JsonError {
                            msg: "value must be a string".to_string(),
                            at: 0,
                        })
                    })?)
            }
            tags::GAP => ds
                .gaps
                .push(GapRecord::from_json_value(value).map_err(kinded)?),
            other => {
                return Err(JsonError {
                    msg: format!("line {n}: unknown record tag {other:?}"),
                    at: 0,
                })
            }
        }
    }
    Ok(JsonlRead {
        dataset: ds,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset {
            accesses: vec![ParsedAccess {
                account: 3,
                cookie: 7,
                first_seen_secs: 100,
                last_seen_secs: 250,
                ip: "10.1.2.3".into(),
                country: Some("BR".into()),
                city: "Rio de Janeiro".into(),
                lat: -22.9,
                lon: -43.2,
                browser: "Chrome".into(),
                os: "Windows".into(),
                via_tor: false,
                opened: 2,
                sent: 0,
                drafts: 1,
                starred: 0,
                hijacker: false,
                has_location_row: true,
            }],
            accounts: vec![AccountRecord {
                account: 3,
                outlet: "paste".into(),
                advertised_region: None,
                leaked_at_secs: 50,
                hijack_detected_secs: None,
                block_detected_secs: Some(900),
                coverage: None,
            }],
            opened_texts: vec!["payment due\nwire details".into()],
            gaps: vec![GapRecord {
                account: 3,
                kind: "scraper".into(),
                from_secs: 300,
                until_secs: 400,
            }],
        }
    }

    #[test]
    fn stream_round_trips_to_identical_json() {
        let ds = sample();
        let mut w = DatasetWriter::new(Vec::new());
        w.write_dataset(&ds).unwrap();
        assert_eq!(w.records_written(), 4);
        let bytes = w.finish().unwrap();
        let back = read_jsonl(std::str::from_utf8(&bytes).unwrap()).unwrap();
        assert!(back.truncated.is_none());
        assert_eq!(back.dataset.to_json(), ds.to_json());
    }

    #[test]
    fn one_record_per_line_compact() {
        let ds = sample();
        let mut w = DatasetWriter::new(Vec::new());
        w.write_dataset(&ds).unwrap();
        let text = String::from_utf8(w.finish().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"record\":\"access\""));
        assert!(lines[1].starts_with("{\"record\":\"account\""));
        assert!(lines[2].starts_with("{\"record\":\"opened_text\""));
        assert!(lines[3].starts_with("{\"record\":\"gap\""));
        // No pretty-printing: a record never spans lines.
        assert!(!text.contains("\n  "));
    }

    #[test]
    fn interleaved_records_regroup_by_tag() {
        let ds = sample();
        let mut w = DatasetWriter::new(Vec::new());
        // Deliberately out of to_json order.
        w.gap(&ds.gaps[0]).unwrap();
        w.account(&ds.accounts[0]).unwrap();
        w.opened_text(&ds.opened_texts[0]).unwrap();
        w.access(&ds.accesses[0]).unwrap();
        let bytes = w.finish().unwrap();
        let back = read_jsonl(std::str::from_utf8(&bytes).unwrap()).unwrap();
        assert_eq!(back.dataset.to_json(), ds.to_json());
    }

    #[test]
    fn blank_lines_ignored_unknown_tags_rejected() {
        assert!(read_jsonl("\n\n").unwrap().dataset.accesses.is_empty());
        let err = read_jsonl("{\"record\":\"bogus\",\"value\":1}\n").unwrap_err();
        assert!(err.msg.contains("unknown record tag"));
        assert!(read_jsonl("{\"value\":1}\n").is_err());
    }

    #[test]
    fn parse_errors_name_the_line_and_record_kind() {
        // A well-formed line followed by an access record missing its
        // fields: the error says which line and which kind.
        let good = {
            let mut w = DatasetWriter::new(Vec::new());
            w.opened_text("hello").unwrap();
            String::from_utf8(w.finish().unwrap()).unwrap()
        };
        let stream = format!("{good}{{\"record\":\"access\",\"value\":{{}}}}\n");
        let err = read_jsonl(&stream).unwrap_err();
        assert!(err.msg.starts_with("line 2: access record:"), "{}", err.msg);

        // Malformed JSON *mid-stream* is corruption, not truncation.
        let stream = format!("{{\"record\":\"access\",\"val\n{good}");
        let err = read_jsonl(&stream).unwrap_err();
        assert!(
            err.msg.starts_with("line 1: malformed record:"),
            "{}",
            err.msg
        );
    }

    #[test]
    fn trailing_partial_line_returns_records_so_far_with_marker() {
        let ds = sample();
        let mut w = DatasetWriter::new(Vec::new());
        w.write_dataset(&ds).unwrap();
        let full = String::from_utf8(w.finish().unwrap()).unwrap();
        // Cut the stream mid-way through the final record.
        let cut = full.len() - 20;
        let truncated = &full[..cut];
        let back = read_jsonl(truncated).unwrap();
        let marker = back.truncated.expect("cut mid-record must be flagged");
        assert_eq!(marker.line, 4);
        assert!(marker.bytes > 0);
        // Everything before the cut survived.
        assert_eq!(back.dataset.accesses.len(), 1);
        assert_eq!(back.dataset.accounts.len(), 1);
        assert_eq!(back.dataset.opened_texts.len(), 1);
        assert!(back.dataset.gaps.is_empty());
    }

    #[test]
    fn record_tag_classifies_lines_without_parsing() {
        let ds = sample();
        let mut w = DatasetWriter::new(Vec::new());
        w.write_dataset(&ds).unwrap();
        let text = String::from_utf8(w.finish().unwrap()).unwrap();
        let tags: Vec<_> = text.lines().filter_map(record_tag).collect();
        assert_eq!(tags, RECORD_TAGS.to_vec());
        assert_eq!(record_tag(""), None);
        assert_eq!(record_tag("{\"value\":1}"), None);
        assert_eq!(record_tag("{\"record\":\"acc"), None);
    }

    #[test]
    fn gapless_stream_reassembles_legacy_shape() {
        let mut ds = sample();
        ds.gaps.clear();
        ds.accounts[0].coverage = None;
        let mut w = DatasetWriter::new(Vec::new());
        w.write_dataset(&ds).unwrap();
        let bytes = w.finish().unwrap();
        let back = read_jsonl(std::str::from_utf8(&bytes).unwrap()).unwrap();
        let json = back.dataset.to_json();
        assert!(!json.contains("\"gaps\""));
        assert_eq!(json, ds.to_json());
    }
}
