#![warn(missing_docs)]
// The monitor/fault paths must degrade gracefully, never panic;
// test code may unwrap freely.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # pwnd-monitor — the researchers' monitoring infrastructure
//!
//! Faithful to §3.1 of the paper, monitoring has two halves:
//!
//! * **Honey-account instrumentation** ([`script`]): a Google-Apps-Script
//!   runtime hidden in a spreadsheet inside each account. It notifies a
//!   dedicated collector account whenever an email is opened, sent, or
//!   starred, forwards copies of every draft, and sends a daily heartbeat
//!   proving the account is alive. Scripts consume execution-time quota
//!   (two honey accounts received "using too much computer time" notices
//!   in the paper — we reproduce that), and a sufficiently thorough
//!   attacker can discover and delete them.
//! * **External scraping** ([`scraper`]): Apps Script cannot see login IPs
//!   or locations, so external scripts periodically log into each account
//!   from the monitoring infrastructure and dump the visitor-activity
//!   page to disk for offline parsing.
//!
//! [`dataset`] merges both streams into the parsed access-metadata
//! dataset the paper publishes, applying the same filters (drop accesses
//! from the infrastructure's IPs and city) and inheriting the same
//! censoring (hijacked accounts stop scraping; blocked accounts stop
//! everything). [`export`] streams the same records as JSON Lines so a
//! fleet-scale run never materializes the full export in memory.

pub mod collector;
pub mod dataset;
pub mod export;
pub mod parser;
pub mod scraper;
pub mod script;

pub use collector::{Notification, NotificationCollector, NotificationKind};
pub use dataset::{Dataset, DatasetBuilder, GapRecord, ParsedAccess};
pub use export::{DatasetWriter, JsonlRead, Truncated};
pub use scraper::{ScrapeOutcome, Scraper};
pub use script::{ScriptRuntime, ScriptState};
