//! The dedicated collector account that receives script notifications.
//!
//! Delivery from the in-account scripts is *at-least-once*: the fault
//! layer can lose a notification outright or redeliver it, so the
//! collector deduplicates on the `(account, seq)` delivery id every
//! script stamps on its messages. It also keeps a constant-time
//! last-heartbeat index per account, which both block detection and the
//! dead-window (coverage) analysis read.

use pwnd_corpus::email::EmailId;
use pwnd_faults::{FaultPlan, NotificationFate};
use pwnd_net::access::CookieId;
use pwnd_sim::{SimDuration, SimTime};
use pwnd_telemetry::TelemetrySink;
use pwnd_webmail::account::AccountId;
use std::collections::{BTreeMap, BTreeSet};

/// What a notification reports.
#[derive(Clone, Debug, PartialEq)]
pub enum NotificationKind {
    /// An email was opened; carries a snapshot of its text (the script
    /// reads the message it was notified about).
    Opened {
        /// The opened message.
        email: EmailId,
        /// Subject + body snapshot, the raw material of the TF-IDF study.
        text: String,
    },
    /// An email was starred.
    Starred {
        /// The starred message.
        email: EmailId,
    },
    /// An email was sent.
    Sent {
        /// The sent message.
        email: EmailId,
        /// Number of intended recipients.
        recipients: usize,
    },
    /// A draft was created; the script forwards a full copy.
    DraftCopy {
        /// The draft.
        email: EmailId,
        /// Subject + body snapshot.
        text: String,
    },
    /// Daily liveness heartbeat.
    Heartbeat,
}

/// One notification email received by the collector.
#[derive(Clone, Debug, PartialEq)]
pub struct Notification {
    /// Which honey account emitted it.
    pub account: AccountId,
    /// When the triggering activity happened.
    pub at: SimTime,
    /// Per-script delivery sequence number. Redeliveries reuse it, which
    /// is how the collector recognizes duplicates.
    pub seq: u64,
    /// Access cookie of the actor, when the event has one (heartbeats
    /// don't).
    pub cookie: Option<CookieId>,
    /// Payload.
    pub kind: NotificationKind,
}

/// The collector mailbox: an append-only notification store with the
/// query methods the dataset builder and analyses need.
#[derive(Clone, Debug, Default)]
pub struct NotificationCollector {
    notifications: Vec<Notification>,
    /// Delivery ids already stored, for at-least-once dedup. Ordered
    /// container so any future iteration is deterministic by
    /// construction (the determinism linter's hash-order rule).
    seen: BTreeSet<(u32, u64)>,
    /// Per-account last-heartbeat index, maintained on receive (the
    /// dataset builder queries it once per account; the old
    /// implementation re-scanned the whole notification vector per
    /// call). Ordered for the same reason as `seen`.
    last_heartbeat: BTreeMap<AccountId, SimTime>,
    fault_plan: FaultPlan,
    duplicates: u64,
    lost: u64,
    telemetry: TelemetrySink,
}

impl NotificationCollector {
    /// An empty collector.
    pub fn new() -> NotificationCollector {
        NotificationCollector::default()
    }

    /// Attach a telemetry sink (`monitor.notifications{kind}`,
    /// `monitor.duplicate_notifications`, `faults.injected{...}`).
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    /// Attach the run's fault plan. In-transit loss and redelivery are
    /// decided per notification as it arrives; the default plan delivers
    /// everything exactly once.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// Receive one notification, applying in-transit faults: the message
    /// may be lost, delivered once, or delivered twice (at-least-once).
    /// Duplicates are detected by delivery id and dropped.
    pub fn receive(&mut self, n: Notification) {
        match self.fault_plan.notification_fate(n.account.0, n.seq) {
            NotificationFate::Deliver => self.deliver(n),
            NotificationFate::Lose => {
                self.lost += 1;
                self.telemetry
                    .count_labeled("faults.injected", "notification_loss");
            }
            NotificationFate::DeliverTwice => {
                self.telemetry
                    .count_labeled("faults.injected", "notification_dup");
                self.deliver(n.clone());
                self.deliver(n);
            }
        }
    }

    fn deliver(&mut self, n: Notification) {
        if !self.seen.insert((n.account.0, n.seq)) {
            self.duplicates += 1;
            self.telemetry.count("monitor.duplicate_notifications");
            return;
        }
        let kind = match n.kind {
            NotificationKind::Opened { .. } => "opened",
            NotificationKind::Starred { .. } => "starred",
            NotificationKind::Sent { .. } => "sent",
            NotificationKind::DraftCopy { .. } => "draft_copy",
            NotificationKind::Heartbeat => "heartbeat",
        };
        self.telemetry.count_labeled("monitor.notifications", kind);
        if matches!(n.kind, NotificationKind::Heartbeat) {
            let hb = self.last_heartbeat.entry(n.account).or_insert(n.at);
            if n.at > *hb {
                *hb = n.at;
            }
        }
        self.notifications.push(n);
    }

    /// All notifications, in arrival order.
    pub fn all(&self) -> &[Notification] {
        &self.notifications
    }

    /// Notifications for one account.
    pub fn for_account(&self, account: AccountId) -> impl Iterator<Item = &Notification> {
        self.notifications
            .iter()
            .filter(move |n| n.account == account)
    }

    /// The last heartbeat seen from an account, if any. O(1): served
    /// from the index maintained on receive.
    pub fn last_heartbeat(&self, account: AccountId) -> Option<SimTime> {
        self.last_heartbeat.get(&account).copied()
    }

    /// Internal heartbeat dead windows for one account: spans between
    /// two *received* consecutive heartbeats further apart than
    /// `min_gap`. A dead window means monitoring was blind while the
    /// account was demonstrably still alive (a later heartbeat arrived),
    /// so it is a known coverage gap, not censoring. The trailing
    /// silence before the horizon is deliberately excluded — that is the
    /// block-detection signal, handled separately.
    pub fn heartbeat_gaps(
        &self,
        account: AccountId,
        min_gap: SimDuration,
    ) -> Vec<(SimTime, SimTime)> {
        let mut beats: Vec<SimTime> = self
            .for_account(account)
            .filter(|n| matches!(n.kind, NotificationKind::Heartbeat))
            .map(|n| n.at)
            .collect();
        beats.sort_unstable();
        beats
            .iter()
            .zip(beats.iter().skip(1))
            .filter(|(a, b)| b.since(**a) > min_gap)
            .map(|(a, b)| (*a, *b))
            .collect()
    }

    /// Notifications lost in transit (infrastructure-side count, used by
    /// ground truth and the chaos report — analyses never read it).
    pub fn lost_in_transit(&self) -> u64 {
        self.lost
    }

    /// Redelivered notifications caught by dedup.
    pub fn duplicates_detected(&self) -> u64 {
        self.duplicates
    }

    /// Text snapshots of every opened email (document `d_R` of §4.3.5).
    pub fn opened_texts(&self) -> Vec<&str> {
        self.notifications
            .iter()
            .filter_map(|n| match &n.kind {
                NotificationKind::Opened { text, .. } => Some(text.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Count of non-heartbeat notifications (activity volume).
    pub fn activity_count(&self) -> usize {
        self.notifications
            .iter()
            .filter(|n| !matches!(n.kind, NotificationKind::Heartbeat))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_faults::FaultProfile;

    fn note(acct: u32, at: u64, seq: u64, kind: NotificationKind) -> Notification {
        Notification {
            account: AccountId(acct),
            at: SimTime::from_secs(at),
            seq,
            cookie: Some(CookieId(1)),
            kind,
        }
    }

    #[test]
    fn collects_and_filters_by_account() {
        let mut c = NotificationCollector::new();
        c.receive(note(1, 10, 0, NotificationKind::Heartbeat));
        c.receive(note(
            2,
            20,
            1,
            NotificationKind::Starred { email: EmailId(5) },
        ));
        c.receive(note(1, 30, 2, NotificationKind::Heartbeat));
        assert_eq!(c.all().len(), 3);
        assert_eq!(c.for_account(AccountId(1)).count(), 2);
        assert_eq!(c.last_heartbeat(AccountId(1)), Some(SimTime::from_secs(30)));
        assert_eq!(c.last_heartbeat(AccountId(3)), None);
        assert_eq!(c.activity_count(), 1);
    }

    #[test]
    fn opened_texts_collects_snapshots() {
        let mut c = NotificationCollector::new();
        c.receive(note(
            1,
            10,
            0,
            NotificationKind::Opened {
                email: EmailId(1),
                text: "payment details".into(),
            },
        ));
        c.receive(note(
            1,
            20,
            1,
            NotificationKind::DraftCopy {
                email: EmailId(2),
                text: "bitcoin ransom".into(),
            },
        ));
        assert_eq!(c.opened_texts(), vec!["payment details"]);
    }

    #[test]
    fn duplicate_deliveries_are_dropped() {
        let mut c = NotificationCollector::new();
        c.receive(note(1, 10, 7, NotificationKind::Heartbeat));
        c.receive(note(1, 10, 7, NotificationKind::Heartbeat));
        assert_eq!(c.all().len(), 1);
        assert_eq!(c.duplicates_detected(), 1);
        // Same seq on a different account is not a duplicate.
        c.receive(note(2, 10, 7, NotificationKind::Heartbeat));
        assert_eq!(c.all().len(), 2);
    }

    #[test]
    fn lossy_plan_drops_some_and_dedup_absorbs_redelivery() {
        let profile = FaultProfile {
            notification_loss_rate: 0.3,
            notification_dup_rate: 0.3,
            ..FaultProfile::none()
        };
        let mut c = NotificationCollector::new();
        c.set_fault_plan(FaultPlan::compile(5, &profile, SimDuration::days(30)));
        for s in 0..200 {
            c.receive(note(1, 10 + s, s, NotificationKind::Heartbeat));
        }
        let stored = c.all().len() as u64;
        assert!(c.lost_in_transit() > 0);
        assert!(c.duplicates_detected() > 0);
        // Every non-lost notification is stored exactly once.
        assert_eq!(stored, 200 - c.lost_in_transit());
    }

    #[test]
    fn heartbeat_gaps_report_internal_silence_only() {
        let mut c = NotificationCollector::new();
        let day = 86_400u64;
        // Beats on days 0, 1, 5, 6 — a 4-day internal hole.
        for (s, d) in [0u64, 1, 5, 6].iter().enumerate() {
            c.receive(note(1, d * day, s as u64, NotificationKind::Heartbeat));
        }
        let gaps = c.heartbeat_gaps(AccountId(1), SimDuration::days(2));
        assert_eq!(gaps.len(), 1);
        assert_eq!(gaps[0].0, SimTime::from_secs(day));
        assert_eq!(gaps[0].1, SimTime::from_secs(5 * day));
        // No beats at all: no internal gaps (the tail is block detection's
        // problem).
        assert!(c
            .heartbeat_gaps(AccountId(9), SimDuration::days(2))
            .is_empty());
    }
}
