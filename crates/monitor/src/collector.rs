//! The dedicated collector account that receives script notifications.

use pwnd_corpus::email::EmailId;
use pwnd_net::access::CookieId;
use pwnd_sim::SimTime;
use pwnd_telemetry::TelemetrySink;
use pwnd_webmail::account::AccountId;

/// What a notification reports.
#[derive(Clone, Debug, PartialEq)]
pub enum NotificationKind {
    /// An email was opened; carries a snapshot of its text (the script
    /// reads the message it was notified about).
    Opened {
        /// The opened message.
        email: EmailId,
        /// Subject + body snapshot, the raw material of the TF-IDF study.
        text: String,
    },
    /// An email was starred.
    Starred {
        /// The starred message.
        email: EmailId,
    },
    /// An email was sent.
    Sent {
        /// The sent message.
        email: EmailId,
        /// Number of intended recipients.
        recipients: usize,
    },
    /// A draft was created; the script forwards a full copy.
    DraftCopy {
        /// The draft.
        email: EmailId,
        /// Subject + body snapshot.
        text: String,
    },
    /// Daily liveness heartbeat.
    Heartbeat,
}

/// One notification email received by the collector.
#[derive(Clone, Debug, PartialEq)]
pub struct Notification {
    /// Which honey account emitted it.
    pub account: AccountId,
    /// When the triggering activity happened.
    pub at: SimTime,
    /// Access cookie of the actor, when the event has one (heartbeats
    /// don't).
    pub cookie: Option<CookieId>,
    /// Payload.
    pub kind: NotificationKind,
}

/// The collector mailbox: an append-only notification store with the
/// query methods the dataset builder and analyses need.
#[derive(Clone, Debug, Default)]
pub struct NotificationCollector {
    notifications: Vec<Notification>,
    telemetry: TelemetrySink,
}

impl NotificationCollector {
    /// An empty collector.
    pub fn new() -> NotificationCollector {
        NotificationCollector::default()
    }

    /// Attach a telemetry sink (`monitor.notifications{kind}`).
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    /// Receive one notification.
    pub fn receive(&mut self, n: Notification) {
        let kind = match n.kind {
            NotificationKind::Opened { .. } => "opened",
            NotificationKind::Starred { .. } => "starred",
            NotificationKind::Sent { .. } => "sent",
            NotificationKind::DraftCopy { .. } => "draft_copy",
            NotificationKind::Heartbeat => "heartbeat",
        };
        self.telemetry.count_labeled("monitor.notifications", kind);
        self.notifications.push(n);
    }

    /// All notifications, in arrival order.
    pub fn all(&self) -> &[Notification] {
        &self.notifications
    }

    /// Notifications for one account.
    pub fn for_account(&self, account: AccountId) -> impl Iterator<Item = &Notification> {
        self.notifications
            .iter()
            .filter(move |n| n.account == account)
    }

    /// The last heartbeat seen from an account, if any.
    pub fn last_heartbeat(&self, account: AccountId) -> Option<SimTime> {
        self.for_account(account)
            .filter(|n| matches!(n.kind, NotificationKind::Heartbeat))
            .map(|n| n.at)
            .max()
    }

    /// Text snapshots of every opened email (document `d_R` of §4.3.5).
    pub fn opened_texts(&self) -> Vec<&str> {
        self.notifications
            .iter()
            .filter_map(|n| match &n.kind {
                NotificationKind::Opened { text, .. } => Some(text.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Count of non-heartbeat notifications (activity volume).
    pub fn activity_count(&self) -> usize {
        self.notifications
            .iter()
            .filter(|n| !matches!(n.kind, NotificationKind::Heartbeat))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn note(acct: u32, at: u64, kind: NotificationKind) -> Notification {
        Notification {
            account: AccountId(acct),
            at: SimTime::from_secs(at),
            cookie: Some(CookieId(1)),
            kind,
        }
    }

    #[test]
    fn collects_and_filters_by_account() {
        let mut c = NotificationCollector::new();
        c.receive(note(1, 10, NotificationKind::Heartbeat));
        c.receive(note(2, 20, NotificationKind::Starred { email: EmailId(5) }));
        c.receive(note(1, 30, NotificationKind::Heartbeat));
        assert_eq!(c.all().len(), 3);
        assert_eq!(c.for_account(AccountId(1)).count(), 2);
        assert_eq!(c.last_heartbeat(AccountId(1)), Some(SimTime::from_secs(30)));
        assert_eq!(c.last_heartbeat(AccountId(3)), None);
        assert_eq!(c.activity_count(), 1);
    }

    #[test]
    fn opened_texts_collects_snapshots() {
        let mut c = NotificationCollector::new();
        c.receive(note(
            1,
            10,
            NotificationKind::Opened {
                email: EmailId(1),
                text: "payment details".into(),
            },
        ));
        c.receive(note(
            1,
            20,
            NotificationKind::DraftCopy {
                email: EmailId(2),
                text: "bitcoin ransom".into(),
            },
        ));
        assert_eq!(c.opened_texts(), vec!["payment details"]);
    }
}
