//! The external activity-page scraper.
//!
//! Apps Script cannot see login IPs or geolocation, so the paper drove a
//! browser from the monitoring infrastructure, logged into each honey
//! account on a schedule, navigated to the visitor-activity page, and
//! dumped it to disk for offline parsing. The scraper is also how the
//! researchers *detect* hijacks (its login starts failing) and blocks
//! (the provider refuses the login with a suspension error).

use pwnd_net::access::{ConnectionInfo, CookieId};
use pwnd_net::geolocate::INFRA_CITY;
use pwnd_net::ip::AddressPlan;
use pwnd_net::useragent::{Browser, ClientConfig, Os};
use pwnd_sim::{Rng, SimTime};
use pwnd_telemetry::TelemetrySink;
use pwnd_webmail::account::AccountId;
use pwnd_webmail::activity::ActivityRow;
use pwnd_webmail::service::{LoginError, WebmailService};
use std::collections::HashMap;

/// Result of one scrape attempt.
#[derive(Clone, Debug)]
pub enum ScrapeOutcome {
    /// Page dumped successfully.
    Ok(Vec<ActivityRow>),
    /// Login failed with the researcher password — the account has been
    /// hijacked (password changed by an attacker).
    HijackDetected,
    /// The provider suspended the account.
    BlockedDetected,
}

/// One raw page dump, as written to disk for offline parsing.
#[derive(Clone, Debug)]
pub struct ActivityDump {
    /// Which account was scraped.
    pub account: AccountId,
    /// When the scrape ran.
    pub at: SimTime,
    /// The rows visible at scrape time.
    pub rows: Vec<ActivityRow>,
}

/// The scraping driver.
pub struct Scraper {
    /// address + password per account, as the researchers recorded them.
    credentials: HashMap<AccountId, (String, String)>,
    /// One stable browser cookie per account (the scraper is a device too,
    /// and its accesses must be filterable from the dataset).
    cookies: HashMap<AccountId, CookieId>,
    dumps: Vec<ActivityDump>,
    /// Fingerprint of each account's last-dumped page, so identical
    /// consecutive scrapes are not stored twice (offline parsing would
    /// discard them anyway; a 7-month run scrapes tens of thousands of
    /// unchanged pages).
    last_page: HashMap<AccountId, Vec<(u64, u64)>>,
    hijack_detected: HashMap<AccountId, SimTime>,
    block_detected: HashMap<AccountId, SimTime>,
    rng: Rng,
    telemetry: TelemetrySink,
}

impl Scraper {
    /// A scraper with its own RNG stream (for infra IP jitter).
    pub fn new(rng: Rng) -> Scraper {
        Scraper {
            credentials: HashMap::new(),
            cookies: HashMap::new(),
            dumps: Vec::new(),
            last_page: HashMap::new(),
            hijack_detected: HashMap::new(),
            block_detected: HashMap::new(),
            rng,
            telemetry: TelemetrySink::disabled(),
        }
    }

    /// Attach a telemetry sink (`monitor.scrapes`, `monitor.scrape_dumps`,
    /// detection counters, and one `scrape` trace per sweep).
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    /// Register an account's researcher-held credentials.
    pub fn register(&mut self, account: AccountId, address: &str, password: &str) {
        self.credentials
            .insert(account, (address.to_string(), password.to_string()));
    }

    /// All registered accounts, in id order.
    pub fn accounts(&self) -> Vec<AccountId> {
        let mut v: Vec<AccountId> = self.credentials.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Scrape one account now.
    pub fn scrape(
        &mut self,
        service: &mut WebmailService,
        account: AccountId,
        at: SimTime,
    ) -> ScrapeOutcome {
        let (address, password) = self.credentials[&account].clone();
        let ip = AddressPlan::sample_infra(&mut self.rng);
        let infra_point = service
            .geolocator()
            .geo()
            .by_name(INFRA_CITY)
            .expect("infra city")
            .point;
        let mut conn = ConnectionInfo::new(
            ip,
            ClientConfig::plain(Browser::Chrome, Os::Linux),
            infra_point,
        );
        if let Some(&cookie) = self.cookies.get(&account) {
            conn = conn.with_cookie(cookie);
        }
        self.telemetry.count("monitor.scrapes");
        match service.login(&address, &password, &conn, at) {
            Ok((session, cookie)) => {
                self.cookies.insert(account, cookie);
                let rows = service
                    .read_activity_page(session)
                    .expect("fresh session reads its own page");
                // The scraper's own login mutates the page; fingerprint
                // only foreign rows so quiet accounts dedupe.
                let fingerprint: Vec<(u64, u64)> = rows
                    .iter()
                    .filter(|r| r.cookie != cookie)
                    .map(|r| (r.cookie.0, r.at.as_secs()))
                    .collect();
                if self.last_page.get(&account) != Some(&fingerprint) {
                    self.last_page.insert(account, fingerprint);
                    self.dumps.push(ActivityDump {
                        account,
                        at,
                        rows: rows.clone(),
                    });
                    self.telemetry.count("monitor.scrape_dumps");
                }
                ScrapeOutcome::Ok(rows)
            }
            Err(LoginError::BadCredentials) => {
                if !self.hijack_detected.contains_key(&account) {
                    self.telemetry.count("monitor.hijack_detections");
                }
                self.hijack_detected.entry(account).or_insert(at);
                ScrapeOutcome::HijackDetected
            }
            Err(LoginError::AccountBlocked) => {
                if !self.block_detected.contains_key(&account) {
                    self.telemetry.count("monitor.block_detections");
                }
                self.block_detected.entry(account).or_insert(at);
                ScrapeOutcome::BlockedDetected
            }
            Err(LoginError::SuspiciousLogin) => {
                // Infra logins are habitual; this only happens in the
                // filter-enabled ablation. Treat like a block for data
                // purposes: the scraper can no longer observe the page.
                if !self.block_detected.contains_key(&account) {
                    self.telemetry.count("monitor.block_detections");
                }
                self.block_detected.entry(account).or_insert(at);
                ScrapeOutcome::BlockedDetected
            }
        }
    }

    /// Scrape every registered account.
    pub fn scrape_all(&mut self, service: &mut WebmailService, at: SimTime) {
        let mut attempted = 0u64;
        for account in self.accounts() {
            // Once hijacked or blocked there is nothing more to scrape.
            if self.hijack_detected.contains_key(&account)
                || self.block_detected.contains_key(&account)
            {
                continue;
            }
            let _ = self.scrape(service, account, at);
            attempted += 1;
        }
        // One trace record per sweep, not per account: a 7-month run
        // scrapes 100 accounts every few hours.
        self.telemetry.trace_with(at.as_secs(), "scrape", None, || {
            format!("accounts={attempted}")
        });
    }

    /// All raw dumps (what "offline parsing" consumes).
    pub fn dumps(&self) -> &[ActivityDump] {
        &self.dumps
    }

    /// Render every dump to the on-disk text format (§3.1: "dump the
    /// pages to disk, for offline parsing").
    pub fn export_dumps(&self) -> Vec<String> {
        self.dumps
            .iter()
            .map(|d| crate::parser::render_page(d.account.0, d.at, &d.rows))
            .collect()
    }

    /// When the scraper first noticed a hijack on each account.
    pub fn hijacks_detected(&self) -> &HashMap<AccountId, SimTime> {
        &self.hijack_detected
    }

    /// When the scraper first noticed a block on each account.
    pub fn blocks_detected(&self) -> &HashMap<AccountId, SimTime> {
        &self.block_detected
    }

    /// The scraper's own cookies (the dataset filter needs them).
    pub fn own_cookies(&self) -> Vec<CookieId> {
        let mut v: Vec<CookieId> = self.cookies.values().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_corpus::email::{Email, EmailId, MailTime};
    use pwnd_net::geo::GeoDb;
    use pwnd_net::geolocate::Geolocator;
    use pwnd_net::tor::TorDirectory;
    use pwnd_sim::SimDuration;
    use pwnd_webmail::service::ServiceConfig;

    fn world() -> (WebmailService, Scraper, AccountId) {
        let geo = GeoDb::new();
        let plan = AddressPlan::new(&geo);
        let mut rng = Rng::seed_from(3);
        let tor = TorDirectory::generate(50, &mut rng);
        let mut svc =
            WebmailService::new(ServiceConfig::default(), Geolocator::new(plan, geo, tor));
        let id = svc
            .create_account(
                "h@honeymail.example",
                "pw",
                std::net::Ipv4Addr::new(198, 51, 0, 1),
                SimTime::ZERO,
            )
            .unwrap();
        svc.seed_mailbox(
            id,
            vec![Email {
                id: EmailId(1),
                from: "p@x".into(),
                to: vec!["h@honeymail.example".into()],
                subject: "s".into(),
                body: "b".into(),
                timestamp: MailTime(-5),
            }],
        );
        let mut scraper = Scraper::new(rng.fork(9));
        scraper.register(id, "h@honeymail.example", "pw");
        (svc, scraper, id)
    }

    #[test]
    fn scrape_sees_attacker_access() {
        let (mut svc, mut scraper, id) = world();
        // Attacker logs in from Brazil.
        let ip = svc
            .geolocator()
            .plan()
            .sample_host("BR", &mut Rng::seed_from(1));
        let loc = svc.geolocator().locate(ip);
        let conn = ConnectionInfo::new(
            ip,
            ClientConfig::plain(Browser::Chrome, Os::Windows),
            loc.point,
        );
        svc.login("h@honeymail.example", "pw", &conn, SimTime::from_secs(100))
            .unwrap();

        match scraper.scrape(&mut svc, id, SimTime::from_secs(200)) {
            ScrapeOutcome::Ok(rows) => {
                assert!(rows.iter().any(|r| r.location.country == Some("BR")));
            }
            other => panic!("expected Ok, got {other:?}"),
        }
        assert_eq!(scraper.dumps().len(), 1);
    }

    #[test]
    fn scraper_uses_stable_cookie() {
        let (mut svc, mut scraper, id) = world();
        scraper.scrape(&mut svc, id, SimTime::from_secs(10));
        scraper.scrape(&mut svc, id, SimTime::from_secs(20));
        assert_eq!(scraper.own_cookies().len(), 1);
    }

    #[test]
    fn hijack_is_detected_and_scraping_stops() {
        let (mut svc, mut scraper, id) = world();
        // Attacker hijacks.
        let ip = svc
            .geolocator()
            .plan()
            .sample_host("RO", &mut Rng::seed_from(2));
        let loc = svc.geolocator().locate(ip);
        let conn = ConnectionInfo::new(
            ip,
            ClientConfig::plain(Browser::Opera, Os::Windows),
            loc.point,
        );
        let (session, _) = svc
            .login("h@honeymail.example", "pw", &conn, SimTime::from_secs(50))
            .unwrap();
        svc.change_password(session, "stolen", SimTime::from_secs(60))
            .unwrap();

        match scraper.scrape(&mut svc, id, SimTime::from_secs(100)) {
            ScrapeOutcome::HijackDetected => {}
            other => panic!("expected hijack, got {other:?}"),
        }
        assert_eq!(
            scraper.hijacks_detected().get(&id),
            Some(&SimTime::from_secs(100))
        );
        // scrape_all skips it afterwards.
        let dumps_before = scraper.dumps().len();
        scraper.scrape_all(&mut svc, SimTime::from_secs(200));
        assert_eq!(scraper.dumps().len(), dumps_before);
    }

    #[test]
    fn block_is_detected() {
        let (mut svc, mut scraper, id) = world();
        svc.admin_block(id, SimTime::from_secs(10));
        match scraper.scrape(&mut svc, id, SimTime::from_secs(20)) {
            ScrapeOutcome::BlockedDetected => {}
            other => panic!("expected blocked, got {other:?}"),
        }
        assert!(scraper.blocks_detected().contains_key(&id));
    }

    #[test]
    fn exported_dumps_reparse_to_the_same_rows() {
        let (mut svc, mut scraper, id) = world();
        let ip = svc
            .geolocator()
            .plan()
            .sample_host("DE", &mut Rng::seed_from(9));
        let loc = svc.geolocator().locate(ip);
        let conn = ConnectionInfo::new(
            ip,
            ClientConfig::plain(Browser::Firefox, Os::Linux),
            loc.point,
        );
        svc.login("h@honeymail.example", "pw", &conn, SimTime::from_secs(50))
            .unwrap();
        scraper.scrape(&mut svc, id, SimTime::from_secs(100));
        let texts = scraper.export_dumps();
        assert_eq!(texts.len(), scraper.dumps().len());
        for (text, dump) in texts.iter().zip(scraper.dumps()) {
            let parsed = crate::parser::parse_page(text).expect("dump parses");
            assert_eq!(parsed.account, dump.account.0);
            assert_eq!(parsed.scraped_at, dump.at);
            assert_eq!(parsed.rows.len(), dump.rows.len());
            for (a, b) in parsed.rows.iter().zip(&dump.rows) {
                assert_eq!(a.cookie, b.cookie);
                assert_eq!(a.ip, b.ip);
                assert_eq!(a.location.city, b.location.city);
                assert_eq!(a.fingerprint, b.fingerprint);
            }
        }
    }

    #[test]
    fn scrape_all_covers_registered_accounts() {
        let (mut svc, mut scraper, _) = world();
        scraper.scrape_all(&mut svc, SimTime::ZERO + SimDuration::hours(1));
        assert_eq!(scraper.dumps().len(), 1);
    }
}
