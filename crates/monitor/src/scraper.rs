//! The external activity-page scraper.
//!
//! Apps Script cannot see login IPs or geolocation, so the paper drove a
//! browser from the monitoring infrastructure, logged into each honey
//! account on a schedule, navigated to the visitor-activity page, and
//! dumped it to disk for offline parsing. The scraper is also how the
//! researchers *detect* hijacks (its login starts failing) and blocks
//! (the provider refuses the login with a suspension error).
//!
//! Real scraping infrastructure fails: the driver times out, the
//! provider is in maintenance, the whole scraper host goes down for
//! hours. The scraper therefore retries transient failures with
//! exponential backoff (in simulated time), refuses to classify an
//! account as hijacked or blocked until the same hard failure repeats
//! `confirm_failures` times in consecutive sweeps, and records every
//! known blind window as a gap for the coverage analysis.

use pwnd_faults::{FaultPlan, RetryPolicy};
use pwnd_net::access::{ConnectionInfo, CookieId};
use pwnd_net::geolocate::INFRA_CITY;
use pwnd_net::ip::AddressPlan;
use pwnd_net::useragent::{Browser, ClientConfig, Os};
use pwnd_sim::{Rng, SimTime};
use pwnd_telemetry::TelemetrySink;
use pwnd_webmail::account::AccountId;
use pwnd_webmail::activity::ActivityRow;
use pwnd_webmail::service::{LoginError, WebmailService};
use std::collections::HashMap;

/// Result of one scrape attempt.
#[derive(Clone, Debug)]
pub enum ScrapeOutcome {
    /// Page dumped successfully.
    Ok(Vec<ActivityRow>),
    /// Login failed with the researcher password — the account has been
    /// hijacked (password changed by an attacker).
    HijackDetected,
    /// The provider suspended the account.
    BlockedDetected,
    /// A hard login failure was observed but has not yet repeated
    /// `confirm_failures` times, so no classification is made.
    FailurePending,
    /// Every attempt failed transiently (driver flake or provider
    /// maintenance); the sweep learned nothing about this account.
    GaveUp,
}

/// The two hard-failure classes the scraper confirms before declaring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum HardFailure {
    Hijack,
    Blocked,
}

/// One raw page dump, as written to disk for offline parsing.
#[derive(Clone, Debug)]
pub struct ActivityDump {
    /// Which account was scraped.
    pub account: AccountId,
    /// When the scrape ran.
    pub at: SimTime,
    /// The rows visible at scrape time.
    pub rows: Vec<ActivityRow>,
}

/// The scraping driver.
pub struct Scraper {
    /// address + password per account, as the researchers recorded them.
    credentials: HashMap<AccountId, (String, String)>,
    /// One stable browser cookie per account (the scraper is a device too,
    /// and its accesses must be filterable from the dataset).
    cookies: HashMap<AccountId, CookieId>,
    dumps: Vec<ActivityDump>,
    /// Fingerprint of each account's last-dumped page, so identical
    /// consecutive scrapes are not stored twice (offline parsing would
    /// discard them anyway; a 7-month run scrapes tens of thousands of
    /// unchanged pages).
    last_page: HashMap<AccountId, Vec<(u64, u64)>>,
    hijack_detected: HashMap<AccountId, SimTime>,
    block_detected: HashMap<AccountId, SimTime>,
    /// Consecutive hard failures of the same class, per account, awaiting
    /// confirmation. Reset by any successful scrape; transient give-ups
    /// leave it untouched (they carry no information either way).
    pending_failures: HashMap<AccountId, (HardFailure, u32)>,
    /// Consecutive same-class hard failures required before classifying.
    /// 1 (the default) reproduces the historical trust-the-first-error
    /// behavior; raising it makes a transient provider error no longer
    /// able to mislabel an account as hijacked.
    confirm_failures: u32,
    /// Open blind windows: account -> when the scraper last stopped
    /// seeing its page.
    gap_open: HashMap<AccountId, SimTime>,
    /// Closed blind windows, in close order.
    gaps: Vec<(AccountId, SimTime, SimTime)>,
    fault_plan: FaultPlan,
    retry: RetryPolicy,
    rng: Rng,
    telemetry: TelemetrySink,
}

impl Scraper {
    /// A scraper with its own RNG stream (for infra IP jitter).
    pub fn new(rng: Rng) -> Scraper {
        Scraper {
            credentials: HashMap::new(),
            cookies: HashMap::new(),
            dumps: Vec::new(),
            last_page: HashMap::new(),
            hijack_detected: HashMap::new(),
            block_detected: HashMap::new(),
            pending_failures: HashMap::new(),
            confirm_failures: 1,
            gap_open: HashMap::new(),
            gaps: Vec::new(),
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::default(),
            rng,
            telemetry: TelemetrySink::disabled(),
        }
    }

    /// Attach a telemetry sink (`monitor.scrapes`, `monitor.scrape_dumps`,
    /// detection counters, retry histograms, and one `scrape` trace per
    /// sweep).
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    /// Attach the run's fault plan (outage windows, login flakes, and the
    /// deterministic jitter rolls the backoff uses).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// Replace the transient-failure retry policy.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Require `n` consecutive same-class hard failures before declaring a
    /// hijack or block (clamped to at least 1).
    pub fn set_confirm_failures(&mut self, n: u32) {
        self.confirm_failures = n.max(1);
    }

    /// Register an account's researcher-held credentials.
    pub fn register(&mut self, account: AccountId, address: &str, password: &str) {
        self.credentials
            .insert(account, (address.to_string(), password.to_string()));
    }

    /// All registered accounts, in id order.
    pub fn accounts(&self) -> Vec<AccountId> {
        let mut v: Vec<AccountId> = self.credentials.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Scrape one account now, retrying transient failures with backoff.
    /// Retries advance simulated time, so a scrape that flakes twice dumps
    /// a page stamped a few minutes after `at`.
    pub fn scrape(
        &mut self,
        service: &mut WebmailService,
        account: AccountId,
        at: SimTime,
    ) -> ScrapeOutcome {
        let Some((address, password)) = self.credentials.get(&account).cloned() else {
            // An unregistered account is a driver bug, but the monitor
            // must keep sweeping the rest of the fleet rather than die.
            self.telemetry
                .count_labeled("monitor.scrapes", "unknown_account");
            return ScrapeOutcome::GaveUp;
        };
        self.telemetry.count("monitor.scrapes");
        let mut t = at;
        let mut attempt = 0u32;
        loop {
            // First attempts ride the sweep-level "poll" span; every
            // fault-driven repeat gets its own "retry" attribution span
            // (covering the backoff arithmetic at the bottom too).
            let _retry = (attempt > 0).then(|| self.telemetry.subspan("retry", &[]));
            // A scraper-side flake (driver timeout, dropped connection)
            // means the login never reached the provider.
            let transient = if self.fault_plan.login_flakes(account.0, t, attempt) {
                self.telemetry
                    .count_labeled("faults.injected", "scraper_flake");
                true
            } else {
                match self.try_login(service, account, &address, &password, t) {
                    Ok(rows) => {
                        if attempt > 0 {
                            self.telemetry.observe("scraper.retries", attempt as u64);
                        }
                        self.pending_failures.remove(&account);
                        self.close_gap(account, t);
                        return ScrapeOutcome::Ok(rows);
                    }
                    Err(LoginError::Maintenance) => true,
                    Err(LoginError::BadCredentials) => {
                        if attempt > 0 {
                            self.telemetry.observe("scraper.retries", attempt as u64);
                        }
                        let _classify = self.telemetry.subspan("classify", &[]);
                        return self.note_hard_failure(account, HardFailure::Hijack, t);
                    }
                    Err(LoginError::AccountBlocked) | Err(LoginError::SuspiciousLogin) => {
                        // Infra logins are habitual; SuspiciousLogin only
                        // happens in the filter-enabled ablation. Treat
                        // like a block for data purposes: the scraper can
                        // no longer observe the page.
                        if attempt > 0 {
                            self.telemetry.observe("scraper.retries", attempt as u64);
                        }
                        let _classify = self.telemetry.subspan("classify", &[]);
                        return self.note_hard_failure(account, HardFailure::Blocked, t);
                    }
                }
            };
            debug_assert!(transient);
            if attempt + 1 >= self.retry.max_attempts {
                // Out of attempts: the sweep learned nothing. The blind
                // window stays open until a later sweep sees the page.
                self.telemetry.observe("scraper.retries", attempt as u64);
                self.telemetry.count_labeled("monitor.scrapes", "gave_up");
                self.open_gap(account, at);
                return ScrapeOutcome::GaveUp;
            }
            let roll = self.fault_plan.jitter_roll(account.0, t, attempt);
            t += self.retry.delay(attempt, roll);
            attempt += 1;
        }
    }

    /// One actual login + page read.
    fn try_login(
        &mut self,
        service: &mut WebmailService,
        account: AccountId,
        address: &str,
        password: &str,
        at: SimTime,
    ) -> Result<Vec<ActivityRow>, LoginError> {
        let ip = AddressPlan::sample_infra(&mut self.rng);
        // The geo db ships INFRA_CITY, but a scrape must not panic if a
        // trimmed db drops it: the UK midpoint keeps the login close
        // enough that distance-based suspicion filters behave the same.
        let infra_point = service
            .geolocator()
            .geo()
            .by_name(INFRA_CITY)
            .map(|c| c.point)
            .unwrap_or(pwnd_net::geo::UK_MIDPOINT);
        let mut conn = ConnectionInfo::new(
            ip,
            ClientConfig::plain(Browser::Chrome, Os::Linux),
            infra_point,
        );
        if let Some(&cookie) = self.cookies.get(&account) {
            conn = conn.with_cookie(cookie);
        }
        let (session, cookie) = service.login(address, password, &conn, at)?;
        self.cookies.insert(account, cookie);
        // "parse" covers reading the activity page and digesting it
        // (fingerprint, dedupe, dump) — the per-account unit of work.
        let _parse = self.telemetry.subspan("parse", &[]);
        // A fresh session always reads its own page in a healthy
        // service; under fault injection the session may already be torn
        // down, which the retry loop should treat as a transient flake.
        let rows = service
            .read_activity_page(session)
            .map_err(|_| LoginError::Maintenance)?;
        // The scraper's own login mutates the page; fingerprint
        // only foreign rows so quiet accounts dedupe.
        let fingerprint: Vec<(u64, u64)> = rows
            .iter()
            .filter(|r| r.cookie != cookie)
            .map(|r| (r.cookie.0, r.at.as_secs()))
            .collect();
        if self.last_page.get(&account) != Some(&fingerprint) {
            self.last_page.insert(account, fingerprint);
            self.dumps.push(ActivityDump {
                account,
                at,
                rows: rows.clone(), // lint:allow(alloc-hot): the dump archives its own snapshot of the page
            });
            self.telemetry.count("monitor.scrape_dumps");
        }
        Ok(rows)
    }

    /// Record a hard failure and classify once it has repeated enough.
    fn note_hard_failure(
        &mut self,
        account: AccountId,
        kind: HardFailure,
        at: SimTime,
    ) -> ScrapeOutcome {
        let entry = self.pending_failures.entry(account).or_insert((kind, 0));
        if entry.0 == kind {
            entry.1 += 1;
        } else {
            *entry = (kind, 1);
        }
        if entry.1 < self.confirm_failures {
            // Not confirmed yet; the page is unreadable, so the blind
            // window opens here.
            self.open_gap(account, at);
            return ScrapeOutcome::FailurePending;
        }
        self.pending_failures.remove(&account);
        // Monitoring of this account ends now; close its blind window at
        // the moment of classification.
        self.close_gap(account, at);
        match kind {
            HardFailure::Hijack => {
                if !self.hijack_detected.contains_key(&account) {
                    self.telemetry.count("monitor.hijack_detections");
                }
                self.hijack_detected.entry(account).or_insert(at);
                ScrapeOutcome::HijackDetected
            }
            HardFailure::Blocked => {
                if !self.block_detected.contains_key(&account) {
                    self.telemetry.count("monitor.block_detections");
                }
                self.block_detected.entry(account).or_insert(at);
                ScrapeOutcome::BlockedDetected
            }
        }
    }

    fn open_gap(&mut self, account: AccountId, at: SimTime) {
        self.gap_open.entry(account).or_insert(at);
    }

    fn close_gap(&mut self, account: AccountId, at: SimTime) {
        if let Some(start) = self.gap_open.remove(&account) {
            if at > start {
                self.telemetry
                    .trace_with(start.as_secs(), "gap", Some(account.0), || {
                        format!("scraper blind until t={}", at.as_secs()) // lint:allow(alloc-hot): lazy closure; runs only when tracing is on
                    });
                self.gaps.push((account, start, at));
            }
        }
    }

    /// Scrape every registered account. During a scraper outage the whole
    /// sweep is skipped and every still-monitored account's blind window
    /// opens (if not already open).
    // lint:hot-root
    pub fn scrape_all(&mut self, service: &mut WebmailService, at: SimTime) {
        // One "poll" span per sweep: the poll operation is one pass
        // over the whole account population. Its children attribute
        // the per-account work (parse, retry, classify).
        let _poll = self.telemetry.subspan("poll", &[]);
        if self.fault_plan.scraper_outage_at(at) {
            self.telemetry
                .count_labeled("faults.injected", "scraper_outage");
            for account in self.accounts() {
                if self.hijack_detected.contains_key(&account)
                    || self.block_detected.contains_key(&account)
                {
                    continue;
                }
                self.open_gap(account, at);
            }
            self.telemetry
                .trace_with(at.as_secs(), "scrape", None, || "skipped: outage".into());
            return;
        }
        let mut attempted = 0u64;
        for account in self.accounts() {
            // Once hijacked or blocked there is nothing more to scrape.
            if self.hijack_detected.contains_key(&account)
                || self.block_detected.contains_key(&account)
            {
                continue;
            }
            let _ = self.scrape(service, account, at);
            attempted += 1;
        }
        // One trace record per sweep, not per account: a 7-month run
        // scrapes 100 accounts every few hours.
        self.telemetry.trace_with(at.as_secs(), "scrape", None, || {
            format!("accounts={attempted}")
        });
    }

    /// Close every still-open blind window at the end of the run, so the
    /// coverage analysis sees gaps that never recovered.
    pub fn finish(&mut self, at: SimTime) {
        let mut open: Vec<AccountId> = self.gap_open.keys().copied().collect();
        open.sort_unstable();
        for account in open {
            self.close_gap(account, at);
        }
    }

    /// All raw dumps (what "offline parsing" consumes).
    pub fn dumps(&self) -> &[ActivityDump] {
        &self.dumps
    }

    /// Render every dump to the on-disk text format (§3.1: "dump the
    /// pages to disk, for offline parsing").
    pub fn export_dumps(&self) -> Vec<String> {
        self.dumps
            .iter()
            .map(|d| crate::parser::render_page(d.account.0, d.at, &d.rows))
            .collect()
    }

    /// When the scraper first noticed a hijack on each account.
    pub fn hijacks_detected(&self) -> &HashMap<AccountId, SimTime> {
        &self.hijack_detected
    }

    /// When the scraper first noticed a block on each account.
    pub fn blocks_detected(&self) -> &HashMap<AccountId, SimTime> {
        &self.block_detected
    }

    /// Closed blind windows `(account, from, until)`, in close order.
    /// Call [`Scraper::finish`] first to flush windows still open at the
    /// horizon.
    pub fn gaps(&self) -> &[(AccountId, SimTime, SimTime)] {
        &self.gaps
    }

    /// The scraper's own cookies (the dataset filter needs them).
    pub fn own_cookies(&self) -> Vec<CookieId> {
        let mut v: Vec<CookieId> = self.cookies.values().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_corpus::email::{Email, EmailId, MailTime};
    use pwnd_faults::FaultProfile;
    use pwnd_net::geo::GeoDb;
    use pwnd_net::geolocate::Geolocator;
    use pwnd_net::tor::TorDirectory;
    use pwnd_sim::SimDuration;
    use pwnd_webmail::service::ServiceConfig;

    fn world() -> (WebmailService, Scraper, AccountId) {
        let geo = GeoDb::new();
        let plan = AddressPlan::new(&geo);
        let mut rng = Rng::seed_from(3);
        let tor = TorDirectory::generate(50, &mut rng);
        let mut svc =
            WebmailService::new(ServiceConfig::default(), Geolocator::new(plan, geo, tor));
        let id = svc
            .create_account(
                "h@honeymail.example",
                "pw",
                std::net::Ipv4Addr::new(198, 51, 0, 1),
                SimTime::ZERO,
            )
            .unwrap();
        svc.seed_mailbox(
            id,
            vec![Email {
                id: EmailId(1),
                from: "p@x".into(),
                to: vec!["h@honeymail.example".into()],
                subject: "s".into(),
                body: "b".into(),
                timestamp: MailTime(-5),
            }],
        );
        let mut scraper = Scraper::new(rng.fork(9));
        scraper.register(id, "h@honeymail.example", "pw");
        (svc, scraper, id)
    }

    fn hijack(svc: &mut WebmailService, at: u64) {
        let ip = svc
            .geolocator()
            .plan()
            .sample_host("RO", &mut Rng::seed_from(2));
        let loc = svc.geolocator().locate(ip);
        let conn = ConnectionInfo::new(
            ip,
            ClientConfig::plain(Browser::Opera, Os::Windows),
            loc.point,
        );
        let (session, _) = svc
            .login("h@honeymail.example", "pw", &conn, SimTime::from_secs(at))
            .unwrap();
        svc.change_password(session, "stolen", SimTime::from_secs(at + 10))
            .unwrap();
    }

    #[test]
    fn scrape_sees_attacker_access() {
        let (mut svc, mut scraper, id) = world();
        // Attacker logs in from Brazil.
        let ip = svc
            .geolocator()
            .plan()
            .sample_host("BR", &mut Rng::seed_from(1));
        let loc = svc.geolocator().locate(ip);
        let conn = ConnectionInfo::new(
            ip,
            ClientConfig::plain(Browser::Chrome, Os::Windows),
            loc.point,
        );
        svc.login("h@honeymail.example", "pw", &conn, SimTime::from_secs(100))
            .unwrap();

        match scraper.scrape(&mut svc, id, SimTime::from_secs(200)) {
            ScrapeOutcome::Ok(rows) => {
                assert!(rows.iter().any(|r| r.location.country == Some("BR")));
            }
            other => panic!("expected Ok, got {other:?}"),
        }
        assert_eq!(scraper.dumps().len(), 1);
    }

    #[test]
    fn scraper_uses_stable_cookie() {
        let (mut svc, mut scraper, id) = world();
        scraper.scrape(&mut svc, id, SimTime::from_secs(10));
        scraper.scrape(&mut svc, id, SimTime::from_secs(20));
        assert_eq!(scraper.own_cookies().len(), 1);
    }

    #[test]
    fn hijack_is_detected_and_scraping_stops() {
        let (mut svc, mut scraper, id) = world();
        hijack(&mut svc, 50);

        match scraper.scrape(&mut svc, id, SimTime::from_secs(100)) {
            ScrapeOutcome::HijackDetected => {}
            other => panic!("expected hijack, got {other:?}"),
        }
        assert_eq!(
            scraper.hijacks_detected().get(&id),
            Some(&SimTime::from_secs(100))
        );
        // scrape_all skips it afterwards.
        let dumps_before = scraper.dumps().len();
        scraper.scrape_all(&mut svc, SimTime::from_secs(200));
        assert_eq!(scraper.dumps().len(), dumps_before);
    }

    #[test]
    fn block_is_detected() {
        let (mut svc, mut scraper, id) = world();
        svc.admin_block(id, SimTime::from_secs(10));
        match scraper.scrape(&mut svc, id, SimTime::from_secs(20)) {
            ScrapeOutcome::BlockedDetected => {}
            other => panic!("expected blocked, got {other:?}"),
        }
        assert!(scraper.blocks_detected().contains_key(&id));
    }

    #[test]
    fn confirmation_defers_classification() {
        let (mut svc, mut scraper, id) = world();
        scraper.set_confirm_failures(3);
        hijack(&mut svc, 50);

        // Two failures: still pending, nothing declared.
        for t in [100u64, 200] {
            match scraper.scrape(&mut svc, id, SimTime::from_secs(t)) {
                ScrapeOutcome::FailurePending => {}
                other => panic!("expected pending, got {other:?}"),
            }
        }
        assert!(scraper.hijacks_detected().is_empty());
        // Third consecutive failure confirms, stamped at the confirming
        // sweep.
        match scraper.scrape(&mut svc, id, SimTime::from_secs(300)) {
            ScrapeOutcome::HijackDetected => {}
            other => panic!("expected hijack, got {other:?}"),
        }
        assert_eq!(
            scraper.hijacks_detected().get(&id),
            Some(&SimTime::from_secs(300))
        );
        // The unreadable stretch is recorded as a blind window.
        assert_eq!(
            scraper.gaps(),
            &[(id, SimTime::from_secs(100), SimTime::from_secs(300))]
        );
    }

    #[test]
    fn successful_scrape_resets_confirmation_count() {
        let (mut svc, mut scraper, id) = world();
        scraper.set_confirm_failures(2);
        // A healthy scrape first.
        scraper.scrape(&mut svc, id, SimTime::from_secs(10));
        hijack(&mut svc, 50);
        match scraper.scrape(&mut svc, id, SimTime::from_secs(100)) {
            ScrapeOutcome::FailurePending => {}
            other => panic!("expected pending, got {other:?}"),
        }
        // The researchers recover the credentials out of band: the next
        // scrape succeeds and wipes the pending count.
        scraper.register(id, "h@honeymail.example", "stolen");
        match scraper.scrape(&mut svc, id, SimTime::from_secs(200)) {
            ScrapeOutcome::Ok(_) => {}
            other => panic!("expected ok, got {other:?}"),
        }
        // The password changes again behind their back; the count starts
        // over from one instead of classifying immediately.
        scraper.register(id, "h@honeymail.example", "wrong");
        match scraper.scrape(&mut svc, id, SimTime::from_secs(300)) {
            ScrapeOutcome::FailurePending => {}
            other => panic!("expected pending again, got {other:?}"),
        }
        assert!(scraper.hijacks_detected().is_empty());
    }

    #[test]
    fn flaky_logins_are_retried_and_succeed() {
        let (mut svc, mut scraper, id) = world();
        // Flake rate high enough that retries fire, attempts generous
        // enough that a scrape eventually lands.
        scraper.set_fault_plan(FaultPlan::compile(
            11,
            &FaultProfile {
                scraper_flake_rate: 0.5,
                ..FaultProfile::none()
            },
            SimDuration::days(30),
        ));
        scraper.set_retry_policy(RetryPolicy {
            max_attempts: 12,
            ..RetryPolicy::default()
        });
        let mut oks = 0;
        for day in 0..20u64 {
            if matches!(
                scraper.scrape(&mut svc, id, SimTime::from_secs(day * 86_400)),
                ScrapeOutcome::Ok(_)
            ) {
                oks += 1;
            }
        }
        assert!(oks >= 15, "most scrapes should survive retries, got {oks}");
        assert!(scraper.hijacks_detected().is_empty());
    }

    #[test]
    fn outage_skips_sweep_and_records_gap() {
        let (mut svc, mut scraper, id) = world();
        // Compile plans until one has an outage window (deterministic
        // search over seeds, not a random test).
        let profile = FaultProfile {
            scraper_outages_per_30d: 2.0,
            scraper_outage_hours: 12.0,
            ..FaultProfile::none()
        };
        let plan = (0..64)
            .map(|s| FaultPlan::compile(s, &profile, SimDuration::days(30)))
            .find(|p| !p.scraper_outages().is_empty())
            .expect("some seed yields an outage");
        let window = plan.scraper_outages()[0];
        scraper.set_fault_plan(plan);
        scraper.scrape_all(&mut svc, window.start);
        assert!(scraper.dumps().is_empty(), "outage sweep must not scrape");
        // Next sweep after the outage closes the blind window.
        let after = window.end + SimDuration::hours(1);
        scraper.scrape_all(&mut svc, after);
        assert_eq!(scraper.gaps(), &[(id, window.start, after)]);
    }

    #[test]
    fn exported_dumps_reparse_to_the_same_rows() {
        let (mut svc, mut scraper, id) = world();
        let ip = svc
            .geolocator()
            .plan()
            .sample_host("DE", &mut Rng::seed_from(9));
        let loc = svc.geolocator().locate(ip);
        let conn = ConnectionInfo::new(
            ip,
            ClientConfig::plain(Browser::Firefox, Os::Linux),
            loc.point,
        );
        svc.login("h@honeymail.example", "pw", &conn, SimTime::from_secs(50))
            .unwrap();
        scraper.scrape(&mut svc, id, SimTime::from_secs(100));
        let texts = scraper.export_dumps();
        assert_eq!(texts.len(), scraper.dumps().len());
        for (text, dump) in texts.iter().zip(scraper.dumps()) {
            let parsed = crate::parser::parse_page(text).expect("dump parses");
            assert_eq!(parsed.account, dump.account.0);
            assert_eq!(parsed.scraped_at, dump.at);
            assert_eq!(parsed.rows.len(), dump.rows.len());
            for (a, b) in parsed.rows.iter().zip(&dump.rows) {
                assert_eq!(a.cookie, b.cookie);
                assert_eq!(a.ip, b.ip);
                assert_eq!(a.location.city, b.location.city);
                assert_eq!(a.fingerprint, b.fingerprint);
            }
        }
    }

    #[test]
    fn scrape_all_covers_registered_accounts() {
        let (mut svc, mut scraper, _) = world();
        scraper.scrape_all(&mut svc, SimTime::ZERO + SimDuration::hours(1));
        assert_eq!(scraper.dumps().len(), 1);
    }
}
