//! The in-account Apps-Script runtime.
//!
//! Each honey account carries a script, hidden inside a Google-Docs
//! spreadsheet so attackers are unlikely to find it (§3.1). The runtime
//! subscribes to the service's event stream and converts mailbox activity
//! into collector notifications. It also models two real-world failure
//! modes the paper hit:
//!
//! * **Execution quota** — scripts consume "computer time" per trigger;
//!   exceeding the daily quota makes the platform email a "using too much
//!   computer time" notice *into the honey account itself*, where an
//!   attacker may open it (§4.4 observed exactly that, twice).
//! * **Discovery** — an attacker who rummages through the account's
//!   documents can find and delete the script, silencing monitoring for
//!   that account (§5 limitations).

use crate::collector::{Notification, NotificationCollector, NotificationKind};
use pwnd_corpus::email::{Email, EmailId, MailTime};
use pwnd_faults::FaultPlan;
use pwnd_sim::{SimDuration, SimTime};
use pwnd_telemetry::TelemetrySink;
use pwnd_webmail::account::AccountId;
use pwnd_webmail::events::WebmailEvent;
use pwnd_webmail::service::WebmailService;
use std::collections::HashMap;

/// Where the script hides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScriptLocation {
    /// Embedded in a spreadsheet in the account's documents (the paper's
    /// choice — hard to stumble upon).
    HiddenSpreadsheet,
    /// Installed as a visible account script (easier to find; used by the
    /// discovery-probability ablation).
    Visible,
}

/// Per-account script state.
#[derive(Clone, Debug)]
pub struct ScriptState {
    /// Where it hides.
    pub location: ScriptLocation,
    /// Deleted by an attacker?
    pub deleted: bool,
    /// Execution seconds consumed today.
    pub used_today: f64,
    /// Day index the quota window refers to.
    pub quota_day: u64,
    /// Whether a quota notice has already been delivered today.
    pub quota_notified_today: bool,
    /// Day index of the last delivered quota notice (platform digests
    /// are throttled).
    pub last_notice_day: Option<u64>,
    /// Per-account daily polling cost (seconds); scales with mailbox
    /// size, so the largest mailboxes exceed quota persistently — the
    /// §4.4 "two accounts received notifications" pattern.
    pub polling_cost: f64,
    /// Total notifications emitted over the script's lifetime.
    pub emitted: u64,
}

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct ScriptConfig {
    /// Seconds of execution each trigger costs.
    pub cost_per_trigger: f64,
    /// Seconds of execution the script's time-driven polling burns every
    /// day regardless of activity. Apps Script at the time could not hook
    /// mailbox events directly — the paper's scripts polled for changes,
    /// which is why two accounts hit the "too much computer time" notice
    /// on busy days (§4.4).
    pub daily_polling_cost: f64,
    /// Daily execution allowance before the platform complains.
    pub daily_quota: f64,
    /// Probability that one thorough (gold-digger) session discovers a
    /// hidden script. Visible scripts are found 20× as easily.
    pub discovery_probability: f64,
    /// Minimum days between quota notices to one account (the platform
    /// digests failures instead of spamming the owner).
    pub notice_cooldown_days: u64,
}

impl Default for ScriptConfig {
    fn default() -> Self {
        ScriptConfig {
            cost_per_trigger: 45.0,
            daily_polling_cost: 85.0 * 60.0,
            // Apps Script consumer quota at the time: 90 minutes/day.
            daily_quota: 90.0 * 60.0,
            discovery_probability: 0.01,
            notice_cooldown_days: 10,
        }
    }
}

/// The runtime driving all per-account scripts.
pub struct ScriptRuntime {
    config: ScriptConfig,
    scripts: HashMap<AccountId, ScriptState>,
    next_quota_email_id: u64,
    quota_notices_sent: u64,
    /// Delivery sequence stamped on every emitted notification, so the
    /// collector can deduplicate at-least-once redeliveries.
    next_seq: u64,
    fault_plan: FaultPlan,
    telemetry: TelemetrySink,
}

impl ScriptRuntime {
    /// A runtime with the given configuration.
    pub fn new(config: ScriptConfig) -> ScriptRuntime {
        ScriptRuntime {
            config,
            scripts: HashMap::new(),
            next_quota_email_id: 20_000_000,
            quota_notices_sent: 0,
            next_seq: 0,
            fault_plan: FaultPlan::none(),
            telemetry: TelemetrySink::disabled(),
        }
    }

    /// Attach a telemetry sink (`monitor.scripts_deleted`,
    /// `monitor.quota_notices`, and one `heartbeat` trace per tick).
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    /// Attach the run's fault plan (daily trigger misfires).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Install the monitoring script on an account.
    pub fn install(&mut self, account: AccountId, location: ScriptLocation) {
        self.scripts.insert(
            account,
            ScriptState {
                location,
                deleted: false,
                used_today: 0.0,
                quota_day: 0,
                quota_notified_today: false,
                last_notice_day: None,
                polling_cost: self.config.daily_polling_cost,
                emitted: 0,
            },
        );
    }

    /// Set the account's daily polling cost (seconds). The experiment
    /// derives it from mailbox size: reading a bigger mailbox takes the
    /// polling trigger longer.
    pub fn set_polling_cost(&mut self, account: AccountId, cost: f64) {
        if let Some(s) = self.scripts.get_mut(&account) {
            s.polling_cost = cost;
        }
    }

    /// Script state for an account.
    pub fn state(&self, account: AccountId) -> Option<&ScriptState> {
        self.scripts.get(&account)
    }

    /// Whether the script on `account` is installed and alive.
    pub fn is_alive(&self, account: AccountId) -> bool {
        self.scripts.get(&account).is_some_and(|s| !s.deleted)
    }

    /// An attacker session rummages through the account. Returns `true`
    /// if it found and deleted the script. `roll` is a uniform [0,1) draw
    /// supplied by the caller (keeps the runtime RNG-free).
    pub fn attacker_rummage(&mut self, account: AccountId, roll: f64) -> bool {
        let Some(s) = self.scripts.get_mut(&account) else {
            return false;
        };
        if s.deleted {
            return false;
        }
        let p = match s.location {
            ScriptLocation::HiddenSpreadsheet => self.config.discovery_probability,
            ScriptLocation::Visible => (self.config.discovery_probability * 20.0).min(1.0),
        };
        if roll < p {
            s.deleted = true;
            self.telemetry.count("monitor.scripts_deleted");
            true
        } else {
            false
        }
    }

    fn charge_polling(&mut self, account: AccountId, at: SimTime) -> QuotaStatus {
        let quota = self.config.daily_quota;
        let cooldown = self.config.notice_cooldown_days;
        let Some(s) = self.scripts.get_mut(&account) else {
            return QuotaStatus::Ok;
        };
        let day = at.day_index();
        if day != s.quota_day {
            s.quota_day = day;
            s.used_today = 0.0;
            s.quota_notified_today = false;
        }
        s.used_today += s.polling_cost;
        let throttled = s
            .last_notice_day
            .is_some_and(|d| day.saturating_sub(d) < cooldown);
        if s.used_today > quota && !s.quota_notified_today && !throttled {
            s.quota_notified_today = true;
            s.last_notice_day = Some(day);
            QuotaStatus::Exceeded
        } else {
            QuotaStatus::Ok
        }
    }

    fn charge(&mut self, account: AccountId, at: SimTime) -> QuotaStatus {
        let cost = self.config.cost_per_trigger;
        let quota = self.config.daily_quota;
        let Some(s) = self.scripts.get_mut(&account) else {
            return QuotaStatus::Ok;
        };
        let day = at.day_index();
        if day != s.quota_day {
            s.quota_day = day;
            s.used_today = 0.0;
            s.quota_notified_today = false;
        }
        s.used_today += cost;
        let throttled = s
            .last_notice_day
            .is_some_and(|d| day.saturating_sub(d) < self.config.notice_cooldown_days);
        if s.used_today > quota && !s.quota_notified_today && !throttled {
            s.quota_notified_today = true;
            s.last_notice_day = Some(day);
            QuotaStatus::Exceeded
        } else {
            QuotaStatus::Ok
        }
    }

    /// Process a batch of service events: emit notifications for accounts
    /// with live scripts, charge quota, and deliver platform quota notices
    /// into over-quota accounts.
    pub fn process_events(
        &mut self,
        events: &[WebmailEvent],
        service: &mut WebmailService,
        collector: &mut NotificationCollector,
    ) {
        for ev in events {
            let account = ev.account();
            if !self.is_alive(account) {
                continue;
            }
            // Blocked accounts stop running scripts — but only from the
            // moment of the block: triggers that fired earlier in the
            // same batch (e.g. the spam burst that *caused* the block)
            // were already queued and still deliver.
            if let pwnd_webmail::account::AccountState::Blocked { at } =
                service.account(account).state
            {
                if ev.at() > at {
                    continue;
                }
            }
            let kind = match ev {
                WebmailEvent::EmailOpened { email, at, .. } => {
                    let text = service
                        .mailbox(account)
                        .get(*email)
                        .map(|e| e.email.full_text())
                        .unwrap_or_default();
                    Some((
                        NotificationKind::Opened {
                            email: *email,
                            text,
                        },
                        *at,
                        cookie_of(ev),
                    ))
                }
                WebmailEvent::EmailStarred { email, at, .. } => Some((
                    NotificationKind::Starred { email: *email },
                    *at,
                    cookie_of(ev),
                )),
                WebmailEvent::EmailSent {
                    email,
                    at,
                    recipients,
                    ..
                } => Some((
                    NotificationKind::Sent {
                        email: *email,
                        recipients: *recipients,
                    },
                    *at,
                    cookie_of(ev),
                )),
                WebmailEvent::DraftCreated { email, at, .. } => {
                    let text = service
                        .mailbox(account)
                        .get(*email)
                        .map(|e| e.email.full_text())
                        .unwrap_or_default();
                    Some((
                        NotificationKind::DraftCopy {
                            email: *email,
                            text,
                        },
                        *at,
                        cookie_of(ev),
                    ))
                }
                // Logins, password changes and blocks are invisible to
                // Apps Script — only the scraper learns about those.
                WebmailEvent::LoginSucceeded { .. }
                | WebmailEvent::PasswordChanged { .. }
                | WebmailEvent::AccountBlocked { .. } => None,
            };
            let Some((kind, at, cookie)) = kind else {
                continue;
            };
            let seq = self.next_seq();
            collector.receive(Notification {
                account,
                at,
                seq,
                cookie,
                kind,
            });
            if let Some(s) = self.scripts.get_mut(&account) {
                s.emitted += 1;
            }
            if self.charge(account, at) == QuotaStatus::Exceeded {
                self.deliver_quota_notice(account, at, service);
            }
        }
    }

    /// Emit daily heartbeats for every account whose script still runs.
    /// The heartbeat is itself a trigger and costs quota.
    pub fn heartbeat_tick(
        &mut self,
        at: SimTime,
        service: &mut WebmailService,
        collector: &mut NotificationCollector,
    ) {
        let mut accounts: Vec<AccountId> = self
            .scripts
            .iter()
            .filter(|(_, s)| !s.deleted)
            .map(|(&a, _)| a)
            .collect();
        accounts.sort_unstable();
        let mut beating = 0u64;
        for account in accounts {
            if !service.account(account).state.is_active() {
                continue;
            }
            // A misfired time-driven trigger simply never runs that day:
            // no heartbeat, no quota charge, nothing to retry (the
            // platform offers no redelivery for time triggers).
            if self.fault_plan.trigger_misfires(account.0, at.day_index()) {
                self.telemetry
                    .count_labeled("faults.injected", "trigger_misfire");
                continue;
            }
            beating += 1;
            let seq = self.next_seq();
            collector.receive(Notification {
                account,
                at,
                seq,
                cookie: None,
                kind: NotificationKind::Heartbeat,
            });
            // The heartbeat rides on the daily time-driven execution,
            // which also burns the polling budget.
            if self.charge_polling(account, at) == QuotaStatus::Exceeded {
                self.deliver_quota_notice(account, at, service);
            }
            let _ = self.charge(account, at);
            if let Some(s) = self.scripts.get_mut(&account) {
                s.emitted += 1;
            }
        }
        // One trace record per daily tick, not per account.
        self.telemetry
            .trace_with(at.as_secs(), "heartbeat", None, || {
                format!("accounts={beating}")
            });
    }

    /// Number of "too much computer time" notices delivered so far.
    pub fn quota_notices_sent(&self) -> u64 {
        self.quota_notices_sent
    }

    fn deliver_quota_notice(
        &mut self,
        account: AccountId,
        at: SimTime,
        service: &mut WebmailService,
    ) {
        let id = EmailId(self.next_quota_email_id);
        self.next_quota_email_id += 1;
        self.quota_notices_sent += 1;
        self.telemetry.count("monitor.quota_notices");
        // The platform emails the account owner directly; the notice lands
        // in the honey inbox where an attacker may open it (§4.4).
        service.seed_mailbox(
            account,
            vec![Email {
                id,
                from: "apps-script-notifications@platform.example".into(),
                to: vec![service.account(account).address.clone()],
                subject: "Summary of failures for Apps Script".into(),
                body: "Your script is using too much computer time. \
                       Executions exceeded the daily quota for this account."
                    .into(),
                timestamp: MailTime::from_sim(at),
            }],
        );
    }

    /// Accounts whose last heartbeat is older than `silence`, judged at
    /// `now` — the detection signal the researchers watched for blocked
    /// accounts.
    pub fn silent_accounts(
        &self,
        collector: &NotificationCollector,
        now: SimTime,
        silence: SimDuration,
    ) -> Vec<AccountId> {
        let mut out: Vec<AccountId> = self
            .scripts
            .keys()
            .filter(|&&a| match collector.last_heartbeat(a) {
                Some(t) => now.since(t) > silence,
                None => true,
            })
            .copied()
            .collect();
        out.sort_unstable();
        out
    }
}

#[derive(PartialEq, Eq)]
enum QuotaStatus {
    Ok,
    Exceeded,
}

fn cookie_of(ev: &WebmailEvent) -> Option<pwnd_net::access::CookieId> {
    match *ev {
        WebmailEvent::EmailOpened { cookie, .. }
        | WebmailEvent::EmailStarred { cookie, .. }
        | WebmailEvent::EmailSent { cookie, .. }
        | WebmailEvent::DraftCreated { cookie, .. }
        | WebmailEvent::LoginSucceeded { cookie, .. }
        | WebmailEvent::PasswordChanged { cookie, .. } => Some(cookie),
        WebmailEvent::AccountBlocked { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_net::access::ConnectionInfo;
    use pwnd_net::geo::GeoDb;
    use pwnd_net::geolocate::Geolocator;
    use pwnd_net::ip::AddressPlan;
    use pwnd_net::tor::TorDirectory;
    use pwnd_net::useragent::{Browser, ClientConfig, Os};
    use pwnd_sim::Rng;
    use pwnd_webmail::service::{ServiceConfig, SessionId};

    fn world() -> (WebmailService, ScriptRuntime, NotificationCollector, Rng) {
        let geo = GeoDb::new();
        let plan = AddressPlan::new(&geo);
        let mut rng = Rng::seed_from(5);
        let tor = TorDirectory::generate(50, &mut rng);
        let svc = WebmailService::new(ServiceConfig::default(), Geolocator::new(plan, geo, tor));
        (
            svc,
            ScriptRuntime::new(ScriptConfig::default()),
            NotificationCollector::new(),
            rng,
        )
    }

    fn honey(svc: &mut WebmailService, rt: &mut ScriptRuntime) -> AccountId {
        let id = svc
            .create_account(
                "h@honeymail.example",
                "pw",
                std::net::Ipv4Addr::new(198, 51, 0, 1),
                SimTime::ZERO,
            )
            .unwrap();
        svc.seed_mailbox(
            id,
            vec![Email {
                id: EmailId(1),
                from: "p@x".into(),
                to: vec!["h@honeymail.example".into()],
                subject: "payment".into(),
                body: "account payment details".into(),
                timestamp: MailTime(-100),
            }],
        );
        rt.install(id, ScriptLocation::HiddenSpreadsheet);
        id
    }

    fn attacker_session(svc: &mut WebmailService, rng: &mut Rng, at: SimTime) -> SessionId {
        let ip = svc.geolocator().plan().sample_host("RU", rng);
        let loc = svc.geolocator().locate(ip);
        let conn = ConnectionInfo::new(
            ip,
            ClientConfig::plain(Browser::Firefox, Os::Windows),
            loc.point,
        );
        svc.login("h@honeymail.example", "pw", &conn, at).unwrap().0
    }

    #[test]
    fn open_produces_notification_with_text() {
        let (mut svc, mut rt, mut col, mut rng) = world();
        let acct = honey(&mut svc, &mut rt);
        let s = attacker_session(&mut svc, &mut rng, SimTime::from_secs(10));
        svc.open_email(s, EmailId(1), SimTime::from_secs(20))
            .unwrap();
        let events = svc.drain_events();
        rt.process_events(&events, &mut svc, &mut col);
        let opened: Vec<_> = col
            .for_account(acct)
            .filter(|n| matches!(n.kind, NotificationKind::Opened { .. }))
            .collect();
        assert_eq!(opened.len(), 1);
        match &opened[0].kind {
            NotificationKind::Opened { text, .. } => assert!(text.contains("payment")),
            _ => unreachable!(),
        }
        assert!(opened[0].cookie.is_some());
    }

    #[test]
    fn deleted_script_goes_silent() {
        let (mut svc, mut rt, mut col, mut rng) = world();
        let acct = honey(&mut svc, &mut rt);
        assert!(rt.attacker_rummage(acct, 0.0)); // roll under p: found
        assert!(!rt.is_alive(acct));
        let s = attacker_session(&mut svc, &mut rng, SimTime::from_secs(10));
        svc.open_email(s, EmailId(1), SimTime::from_secs(20))
            .unwrap();
        let events = svc.drain_events();
        rt.process_events(&events, &mut svc, &mut col);
        assert_eq!(col.activity_count(), 0);
        // Deleting twice reports false.
        assert!(!rt.attacker_rummage(acct, 0.0));
    }

    #[test]
    fn hidden_script_usually_survives_rummage() {
        let (mut svc, mut rt, _, _) = world();
        let acct = honey(&mut svc, &mut rt);
        assert!(!rt.attacker_rummage(acct, 0.5)); // roll above p: missed
        assert!(rt.is_alive(acct));
    }

    #[test]
    fn heartbeats_fire_daily_and_stop_when_blocked() {
        let (mut svc, mut rt, mut col, _) = world();
        let acct = honey(&mut svc, &mut rt);
        rt.heartbeat_tick(SimTime::from_secs(100), &mut svc, &mut col);
        assert_eq!(col.last_heartbeat(acct), Some(SimTime::from_secs(100)));
        svc.admin_block(acct, SimTime::from_secs(200));
        rt.heartbeat_tick(SimTime::from_secs(300), &mut svc, &mut col);
        assert_eq!(col.last_heartbeat(acct), Some(SimTime::from_secs(100)));
        let silent = rt.silent_accounts(
            &col,
            SimTime::ZERO + SimDuration::days(2),
            SimDuration::days(1),
        );
        assert_eq!(silent, vec![acct]);
    }

    #[test]
    fn quota_exhaustion_delivers_platform_notice() {
        let (mut svc, mut rt, mut col, mut rng) = world();
        let acct = honey(&mut svc, &mut rt);
        let s = attacker_session(&mut svc, &mut rng, SimTime::from_secs(10));
        // 90min/day at 45s per trigger = 120 triggers to exhaust.
        let before = svc.mailbox(acct).len();
        for i in 0..130u64 {
            svc.open_email(s, EmailId(1), SimTime::from_secs(20 + i))
                .unwrap();
            let events = svc.drain_events();
            rt.process_events(&events, &mut svc, &mut col);
        }
        let after = svc.mailbox(acct).len();
        assert_eq!(after, before + 1, "exactly one quota notice per day");
        let notice_id = svc
            .mailbox(acct)
            .iter()
            .find(|e| e.email.subject.contains("Apps Script"))
            .map(|e| e.email.id)
            .unwrap();
        // An attacker can open the notice — and that open is itself
        // reported (the §4.4 case study).
        svc.open_email(s, notice_id, SimTime::from_secs(500))
            .unwrap();
        let events = svc.drain_events();
        rt.process_events(&events, &mut svc, &mut col);
        assert!(col.all().iter().any(|n| matches!(
            &n.kind,
            NotificationKind::Opened { text, .. } if text.contains("too much computer time")
        )));
    }

    #[test]
    fn quota_notices_respect_cooldown() {
        let (mut svc, mut rt, mut col, mut rng) = world();
        let acct = honey(&mut svc, &mut rt);
        let s = attacker_session(&mut svc, &mut rng, SimTime::from_secs(10));
        let exhaust = |svc: &mut WebmailService,
                       rt: &mut ScriptRuntime,
                       col: &mut NotificationCollector,
                       base: SimTime| {
            for i in 0..130u64 {
                svc.open_email(s, EmailId(1), base + SimDuration::from_secs(20 + i))
                    .unwrap();
                let ev = svc.drain_events();
                rt.process_events(&ev, svc, col);
            }
        };
        exhaust(&mut svc, &mut rt, &mut col, SimTime::ZERO);
        let day1 = svc.mailbox(acct).len();
        // Next day: quota resets, but the platform digest is throttled —
        // no second notice inside the cooldown window.
        exhaust(
            &mut svc,
            &mut rt,
            &mut col,
            SimTime::ZERO + SimDuration::days(1),
        );
        assert_eq!(svc.mailbox(acct).len(), day1);
        // After the cooldown (default 10 days) a new notice is delivered.
        exhaust(
            &mut svc,
            &mut rt,
            &mut col,
            SimTime::ZERO + SimDuration::days(11),
        );
        assert_eq!(svc.mailbox(acct).len(), day1 + 1);
    }
}
