//! The parsed access-metadata dataset.
//!
//! The paper publishes "a dataset containing the parsed metadata of the
//! accesses received from our honey accounts". [`DatasetBuilder`] produces
//! the equivalent: it merges the scraper's raw activity-page dumps with
//! the collector's script notifications into one [`ParsedAccess`] record
//! per (account, cookie) pair, then applies the paper's §4.1 filters —
//! dropping accesses made from the monitoring infrastructure's IPs and
//! from the city where the infrastructure is located.
//!
//! The dataset is the *censored* view: hijacked accounts contribute
//! nothing after the hijack (the scraper is locked out), blocked accounts
//! nothing after the block, and an access that only ever appeared in the
//! activity-page ring between two scrapes is lost. Analyses operate on
//! this view, exactly as the paper's did.

use crate::collector::{NotificationCollector, NotificationKind};
use crate::scraper::ActivityDump;
use pwnd_net::access::CookieId;
use pwnd_net::geolocate::{Geolocator, INFRA_CITY};
use pwnd_net::ip::AddressPlan;
use pwnd_sim::SimTime;
use pwnd_telemetry::json::{Json, JsonError};
use pwnd_webmail::account::AccountId;
use std::collections::{BTreeMap, HashSet};

/// One unique access: a device cookie observed on a honey account.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedAccess {
    /// Account index.
    pub account: u32,
    /// Cookie identifier.
    pub cookie: u64,
    /// First time this cookie was observed (seconds since epoch).
    pub first_seen_secs: u64,
    /// Last time this cookie was observed.
    pub last_seen_secs: u64,
    /// Source IP (dotted quad), `0.0.0.0` when no activity row survived.
    pub ip: String,
    /// Geolocated country code, if any.
    pub country: Option<String>,
    /// Geolocated city name.
    pub city: String,
    /// Geolocated latitude.
    pub lat: f64,
    /// Geolocated longitude.
    pub lon: f64,
    /// Fingerprinted browser label.
    pub browser: String,
    /// Fingerprinted OS label.
    pub os: String,
    /// Whether the source IP is a Tor exit.
    pub via_tor: bool,
    /// Emails opened by this cookie (from notifications).
    pub opened: u32,
    /// Emails sent by this cookie.
    pub sent: u32,
    /// Drafts created by this cookie.
    pub drafts: u32,
    /// Emails starred by this cookie.
    pub starred: u32,
    /// Whether this access is charged with the account's password change.
    pub hijacker: bool,
    /// Whether at least one scraped activity row backed this record (if
    /// not, location fields are placeholders).
    pub has_location_row: bool,
}

impl ParsedAccess {
    /// Access duration: `t_last − t_0`, in seconds. A lower bound, as the
    /// paper notes (observation stops at hijack/block).
    pub fn duration_secs(&self) -> u64 {
        self.last_seen_secs.saturating_sub(self.first_seen_secs)
    }
}

/// Per-account metadata attached by the experiment driver.
#[derive(Clone, Debug, PartialEq)]
pub struct AccountRecord {
    /// Account index.
    pub account: u32,
    /// Leak outlet label (e.g. `"paste"`, `"forum"`, `"malware"`).
    pub outlet: String,
    /// Advertised decoy region (`"UK"` / `"US"`), when the leak included
    /// location information.
    pub advertised_region: Option<String>,
    /// When the credentials were leaked.
    pub leaked_at_secs: u64,
    /// When the scraper first observed a hijack, if ever.
    pub hijack_detected_secs: Option<u64>,
    /// When the scraper first observed a block, if ever.
    pub block_detected_secs: Option<u64>,
    /// Fraction of this account's observation window (leak to
    /// detection/horizon) not covered by a known monitoring gap.
    /// `None` when the run tracked no gaps (fault-free runs omit the
    /// field entirely from exports, keeping them byte-identical to
    /// pre-coverage output).
    pub coverage: Option<f64>,
}

/// One known monitoring blind window, attributed to its cause.
#[derive(Clone, Debug, PartialEq)]
pub struct GapRecord {
    /// Account index.
    pub account: u32,
    /// What caused the gap: `"scraper"` (outage, give-up, or unconfirmed
    /// failure stretch), `"heartbeat"` (script dead window), or
    /// `"maintenance"` (provider downtime).
    pub kind: String,
    /// Gap start (seconds).
    pub from_secs: u64,
    /// Gap end (seconds).
    pub until_secs: u64,
}

/// The full published dataset.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    /// One record per unique (account, cookie) access, post-filtering.
    pub accesses: Vec<ParsedAccess>,
    /// One record per honey account.
    pub accounts: Vec<AccountRecord>,
    /// Text snapshots of every email the attackers opened (document `d_R`
    /// of the TF-IDF analysis).
    pub opened_texts: Vec<String>,
    /// Known monitoring blind windows (empty — and absent from exports —
    /// in fault-free runs).
    pub gaps: Vec<GapRecord>,
}

impl Dataset {
    /// Serialize to pretty JSON (the export format). The `gaps` key is
    /// emitted only when gaps were tracked, so fault-free exports are
    /// byte-identical to the pre-coverage format.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            (
                "accesses".to_string(),
                Json::Arr(
                    self.accesses
                        .iter()
                        .map(ParsedAccess::to_json_value)
                        .collect(),
                ),
            ),
            (
                "accounts".to_string(),
                Json::Arr(
                    self.accounts
                        .iter()
                        .map(AccountRecord::to_json_value)
                        .collect(),
                ),
            ),
            (
                "opened_texts".to_string(),
                Json::Arr(
                    self.opened_texts
                        .iter()
                        .map(|t| Json::Str(t.clone()))
                        .collect(),
                ),
            ),
        ];
        if !self.gaps.is_empty() {
            fields.push((
                "gaps".to_string(),
                Json::Arr(self.gaps.iter().map(GapRecord::to_json_value).collect()),
            ));
        }
        Json::Obj(fields).pretty()
    }

    /// Parse from JSON. Tolerates exports from before gap tracking
    /// existed (no `gaps` key, no per-account `coverage`).
    pub fn from_json(s: &str) -> Result<Dataset, JsonError> {
        let root = Json::parse(s)?;
        let gaps = match root.get("gaps") {
            Some(v) => v
                .as_array()
                .ok_or_else(|| type_err("gaps", "array"))?
                .iter()
                .map(GapRecord::from_json_value)
                .collect::<Result<_, _>>()?,
            None => Vec::new(),
        };
        Ok(Dataset {
            accesses: array_field(&root, "accesses")?
                .iter()
                .map(ParsedAccess::from_json_value)
                .collect::<Result<_, _>>()?,
            accounts: array_field(&root, "accounts")?
                .iter()
                .map(AccountRecord::from_json_value)
                .collect::<Result<_, _>>()?,
            opened_texts: array_field(&root, "opened_texts")?
                .iter()
                .map(|t| {
                    t.as_str()
                        .map(String::from)
                        .ok_or_else(|| type_err("opened_texts", "string"))
                })
                .collect::<Result<_, _>>()?,
            gaps,
        })
    }

    /// Accesses belonging to accounts with a given outlet label.
    pub fn accesses_for_outlet<'a>(
        &'a self,
        outlet: &'a str,
    ) -> impl Iterator<Item = &'a ParsedAccess> {
        let accounts: HashSet<u32> = self
            .accounts
            .iter()
            .filter(|a| a.outlet == outlet)
            .map(|a| a.account)
            .collect();
        self.accesses
            .iter()
            .filter(move |x| accounts.contains(&x.account))
    }

    /// The account record for an access.
    pub fn account_record(&self, account: u32) -> Option<&AccountRecord> {
        self.accounts.iter().find(|a| a.account == account)
    }

    /// Approximate heap bytes held by this dataset: record vectors plus
    /// every owned string. Pure collection accounting (no OS calls) —
    /// one input to the fleet engine's `fleet.peak_rss_proxy` metric.
    pub fn heap_bytes(&self) -> usize {
        let access_strings = |a: &ParsedAccess| {
            a.ip.len()
                + a.country.as_deref().map_or(0, str::len)
                + a.city.len()
                + a.browser.len()
                + a.os.len()
        };
        self.accesses.len() * std::mem::size_of::<ParsedAccess>()
            + self.accesses.iter().map(access_strings).sum::<usize>()
            + self.accounts.len() * std::mem::size_of::<AccountRecord>()
            + self
                .accounts
                .iter()
                .map(|a| a.outlet.len() + a.advertised_region.as_deref().map_or(0, str::len))
                .sum::<usize>()
            + self.opened_texts.len() * std::mem::size_of::<String>()
            + self.opened_texts.iter().map(String::len).sum::<usize>()
            + self.gaps.len() * std::mem::size_of::<GapRecord>()
            + self.gaps.iter().map(|g| g.kind.len()).sum::<usize>()
    }

    /// Number of distinct accounts that received at least one access.
    pub fn accounts_with_accesses(&self) -> usize {
        self.accesses
            .iter()
            .map(|a| a.account)
            .collect::<HashSet<_>>()
            .len()
    }
}

fn type_err(field: &str, expected: &str) -> JsonError {
    JsonError {
        msg: format!("field {field}: expected {expected}"),
        at: 0,
    }
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
    v.get(key).ok_or_else(|| JsonError {
        msg: format!("missing field {key}"),
        at: 0,
    })
}

fn array_field<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], JsonError> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| type_err(key, "array"))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, JsonError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| type_err(key, "integer"))
}

fn u32_field(v: &Json, key: &str) -> Result<u32, JsonError> {
    u32::try_from(u64_field(v, key)?).map_err(|_| type_err(key, "u32"))
}

fn f64_field(v: &Json, key: &str) -> Result<f64, JsonError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| type_err(key, "number"))
}

fn str_field(v: &Json, key: &str) -> Result<String, JsonError> {
    field(v, key)?
        .as_str()
        .map(String::from)
        .ok_or_else(|| type_err(key, "string"))
}

fn bool_field(v: &Json, key: &str) -> Result<bool, JsonError> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| type_err(key, "bool"))
}

fn opt_str_field(v: &Json, key: &str) -> Result<Option<String>, JsonError> {
    let f = field(v, key)?;
    if f.is_null() {
        Ok(None)
    } else {
        f.as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| type_err(key, "string or null"))
    }
}

fn opt_u64_field(v: &Json, key: &str) -> Result<Option<u64>, JsonError> {
    let f = field(v, key)?;
    if f.is_null() {
        Ok(None)
    } else {
        f.as_u64()
            .map(Some)
            .ok_or_else(|| type_err(key, "integer or null"))
    }
}

fn opt_str_json(v: &Option<String>) -> Json {
    match v {
        Some(s) => Json::Str(s.clone()),
        None => Json::Null,
    }
}

impl ParsedAccess {
    pub(crate) fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("account".to_string(), Json::U(u64::from(self.account))),
            ("cookie".to_string(), Json::U(self.cookie)),
            ("first_seen_secs".to_string(), Json::U(self.first_seen_secs)),
            ("last_seen_secs".to_string(), Json::U(self.last_seen_secs)),
            ("ip".to_string(), Json::Str(self.ip.clone())),
            ("country".to_string(), opt_str_json(&self.country)),
            ("city".to_string(), Json::Str(self.city.clone())),
            ("lat".to_string(), Json::F(self.lat)),
            ("lon".to_string(), Json::F(self.lon)),
            ("browser".to_string(), Json::Str(self.browser.clone())),
            ("os".to_string(), Json::Str(self.os.clone())),
            ("via_tor".to_string(), Json::Bool(self.via_tor)),
            ("opened".to_string(), Json::U(u64::from(self.opened))),
            ("sent".to_string(), Json::U(u64::from(self.sent))),
            ("drafts".to_string(), Json::U(u64::from(self.drafts))),
            ("starred".to_string(), Json::U(u64::from(self.starred))),
            ("hijacker".to_string(), Json::Bool(self.hijacker)),
            (
                "has_location_row".to_string(),
                Json::Bool(self.has_location_row),
            ),
        ])
    }

    /// Parse one access from its JSON value (the `"value"` of an
    /// `"access"` JSONL line). Streaming consumers — the fleet store's
    /// `pwnd report` path — use this to process records one line at a
    /// time without materializing a [`Dataset`].
    pub fn from_json_value(v: &Json) -> Result<ParsedAccess, JsonError> {
        Ok(ParsedAccess {
            account: u32_field(v, "account")?,
            cookie: u64_field(v, "cookie")?,
            first_seen_secs: u64_field(v, "first_seen_secs")?,
            last_seen_secs: u64_field(v, "last_seen_secs")?,
            ip: str_field(v, "ip")?,
            country: opt_str_field(v, "country")?,
            city: str_field(v, "city")?,
            lat: f64_field(v, "lat")?,
            lon: f64_field(v, "lon")?,
            browser: str_field(v, "browser")?,
            os: str_field(v, "os")?,
            via_tor: bool_field(v, "via_tor")?,
            opened: u32_field(v, "opened")?,
            sent: u32_field(v, "sent")?,
            drafts: u32_field(v, "drafts")?,
            starred: u32_field(v, "starred")?,
            hijacker: bool_field(v, "hijacker")?,
            has_location_row: bool_field(v, "has_location_row")?,
        })
    }
}

impl AccountRecord {
    pub(crate) fn to_json_value(&self) -> Json {
        let mut fields = vec![
            ("account".to_string(), Json::U(u64::from(self.account))),
            ("outlet".to_string(), Json::Str(self.outlet.clone())),
            (
                "advertised_region".to_string(),
                opt_str_json(&self.advertised_region),
            ),
            ("leaked_at_secs".to_string(), Json::U(self.leaked_at_secs)),
            (
                "hijack_detected_secs".to_string(),
                self.hijack_detected_secs.map_or(Json::Null, Json::U),
            ),
            (
                "block_detected_secs".to_string(),
                self.block_detected_secs.map_or(Json::Null, Json::U),
            ),
        ];
        // Omitted (not null) when untracked: fault-free exports keep the
        // historical byte-exact shape.
        if let Some(c) = self.coverage {
            fields.push(("coverage".to_string(), Json::F(c)));
        }
        Json::Obj(fields)
    }

    /// Parse one account record from its JSON value (the `"value"` of
    /// an `"account"` JSONL line); see
    /// [`ParsedAccess::from_json_value`].
    pub fn from_json_value(v: &Json) -> Result<AccountRecord, JsonError> {
        let coverage = match v.get("coverage") {
            None => None,
            Some(f) if f.is_null() => None,
            Some(f) => Some(f.as_f64().ok_or_else(|| type_err("coverage", "number"))?),
        };
        Ok(AccountRecord {
            account: u32_field(v, "account")?,
            outlet: str_field(v, "outlet")?,
            advertised_region: opt_str_field(v, "advertised_region")?,
            leaked_at_secs: u64_field(v, "leaked_at_secs")?,
            hijack_detected_secs: opt_u64_field(v, "hijack_detected_secs")?,
            block_detected_secs: opt_u64_field(v, "block_detected_secs")?,
            coverage,
        })
    }
}

impl GapRecord {
    pub(crate) fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("account".to_string(), Json::U(u64::from(self.account))),
            ("kind".to_string(), Json::Str(self.kind.clone())),
            ("from_secs".to_string(), Json::U(self.from_secs)),
            ("until_secs".to_string(), Json::U(self.until_secs)),
        ])
    }

    /// Parse one gap record from its JSON value (the `"value"` of a
    /// `"gap"` JSONL line); see [`ParsedAccess::from_json_value`].
    pub fn from_json_value(v: &Json) -> Result<GapRecord, JsonError> {
        Ok(GapRecord {
            account: u32_field(v, "account")?,
            kind: str_field(v, "kind")?,
            from_secs: u64_field(v, "from_secs")?,
            until_secs: u64_field(v, "until_secs")?,
        })
    }
}

/// The location-bearing fields scraped from one activity row:
/// (ip, country, city, lat, lon, browser, os, via_tor).
type RowFields = (
    String,
    Option<String>,
    String,
    f64,
    f64,
    String,
    String,
    bool,
);

#[derive(Default)]
struct PerCookie {
    first: Option<u64>,
    last: Option<u64>,
    row: Option<RowFields>,
    opened: u32,
    sent: u32,
    drafts: u32,
    starred: u32,
}

/// Builds a [`Dataset`] from the monitoring outputs.
pub struct DatasetBuilder<'a> {
    geolocator: &'a Geolocator,
    dumps: &'a [ActivityDump],
    collector: &'a NotificationCollector,
    own_cookies: HashSet<u64>,
    meta: Vec<AccountRecord>,
    gaps: Vec<GapRecord>,
    coverage_horizon_secs: Option<u64>,
}

impl<'a> DatasetBuilder<'a> {
    /// Start a build over the monitoring outputs.
    pub fn new(
        geolocator: &'a Geolocator,
        dumps: &'a [ActivityDump],
        collector: &'a NotificationCollector,
    ) -> DatasetBuilder<'a> {
        DatasetBuilder {
            geolocator,
            dumps,
            collector,
            own_cookies: HashSet::new(),
            meta: Vec::new(),
            gaps: Vec::new(),
            coverage_horizon_secs: None,
        }
    }

    /// Exclude the scraper's own cookies.
    pub fn with_own_cookies(mut self, cookies: &[CookieId]) -> Self {
        self.own_cookies = cookies.iter().map(|c| c.0).collect();
        self
    }

    /// Attach per-account metadata (outlet labels, leak times, detection
    /// times).
    pub fn with_accounts(mut self, meta: Vec<AccountRecord>) -> Self {
        self.meta = meta;
        self
    }

    /// Attach the run's known monitoring gaps and enable per-account
    /// coverage computation against the given run horizon. Not calling
    /// this leaves `coverage` unset and `gaps` empty — the fault-free
    /// export shape.
    pub fn with_gaps(mut self, gaps: Vec<GapRecord>, horizon_secs: u64) -> Self {
        self.gaps = gaps;
        self.coverage_horizon_secs = Some(horizon_secs);
        self
    }

    /// Produce the dataset.
    pub fn build(self) -> Dataset {
        let mut per: BTreeMap<(u32, u64), PerCookie> = BTreeMap::new();

        // Activity rows from every dump (a row may appear in many dumps;
        // merging by (cookie, at) dedupes naturally through min/max).
        for dump in self.dumps {
            for row in &dump.rows {
                let key = (account_key(dump.account), row.cookie.0);
                let e = per.entry(key).or_default();
                let t = row.at.as_secs();
                e.first = Some(e.first.map_or(t, |f| f.min(t)));
                e.last = Some(e.last.map_or(t, |l| l.max(t)));
                let via_tor = self.geolocator.is_tor_exit(row.ip);
                e.row = Some((
                    row.ip.to_string(),
                    row.location.country.map(String::from),
                    row.location.city.to_string(),
                    row.location.point.lat,
                    row.location.point.lon,
                    row.fingerprint.browser.label().to_string(),
                    row.fingerprint.os.label().to_string(),
                    via_tor,
                ));
            }
        }

        // Notification counts per cookie.
        for n in self.collector.all() {
            let Some(cookie) = n.cookie else { continue };
            let key = (account_key(n.account), cookie.0);
            let e = per.entry(key).or_default();
            let t = n.at.as_secs();
            e.first = Some(e.first.map_or(t, |f| f.min(t)));
            e.last = Some(e.last.map_or(t, |l| l.max(t)));
            match n.kind {
                NotificationKind::Opened { .. } => e.opened += 1,
                NotificationKind::Sent { .. } => e.sent += 1,
                NotificationKind::DraftCopy { .. } => e.drafts += 1,
                NotificationKind::Starred { .. } => e.starred += 1,
                NotificationKind::Heartbeat => {}
            }
        }

        // Hijack attribution: the last foreign cookie seen on the account
        // before the scraper noticed the hijack.
        let hijack_time: BTreeMap<u32, u64> = self
            .meta
            .iter()
            .filter_map(|m| m.hijack_detected_secs.map(|t| (m.account, t)))
            .collect();
        let mut hijacker_of: BTreeMap<u32, u64> = BTreeMap::new();
        for (&(account, cookie), e) in &per {
            if self.own_cookies.contains(&cookie) {
                continue;
            }
            if let (Some(&ht), Some(last)) = (hijack_time.get(&account), e.last) {
                if last <= ht {
                    let slot = hijacker_of.entry(account).or_insert(cookie);
                    // lint:allow(panic-hazard): (account, *slot) was inserted into `per` by the loop above; a miss is a logic bug, not bad input
                    let best_last = per[&(account, *slot)].last.unwrap_or(0);
                    if last >= best_last {
                        *slot = cookie;
                    }
                }
            }
        }

        let mut accesses = Vec::new();
        for ((account, cookie), e) in per {
            if self.own_cookies.contains(&cookie) {
                continue; // the paper removed its own infrastructure's accesses
            }
            let (ip, country, city, lat, lon, browser, os, via_tor) = e.row.clone().unwrap_or((
                "0.0.0.0".to_string(),
                None,
                "Unknown".to_string(),
                0.0,
                0.0,
                "Unknown".to_string(),
                "Unknown".to_string(),
                false,
            ));
            // Paranoid IP-level filter (the paper filtered by IP *and* by
            // the infrastructure's city).
            if let Ok(parsed) = ip.parse::<std::net::Ipv4Addr>() {
                if AddressPlan::is_infra(parsed) {
                    continue;
                }
            }
            if e.row.is_some() && city == INFRA_CITY && !via_tor {
                continue;
            }
            let first = e.first.unwrap_or(0);
            let last = e.last.unwrap_or(first);
            accesses.push(ParsedAccess {
                account,
                cookie,
                first_seen_secs: first,
                last_seen_secs: last,
                has_location_row: e.row.is_some(),
                ip,
                country,
                city,
                lat,
                lon,
                browser,
                os,
                via_tor,
                opened: e.opened,
                sent: e.sent,
                drafts: e.drafts,
                starred: e.starred,
                hijacker: hijacker_of.get(&account) == Some(&cookie),
            });
        }

        let opened_texts = self
            .collector
            .opened_texts()
            .into_iter()
            .map(String::from)
            .collect();

        let mut accounts = self.meta;
        if let Some(horizon) = self.coverage_horizon_secs {
            for m in &mut accounts {
                m.coverage = Some(account_coverage(m, &self.gaps, horizon));
            }
        }

        Dataset {
            accesses,
            accounts,
            opened_texts,
            gaps: self.gaps,
        }
    }
}

/// Coverage of one account's observation window: the window runs from
/// the leak to the first detection (hijack or block) or the run horizon,
/// and every known gap clipped into it counts as blind time. Overlapping
/// gaps (say a provider maintenance inside a scraper outage) are merged
/// before measuring, so blind time is never double-counted.
fn account_coverage(m: &AccountRecord, gaps: &[GapRecord], horizon_secs: u64) -> f64 {
    let lo = m.leaked_at_secs;
    let hi = [m.hijack_detected_secs, m.block_detected_secs]
        .into_iter()
        .flatten()
        .min()
        .unwrap_or(horizon_secs)
        .min(horizon_secs);
    if hi <= lo {
        return 1.0;
    }
    let mut clipped: Vec<(u64, u64)> = gaps
        .iter()
        .filter(|g| g.account == m.account)
        .filter_map(|g| {
            let s = g.from_secs.max(lo);
            let e = g.until_secs.min(hi);
            (s < e).then_some((s, e))
        })
        .collect();
    clipped.sort_unstable();
    let mut blind = 0u64;
    let mut current: Option<(u64, u64)> = None;
    for (s, e) in clipped {
        match current {
            Some((cs, ce)) if s <= ce => current = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                blind += ce - cs;
                current = Some((s, e));
            }
            None => current = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = current {
        blind += ce - cs;
    }
    1.0 - blind as f64 / (hi - lo) as f64
}

fn account_key(a: AccountId) -> u32 {
    a.0
}

/// Convenience: timestamp seconds of a [`SimTime`].
pub fn secs(t: SimTime) -> u64 {
    t.as_secs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Notification;
    use pwnd_net::geo::GeoDb;
    use pwnd_net::tor::TorDirectory;
    use pwnd_net::useragent::{Browser, Fingerprint, Os};
    use pwnd_sim::Rng;
    use pwnd_webmail::activity::ActivityRow;

    fn geolocator() -> Geolocator {
        let geo = GeoDb::new();
        let plan = AddressPlan::new(&geo);
        let mut rng = Rng::seed_from(1);
        let tor = TorDirectory::generate(50, &mut rng);
        Geolocator::new(plan, geo, tor)
    }

    fn row(geo: &Geolocator, cookie: u64, at: u64, country: &str, rng: &mut Rng) -> ActivityRow {
        let ip = geo.plan().sample_host(country, rng);
        let loc = geo.locate(ip);
        ActivityRow {
            cookie: CookieId(cookie),
            at: SimTime::from_secs(at),
            ip,
            location: loc,
            fingerprint: Fingerprint {
                browser: Browser::Chrome,
                os: Os::Windows,
            },
        }
    }

    fn meta(account: u32) -> AccountRecord {
        AccountRecord {
            account,
            outlet: "paste".into(),
            advertised_region: None,
            leaked_at_secs: 0,
            hijack_detected_secs: None,
            block_detected_secs: None,
            coverage: None,
        }
    }

    #[test]
    fn merges_dumps_and_notifications() {
        let geo = geolocator();
        let mut rng = Rng::seed_from(2);
        let dumps = vec![
            ActivityDump {
                account: AccountId(0),
                at: SimTime::from_secs(100),
                rows: vec![row(&geo, 7, 50, "BR", &mut rng)],
            },
            ActivityDump {
                account: AccountId(0),
                at: SimTime::from_secs(200),
                rows: vec![row(&geo, 7, 150, "BR", &mut rng)],
            },
        ];
        let mut col = NotificationCollector::new();
        col.receive(Notification {
            account: AccountId(0),
            at: SimTime::from_secs(170),
            seq: 0,
            cookie: Some(CookieId(7)),
            kind: NotificationKind::Opened {
                email: pwnd_corpus::email::EmailId(1),
                text: "payment info".into(),
            },
        });
        let ds = DatasetBuilder::new(&geo, &dumps, &col)
            .with_accounts(vec![meta(0)])
            .build();
        assert_eq!(ds.accesses.len(), 1);
        let a = &ds.accesses[0];
        assert_eq!(a.cookie, 7);
        assert_eq!(a.first_seen_secs, 50);
        assert_eq!(a.last_seen_secs, 170);
        assert_eq!(a.opened, 1);
        assert_eq!(a.country.as_deref(), Some("BR"));
        assert_eq!(ds.opened_texts, vec!["payment info".to_string()]);
    }

    #[test]
    fn own_cookies_and_infra_are_filtered() {
        let geo = geolocator();
        let mut rng = Rng::seed_from(3);
        let infra_ip = AddressPlan::sample_infra(&mut rng);
        let infra_row = ActivityRow {
            cookie: CookieId(99),
            at: SimTime::from_secs(10),
            ip: infra_ip,
            location: geo.locate(infra_ip),
            fingerprint: Fingerprint {
                browser: Browser::Chrome,
                os: Os::Linux,
            },
        };
        let dumps = vec![ActivityDump {
            account: AccountId(0),
            at: SimTime::from_secs(20),
            rows: vec![infra_row, row(&geo, 5, 15, "US", &mut rng)],
        }];
        let col = NotificationCollector::new();
        let ds = DatasetBuilder::new(&geo, &dumps, &col)
            .with_own_cookies(&[CookieId(99)])
            .with_accounts(vec![meta(0)])
            .build();
        assert_eq!(ds.accesses.len(), 1);
        assert_eq!(ds.accesses[0].cookie, 5);
    }

    #[test]
    fn infra_city_accesses_dropped_even_with_foreign_cookie() {
        let geo = geolocator();
        let mut rng = Rng::seed_from(4);
        // A GB host that happens to geolocate to the infra city (London).
        let mut london_row = None;
        for _ in 0..500 {
            let r = row(&geo, 6, 15, "GB", &mut rng);
            if r.location.city == INFRA_CITY {
                london_row = Some(r);
                break;
            }
        }
        let london_row = london_row.expect("London is the heaviest GB city");
        let dumps = vec![ActivityDump {
            account: AccountId(0),
            at: SimTime::from_secs(20),
            rows: vec![london_row],
        }];
        let col = NotificationCollector::new();
        let ds = DatasetBuilder::new(&geo, &dumps, &col)
            .with_accounts(vec![meta(0)])
            .build();
        assert!(ds.accesses.is_empty());
    }

    #[test]
    fn tor_exit_accesses_flagged() {
        let geo = geolocator();
        let mut rng = Rng::seed_from(5);
        let tor_ip = geo.tor().sample_exit(&mut rng);
        let tor_row = ActivityRow {
            cookie: CookieId(8),
            at: SimTime::from_secs(30),
            ip: tor_ip,
            location: geo.locate(tor_ip),
            fingerprint: Fingerprint {
                browser: Browser::Unknown,
                os: Os::Windows,
            },
        };
        let dumps = vec![ActivityDump {
            account: AccountId(0),
            at: SimTime::from_secs(40),
            rows: vec![tor_row],
        }];
        let col = NotificationCollector::new();
        let ds = DatasetBuilder::new(&geo, &dumps, &col)
            .with_accounts(vec![meta(0)])
            .build();
        assert_eq!(ds.accesses.len(), 1);
        assert!(ds.accesses[0].via_tor);
        assert_eq!(ds.accesses[0].browser, "Unknown");
    }

    #[test]
    fn hijack_attributed_to_last_cookie_before_detection() {
        let geo = geolocator();
        let mut rng = Rng::seed_from(6);
        let dumps = vec![ActivityDump {
            account: AccountId(0),
            at: SimTime::from_secs(300),
            rows: vec![
                row(&geo, 1, 50, "US", &mut rng),
                row(&geo, 2, 200, "RU", &mut rng),
            ],
        }];
        let col = NotificationCollector::new();
        let mut m = meta(0);
        m.hijack_detected_secs = Some(250);
        let ds = DatasetBuilder::new(&geo, &dumps, &col)
            .with_accounts(vec![m])
            .build();
        let hijackers: Vec<u64> = ds
            .accesses
            .iter()
            .filter(|a| a.hijacker)
            .map(|a| a.cookie)
            .collect();
        assert_eq!(hijackers, vec![2]);
    }

    #[test]
    fn json_roundtrip() {
        let geo = geolocator();
        let mut rng = Rng::seed_from(7);
        let dumps = vec![ActivityDump {
            account: AccountId(0),
            at: SimTime::from_secs(20),
            rows: vec![row(&geo, 5, 15, "DE", &mut rng)],
        }];
        let col = NotificationCollector::new();
        let ds = DatasetBuilder::new(&geo, &dumps, &col)
            .with_accounts(vec![meta(0)])
            .build();
        let json = ds.to_json();
        let back = Dataset::from_json(&json).unwrap();
        assert_eq!(back.accesses, ds.accesses);
        assert_eq!(back.accounts, ds.accounts);
    }

    #[test]
    fn coverage_reflects_clipped_merged_gaps() {
        let geo = geolocator();
        let col = NotificationCollector::new();
        let mut m = meta(0);
        m.leaked_at_secs = 100;
        // Observation window [100, 1100); two overlapping gaps and one
        // outside the window.
        let gaps = vec![
            GapRecord {
                account: 0,
                kind: "scraper".into(),
                from_secs: 200,
                until_secs: 400,
            },
            GapRecord {
                account: 0,
                kind: "maintenance".into(),
                from_secs: 300,
                until_secs: 500,
            },
            GapRecord {
                account: 0,
                kind: "scraper".into(),
                from_secs: 5_000,
                until_secs: 6_000,
            },
        ];
        let ds = DatasetBuilder::new(&geo, &[], &col)
            .with_accounts(vec![m])
            .with_gaps(gaps, 1_100)
            .build();
        // Merged blind time is [200, 500) = 300s of a 1000s window.
        let cov = ds.accounts[0].coverage.unwrap();
        assert!((cov - 0.7).abs() < 1e-9, "coverage {cov}");
        assert_eq!(ds.gaps.len(), 3);
    }

    #[test]
    fn coverage_window_ends_at_detection() {
        let geo = geolocator();
        let col = NotificationCollector::new();
        let mut m = meta(0);
        m.hijack_detected_secs = Some(600);
        // Gap [400, 800) clips to [400, 600): 200s of a 600s window.
        let gaps = vec![GapRecord {
            account: 0,
            kind: "scraper".into(),
            from_secs: 400,
            until_secs: 800,
        }];
        let ds = DatasetBuilder::new(&geo, &[], &col)
            .with_accounts(vec![m])
            .with_gaps(gaps, 10_000)
            .build();
        let cov = ds.accounts[0].coverage.unwrap();
        assert!((cov - 2.0 / 3.0).abs() < 1e-9, "coverage {cov}");
    }

    #[test]
    fn gapless_build_keeps_legacy_json_shape() {
        let geo = geolocator();
        let col = NotificationCollector::new();
        let ds = DatasetBuilder::new(&geo, &[], &col)
            .with_accounts(vec![meta(0)])
            .build();
        let json = ds.to_json();
        assert!(!json.contains("\"gaps\""));
        assert!(!json.contains("\"coverage\""));
        let back = Dataset::from_json(&json).unwrap();
        assert_eq!(back.accounts, ds.accounts);
        assert!(back.gaps.is_empty());
    }

    #[test]
    fn json_roundtrip_with_gaps_and_coverage() {
        let geo = geolocator();
        let col = NotificationCollector::new();
        let gaps = vec![GapRecord {
            account: 0,
            kind: "heartbeat".into(),
            from_secs: 10,
            until_secs: 20,
        }];
        let ds = DatasetBuilder::new(&geo, &[], &col)
            .with_accounts(vec![meta(0)])
            .with_gaps(gaps, 100)
            .build();
        let json = ds.to_json();
        assert!(json.contains("\"gaps\""));
        let back = Dataset::from_json(&json).unwrap();
        assert_eq!(back.gaps, ds.gaps);
        assert_eq!(back.accounts, ds.accounts);
    }

    #[test]
    fn outlet_filtering_and_counts() {
        let geo = geolocator();
        let mut rng = Rng::seed_from(8);
        let dumps = vec![
            ActivityDump {
                account: AccountId(0),
                at: SimTime::from_secs(20),
                rows: vec![row(&geo, 5, 15, "DE", &mut rng)],
            },
            ActivityDump {
                account: AccountId(1),
                at: SimTime::from_secs(20),
                rows: vec![row(&geo, 6, 16, "FR", &mut rng)],
            },
        ];
        let col = NotificationCollector::new();
        let mut m1 = meta(0);
        m1.outlet = "malware".into();
        let ds = DatasetBuilder::new(&geo, &dumps, &col)
            .with_accounts(vec![m1, meta(1)])
            .build();
        assert_eq!(ds.accesses_for_outlet("malware").count(), 1);
        assert_eq!(ds.accesses_for_outlet("paste").count(), 1);
        assert_eq!(ds.accounts_with_accesses(), 2);
    }
}
