//! Mailbox automation rules.
//!
//! §2 of the paper lists, among the webmail capabilities criminals can
//! exploit, the ability to "organize their email by placing related
//! messages in folders, or assigning them descriptive labels. Such
//! operations can be automated by creating rules that automatically
//! process received emails." Rules matter for two reasons:
//!
//! * the legitimate owner's rules are part of what makes an account look
//!   *lived-in* to an attacker assessing it;
//! * an attacker-created rule (auto-forward, auto-archive of security
//!   notices) is a classic persistence trick — the paper observed none,
//!   but the capability must exist for that observation to mean anything.

use pwnd_corpus::email::Email;

/// What part of a message a rule matches on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Matcher {
    /// Case-insensitive substring of the sender address.
    FromContains(String),
    /// Case-insensitive substring of the subject.
    SubjectContains(String),
    /// Case-insensitive substring of the body.
    BodyContains(String),
}

impl Matcher {
    /// Whether this matcher fires for `email`.
    pub fn matches(&self, email: &Email) -> bool {
        let has =
            |haystack: &str, needle: &str| haystack.to_lowercase().contains(&needle.to_lowercase());
        match self {
            Matcher::FromContains(n) => has(&email.from, n),
            Matcher::SubjectContains(n) => has(&email.subject, n),
            Matcher::BodyContains(n) => has(&email.body, n),
        }
    }
}

/// What a rule does when it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuleAction {
    /// Apply a label.
    ApplyLabel(String),
    /// Mark the message as read (skip-the-inbox semantics).
    MarkRead,
    /// Star the message.
    Star,
}

/// One automation rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// When the rule fires.
    pub matcher: Matcher,
    /// What it does.
    pub action: RuleAction,
}

/// A per-account ordered rule list.
#[derive(Clone, Debug, Default)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// An empty rule set.
    pub fn new() -> RuleSet {
        RuleSet::default()
    }

    /// Append a rule (rules apply in insertion order).
    pub fn add(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The actions that fire for `email`, in rule order.
    pub fn actions_for(&self, email: &Email) -> Vec<&RuleAction> {
        self.rules
            .iter()
            .filter(|r| r.matcher.matches(email))
            .map(|r| &r.action)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_corpus::email::{EmailId, MailTime};

    fn email(from: &str, subject: &str, body: &str) -> Email {
        Email {
            id: EmailId(1),
            from: from.into(),
            to: vec!["me@x".into()],
            subject: subject.into(),
            body: body.into(),
            timestamp: MailTime(0),
        }
    }

    #[test]
    fn matchers_are_case_insensitive() {
        let m = Matcher::SubjectContains("Invoice".into());
        assert!(m.matches(&email("a@x", "your INVOICE is ready", "")));
        assert!(!m.matches(&email("a@x", "lunch", "")));
        let f = Matcher::FromContains("payroll@".into());
        assert!(f.matches(&email("PAYROLL@corp.example", "x", "")));
        let b = Matcher::BodyContains("wire transfer".into());
        assert!(b.matches(&email("a@x", "s", "the Wire Transfer cleared")));
    }

    #[test]
    fn rules_fire_in_order() {
        let mut rs = RuleSet::new();
        rs.add(Rule {
            matcher: Matcher::SubjectContains("report".into()),
            action: RuleAction::ApplyLabel("reports".into()),
        });
        rs.add(Rule {
            matcher: Matcher::FromContains("boss@".into()),
            action: RuleAction::Star,
        });
        let e = email("boss@corp.example", "weekly report", "numbers inside");
        let actions = rs.actions_for(&e);
        assert_eq!(
            actions,
            vec![&RuleAction::ApplyLabel("reports".into()), &RuleAction::Star]
        );
    }

    #[test]
    fn non_matching_rules_do_nothing() {
        let mut rs = RuleSet::new();
        rs.add(Rule {
            matcher: Matcher::BodyContains("bitcoin".into()),
            action: RuleAction::MarkRead,
        });
        assert!(rs.actions_for(&email("a@x", "s", "plain mail")).is_empty());
        assert_eq!(rs.len(), 1);
        assert!(!rs.is_empty());
    }
}
