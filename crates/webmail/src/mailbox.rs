//! Per-account mailbox: folders, flags, drafts.
//!
//! Mirrors the Gmail surface described in the paper's §2: an Inbox with
//! unread messages in boldface (the `read` flag), starring, labels,
//! a Drafts folder for unsent content, and a Sent folder.

use pwnd_corpus::email::{Email, EmailId};
use std::collections::{BTreeMap, HashSet};

/// The folder an entry lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Folder {
    /// Received mail.
    Inbox,
    /// Sent mail.
    Sent,
    /// Unsent drafts.
    Drafts,
}

/// A message plus its mailbox metadata.
#[derive(Clone, Debug)]
pub struct Entry {
    /// The message.
    pub email: Email,
    /// Which folder it lives in.
    pub folder: Folder,
    /// Whether it has been opened.
    pub read: bool,
    /// Whether it is starred.
    pub starred: bool,
    /// User-assigned labels.
    pub labels: HashSet<String>,
}

/// A single account's mail store.
#[derive(Clone, Debug, Default)]
pub struct Mailbox {
    entries: BTreeMap<EmailId, Entry>,
}

impl Mailbox {
    /// An empty mailbox.
    pub fn new() -> Mailbox {
        Mailbox::default()
    }

    /// Deliver a message into the Inbox, unread.
    pub fn deliver(&mut self, email: Email) {
        let id = email.id;
        self.entries.insert(
            id,
            Entry {
                email,
                folder: Folder::Inbox,
                read: false,
                starred: false,
                labels: HashSet::new(), // lint:allow(alloc-hot): empty label set; allocates only when a label lands
            },
        );
    }

    /// Store a draft.
    pub fn store_draft(&mut self, email: Email) {
        let id = email.id;
        self.entries.insert(
            id,
            Entry {
                email,
                folder: Folder::Drafts,
                read: true,
                starred: false,
                labels: HashSet::new(),
            },
        );
    }

    /// Record a sent message in the Sent folder.
    pub fn record_sent(&mut self, email: Email) {
        let id = email.id;
        self.entries.insert(
            id,
            Entry {
                email,
                folder: Folder::Sent,
                read: true,
                starred: false,
                labels: HashSet::new(), // lint:allow(alloc-hot): empty label set; allocates only when a label lands
            },
        );
    }

    /// Open a message: marks it read, returns it. `None` if absent.
    pub fn open(&mut self, id: EmailId) -> Option<&Email> {
        let e = self.entries.get_mut(&id)?;
        e.read = true;
        Some(&e.email)
    }

    /// Star a message. Returns `false` if absent.
    pub fn star(&mut self, id: EmailId) -> bool {
        match self.entries.get_mut(&id) {
            Some(e) => {
                e.starred = true;
                true
            }
            None => false,
        }
    }

    /// Apply a label. Returns `false` if absent.
    pub fn label(&mut self, id: EmailId, label: &str) -> bool {
        match self.entries.get_mut(&id) {
            Some(e) => {
                e.labels.insert(label.to_string()); // lint:allow(alloc-hot): the mailbox owns its label strings
                true
            }
            None => false,
        }
    }

    /// Move a draft out of Drafts into Sent (on successful send).
    /// Returns the message, or `None` if `id` is not a draft.
    pub fn promote_draft(&mut self, id: EmailId) -> Option<Email> {
        match self.entries.get_mut(&id) {
            Some(e) if e.folder == Folder::Drafts => {
                e.folder = Folder::Sent;
                Some(e.email.clone())
            }
            _ => None,
        }
    }

    /// Look up without side effects.
    pub fn get(&self, id: EmailId) -> Option<&Entry> {
        self.entries.get(&id)
    }

    /// Ids in a folder, newest first (Gmail's default ordering).
    pub fn list(&self, folder: Folder) -> Vec<EmailId> {
        let mut v: Vec<(&EmailId, &Entry)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.folder == folder)
            .collect();
        v.sort_by_key(|(_, e)| std::cmp::Reverse(e.email.timestamp));
        v.into_iter().map(|(id, _)| *id).collect()
    }

    /// Unread ids in the Inbox (the boldface messages).
    pub fn unread(&self) -> Vec<EmailId> {
        self.list(Folder::Inbox)
            .into_iter()
            .filter(|id| !self.entries[id].read)
            .collect()
    }

    /// All entries, in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.values()
    }

    /// Message count across all folders.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the mailbox is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_corpus::email::MailTime;

    fn email(id: u64, ts: i64) -> Email {
        Email {
            id: EmailId(id),
            from: "x@example.com".into(),
            to: vec!["y@example.com".into()],
            subject: format!("msg {id}"),
            body: "body".into(),
            timestamp: MailTime(ts),
        }
    }

    #[test]
    fn delivered_mail_is_unread_in_inbox() {
        let mut mb = Mailbox::new();
        mb.deliver(email(1, -100));
        assert_eq!(mb.unread(), vec![EmailId(1)]);
        assert_eq!(mb.list(Folder::Inbox), vec![EmailId(1)]);
        assert!(mb.list(Folder::Sent).is_empty());
    }

    #[test]
    fn open_marks_read() {
        let mut mb = Mailbox::new();
        mb.deliver(email(1, -100));
        assert!(mb.open(EmailId(1)).is_some());
        assert!(mb.unread().is_empty());
        assert!(mb.open(EmailId(99)).is_none());
    }

    #[test]
    fn inbox_lists_newest_first() {
        let mut mb = Mailbox::new();
        mb.deliver(email(1, -300));
        mb.deliver(email(2, -100));
        mb.deliver(email(3, -200));
        assert_eq!(
            mb.list(Folder::Inbox),
            vec![EmailId(2), EmailId(3), EmailId(1)]
        );
    }

    #[test]
    fn star_and_label() {
        let mut mb = Mailbox::new();
        mb.deliver(email(1, 0));
        assert!(mb.star(EmailId(1)));
        assert!(mb.label(EmailId(1), "important"));
        let e = mb.get(EmailId(1)).unwrap();
        assert!(e.starred);
        assert!(e.labels.contains("important"));
        assert!(!mb.star(EmailId(2)));
        assert!(!mb.label(EmailId(2), "x"));
    }

    #[test]
    fn draft_lifecycle() {
        let mut mb = Mailbox::new();
        mb.store_draft(email(5, 10));
        assert_eq!(mb.list(Folder::Drafts), vec![EmailId(5)]);
        let sent = mb.promote_draft(EmailId(5)).unwrap();
        assert_eq!(sent.id, EmailId(5));
        assert!(mb.list(Folder::Drafts).is_empty());
        assert_eq!(mb.list(Folder::Sent), vec![EmailId(5)]);
        // Promoting a non-draft is a no-op.
        assert!(mb.promote_draft(EmailId(5)).is_none());
    }

    #[test]
    fn record_sent_lands_in_sent() {
        let mut mb = Mailbox::new();
        mb.record_sent(email(7, 20));
        assert_eq!(mb.list(Folder::Sent), vec![EmailId(7)]);
        assert!(mb.get(EmailId(7)).unwrap().read);
    }
}
