//! Provider security: the suspicious-login filter and the abuse detector.
//!
//! Two distinct Gmail mechanisms appear in the paper:
//!
//! * The **suspicious login filter** (location-based login risk analysis).
//!   Google *disabled* it for the honey accounts so that accesses would
//!   get through ("most accesses would be blocked if Google did not
//!   disable the login filters"). We implement it anyway — toggling it is
//!   one of our ablation benches — scoring each login by Tor membership,
//!   distance from the account's habitual locations, and device novelty.
//! * The **abuse detector**, which stayed enabled and blocked 42 of the
//!   100 accounts during the experiment. It accumulates per-account abuse
//!   signals (outbound spam bursts, extortion-looking content, hijack
//!   following an anonymized login) and suspends the account when the
//!   score crosses a threshold.

use crate::account::AccountId;
use pwnd_sim::{SimDuration, SimTime};
use pwnd_telemetry::TelemetrySink;
use std::collections::HashMap;

/// Tunable security policy.
#[derive(Clone, Debug)]
pub struct SecurityPolicy {
    /// Whether the location-based login filter is active. `false` for the
    /// paper's honey accounts (§3.4 ethics).
    pub login_filter_enabled: bool,
    /// A login farther than this from every habitual location is
    /// suspicious.
    pub suspicious_distance_km: f64,
    /// Risk score at or above which a login is rejected (when the filter
    /// is enabled).
    pub login_reject_threshold: f64,
    /// Sliding window for outbound send bursts.
    pub spam_window: SimDuration,
    /// Sends within the window beyond which each extra send is an abuse
    /// signal.
    pub spam_window_max: u32,
    /// Spam-track score at which the account is blocked. With the default
    /// per-send points this lets a spammer fire roughly a hundred messages
    /// before suspension — the paper's 845 sent emails across ~8 spammer
    /// accesses imply exactly that order of magnitude.
    pub spam_block_threshold: f64,
    /// Anomaly-track score at which the account is blocked. A hijack plus
    /// a handful of anonymized logins reaches it; ordinary curious logins
    /// do not. Calibrated against the paper's 42 blocked accounts.
    pub anomaly_block_threshold: f64,
}

impl Default for SecurityPolicy {
    fn default() -> Self {
        SecurityPolicy {
            login_filter_enabled: false,
            suspicious_distance_km: 1_000.0,
            login_reject_threshold: 2.0,
            spam_window: SimDuration::hours(1),
            spam_window_max: 25,
            spam_block_threshold: 60.0,
            anomaly_block_threshold: 6.0,
        }
    }
}

/// Per-login inputs to the risk engine.
#[derive(Clone, Copy, Debug)]
pub struct LoginSignals {
    /// The source IP is a Tor exit.
    pub via_tor: bool,
    /// Distance (km) from the nearest habitual login location, if any
    /// habitual location is known.
    pub distance_from_habitual_km: Option<f64>,
    /// The device presented no previously issued cookie.
    pub new_device: bool,
}

/// Location-based login risk analysis.
#[derive(Clone, Debug)]
pub struct RiskEngine {
    policy: SecurityPolicy,
    telemetry: TelemetrySink,
}

impl RiskEngine {
    /// Build with a policy.
    pub fn new(policy: SecurityPolicy) -> RiskEngine {
        RiskEngine {
            policy,
            telemetry: TelemetrySink::disabled(),
        }
    }

    /// Attach a telemetry sink; every scored login feeds the
    /// `security.risk_score_milli` histogram.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    /// Risk score for a login. 0 is benign; ≥ `login_reject_threshold`
    /// rejects when the filter is enabled.
    pub fn score(&self, s: LoginSignals) -> f64 {
        let mut score = 0.0;
        if s.via_tor {
            score += 2.0;
        }
        match s.distance_from_habitual_km {
            Some(d) if d > self.policy.suspicious_distance_km => {
                // Scale with how far beyond the threshold the login is.
                score += 1.0 + (d / self.policy.suspicious_distance_km).min(3.0) * 0.5;
            }
            _ => {}
        }
        if s.new_device {
            score += 0.5;
        }
        self.telemetry
            .observe("security.risk_score_milli", (score * 1000.0) as u64);
        score
    }

    /// Whether this login would be rejected under the current policy.
    pub fn rejects(&self, s: LoginSignals) -> bool {
        self.policy.login_filter_enabled && self.score(s) >= self.policy.login_reject_threshold
    }

    /// The active policy.
    pub fn policy(&self) -> &SecurityPolicy {
        &self.policy
    }
}

/// Content flags the outbound-mail scanner can raise.
#[derive(Clone, Copy, Debug, Default)]
pub struct ContentFlags {
    /// Extortion-looking content (ransom demands, cryptocurrency wallets).
    pub extortion: bool,
    /// Many distinct external recipients (spam fan-out).
    pub bulk_recipients: bool,
}

/// Accumulates abuse signals and decides when to block.
///
/// Two independent tracks mirror how real providers separate signals:
///
/// * the **spam track** reacts to outbound volume and content — fast for
///   extortion, slower for plain bursts;
/// * the **anomaly track** integrates hijacks and risky logins — a
///   password change from Tor plus continued anonymized access crosses
///   it, while a few curious logins never do.
#[derive(Clone, Debug)]
pub struct AbuseDetector {
    policy: SecurityPolicy,
    spam_scores: HashMap<AccountId, f64>,
    anomaly_scores: HashMap<AccountId, f64>,
    recent_sends: HashMap<AccountId, Vec<SimTime>>,
    telemetry: TelemetrySink,
}

impl AbuseDetector {
    /// Build with a policy.
    pub fn new(policy: SecurityPolicy) -> AbuseDetector {
        AbuseDetector {
            policy,
            spam_scores: HashMap::new(),
            anomaly_scores: HashMap::new(),
            recent_sends: HashMap::new(),
            telemetry: TelemetrySink::disabled(),
        }
    }

    /// Attach a telemetry sink; threshold trips feed the
    /// `security.spam_trips` / `security.anomaly_trips` counters.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    fn add_spam(&mut self, account: AccountId, points: f64) -> bool {
        let s = self.spam_scores.entry(account).or_insert(0.0);
        let was_below = *s < self.policy.spam_block_threshold;
        *s += points;
        let tripped = *s >= self.policy.spam_block_threshold;
        if tripped && was_below {
            self.telemetry.count("security.spam_trips");
        }
        tripped
    }

    fn add_anomaly(&mut self, account: AccountId, points: f64) -> bool {
        let s = self.anomaly_scores.entry(account).or_insert(0.0);
        let was_below = *s < self.policy.anomaly_block_threshold;
        *s += points;
        let tripped = *s >= self.policy.anomaly_block_threshold;
        if tripped && was_below {
            self.telemetry.count("security.anomaly_trips");
        }
        tripped
    }

    /// Record an outbound send. Returns `true` if the account should now
    /// be blocked.
    pub fn note_send(
        &mut self,
        account: AccountId,
        at: SimTime,
        recipients: usize,
        flags: ContentFlags,
    ) -> bool {
        let window = self.policy.spam_window;
        let sends = self.recent_sends.entry(account).or_default();
        sends.retain(|&t| at.since(t) <= window);
        sends.push(at);
        let mut points = 0.0;
        if sends.len() as u32 > self.policy.spam_window_max {
            points += 1.0; // every send beyond the burst limit
        }
        if flags.extortion {
            points += 6.0; // extortion content draws attention fast
        }
        if flags.bulk_recipients || recipients > 5 {
            points += 1.0;
        }
        self.add_spam(account, points)
    }

    /// Record a password change. Anonymized-origin hijacks score higher.
    /// Returns `true` if the account should now be blocked.
    pub fn note_password_change(&mut self, account: AccountId, via_tor: bool) -> bool {
        self.add_anomaly(account, if via_tor { 6.0 } else { 5.0 })
    }

    /// Record a successful login's risk score (a trickle of anomalous
    /// logins eventually draws attention even without outbound abuse).
    /// Returns `true` if the account should now be blocked.
    pub fn note_login_risk(&mut self, account: AccountId, risk_score: f64) -> bool {
        self.add_anomaly(account, risk_score * 0.18)
    }

    /// Current combined abuse score (diagnostics).
    pub fn score_of(&self, account: AccountId) -> f64 {
        self.spam_scores.get(&account).copied().unwrap_or(0.0)
            + self.anomaly_scores.get(&account).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_policy() -> SecurityPolicy {
        SecurityPolicy {
            login_filter_enabled: true,
            ..SecurityPolicy::default()
        }
    }

    #[test]
    fn tor_login_rejected_when_filter_enabled() {
        let engine = RiskEngine::new(enabled_policy());
        let s = LoginSignals {
            via_tor: true,
            distance_from_habitual_km: None,
            new_device: true,
        };
        assert!(engine.rejects(s));
    }

    #[test]
    fn tor_login_allowed_when_filter_disabled() {
        let engine = RiskEngine::new(SecurityPolicy::default());
        let s = LoginSignals {
            via_tor: true,
            distance_from_habitual_km: Some(8_000.0),
            new_device: true,
        };
        assert!(!engine.rejects(s));
        assert!(engine.score(s) > 2.0);
    }

    #[test]
    fn nearby_known_device_is_benign() {
        let engine = RiskEngine::new(enabled_policy());
        let s = LoginSignals {
            via_tor: false,
            distance_from_habitual_km: Some(30.0),
            new_device: false,
        };
        assert_eq!(engine.score(s), 0.0);
        assert!(!engine.rejects(s));
    }

    #[test]
    fn distant_login_scores_with_distance() {
        let engine = RiskEngine::new(enabled_policy());
        let near = LoginSignals {
            via_tor: false,
            distance_from_habitual_km: Some(1_500.0),
            new_device: false,
        };
        let far = LoginSignals {
            via_tor: false,
            distance_from_habitual_km: Some(9_000.0),
            new_device: false,
        };
        assert!(engine.score(far) > engine.score(near));
        assert!(engine.rejects(far));
    }

    #[test]
    fn spam_burst_blocks_account() {
        let mut det = AbuseDetector::new(SecurityPolicy::default());
        let acct = AccountId(1);
        let mut blocked = false;
        for i in 0..150 {
            blocked = det.note_send(acct, SimTime::from_secs(i * 30), 1, ContentFlags::default());
            if blocked {
                break;
            }
        }
        assert!(blocked, "sustained burst must block");
    }

    #[test]
    fn slow_senders_are_not_blocked() {
        let mut det = AbuseDetector::new(SecurityPolicy::default());
        let acct = AccountId(2);
        for day in 0..30 {
            let at = SimTime::ZERO + SimDuration::days(day);
            assert!(!det.note_send(acct, at, 1, ContentFlags::default()));
        }
        assert!(det.score_of(acct) < 1.0);
    }

    #[test]
    fn extortion_content_accelerates_blocking() {
        let mut det = AbuseDetector::new(SecurityPolicy::default());
        let acct = AccountId(3);
        let flags = ContentFlags {
            extortion: true,
            bulk_recipients: false,
        };
        let mut steps = 0;
        for i in 0..40u64 {
            steps = i + 1;
            if det.note_send(acct, SimTime::from_secs(i * 30), 1, flags) {
                break;
            }
        }
        assert!(steps < 12, "extortion took {steps} sends to block");
    }

    #[test]
    fn hijack_via_tor_scores_double() {
        let mut a = AbuseDetector::new(SecurityPolicy::default());
        let mut b = AbuseDetector::new(SecurityPolicy::default());
        a.note_password_change(AccountId(1), true);
        b.note_password_change(AccountId(1), false);
        assert!(a.score_of(AccountId(1)) > b.score_of(AccountId(1)));
    }

    #[test]
    fn login_risk_trickle_accumulates() {
        let mut det = AbuseDetector::new(SecurityPolicy::default());
        let acct = AccountId(4);
        let mut logins_to_block = 0;
        for i in 1..=100 {
            if det.note_login_risk(acct, 3.0) {
                logins_to_block = i;
                break;
            }
        }
        // 3.0 * 0.18 = 0.54/login; threshold 6.0 => ~12 risky logins.
        assert!((9..=14).contains(&logins_to_block), "{logins_to_block}");
    }
}
