//! Message routing and the sinkhole mailserver.
//!
//! The researchers changed each honey account's default send-from address
//! to point at a mailserver under their control: every message an
//! attacker sends is delivered *only* to that sinkhole, which "simply
//! dumps the emails to disk and does not forward them to the intended
//! destination" (§3.1). [`MailRouter`] implements both paths — internal
//! delivery between service accounts and the sinkhole diversion — and
//! [`Sinkhole`] is the dump-to-disk store (in-memory here, exportable).

use crate::account::AccountId;
use pwnd_corpus::email::Email;
use pwnd_sim::SimTime;
use std::collections::HashMap;

/// Where a message ended up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// Delivered to another account on this service.
    Internal(AccountId),
    /// Diverted to the researchers' sinkhole (never reaches the intended
    /// recipient).
    Sinkholed,
    /// Would have left the service toward the open Internet. Only happens
    /// when no send-from override is configured; honey accounts never
    /// produce this.
    External,
}

/// A message captured by the sinkhole.
#[derive(Clone, Debug)]
pub struct SinkholedMessage {
    /// Which account sent it.
    pub from_account: AccountId,
    /// When it was sent.
    pub at: SimTime,
    /// The message (with its intended recipients intact, for analysis).
    pub email: Email,
}

/// The researchers' catch-all mailserver.
#[derive(Clone, Debug, Default)]
pub struct Sinkhole {
    messages: Vec<SinkholedMessage>,
}

impl Sinkhole {
    /// An empty sinkhole.
    pub fn new() -> Sinkhole {
        Sinkhole::default()
    }

    /// Dump a message.
    pub fn capture(&mut self, msg: SinkholedMessage) {
        self.messages.push(msg);
    }

    /// Everything captured so far.
    pub fn messages(&self) -> &[SinkholedMessage] {
        &self.messages
    }

    /// Count of captured messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }
}

/// Routes outbound messages.
#[derive(Clone, Debug, Default)]
pub struct MailRouter {
    /// address -> internal account.
    directory: HashMap<String, AccountId>,
}

impl MailRouter {
    /// An empty router.
    pub fn new() -> MailRouter {
        MailRouter::default()
    }

    /// Register an internal address.
    pub fn register(&mut self, address: String, account: AccountId) {
        self.directory.insert(address, account);
    }

    /// Resolve an internal address.
    pub fn resolve(&self, address: &str) -> Option<AccountId> {
        self.directory.get(address).copied()
    }

    /// Route one outbound message from `sender`. If the sender has a
    /// send-from override the message is sinkholed regardless of
    /// recipients; otherwise each recipient routes independently.
    pub fn route(
        &self,
        sender: AccountId,
        has_override: bool,
        email: &Email,
        at: SimTime,
        sinkhole: &mut Sinkhole,
    ) -> Vec<Delivery> {
        if has_override {
            sinkhole.capture(SinkholedMessage {
                from_account: sender,
                at,
                email: email.clone(), // lint:allow(alloc-hot): the sinkhole archives its own copy of the message
            });
            return vec![Delivery::Sinkholed]; // lint:allow(alloc-hot): one-element verdict is the fn's return value
        }
        email
            .to
            .iter()
            .map(|rcpt| match self.resolve(rcpt) {
                Some(acct) => Delivery::Internal(acct),
                None => Delivery::External,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_corpus::email::{EmailId, MailTime};

    fn email(to: Vec<&str>) -> Email {
        Email {
            id: EmailId(1),
            from: "honey@honeymail.example".into(),
            to: to.into_iter().map(String::from).collect(),
            subject: "s".into(),
            body: "b".into(),
            timestamp: MailTime(0),
        }
    }

    #[test]
    fn override_sinkholes_everything() {
        let router = MailRouter::new();
        let mut sink = Sinkhole::new();
        let deliveries = router.route(
            AccountId(1),
            true,
            &email(vec!["victim@gmail.example", "other@x.example"]),
            SimTime::ZERO,
            &mut sink,
        );
        assert_eq!(deliveries, vec![Delivery::Sinkholed]);
        assert_eq!(sink.len(), 1);
        // Intended recipients are preserved for analysis.
        assert_eq!(sink.messages()[0].email.to.len(), 2);
    }

    #[test]
    fn internal_delivery_resolves() {
        let mut router = MailRouter::new();
        router.register("bob@honeymail.example".into(), AccountId(7));
        let mut sink = Sinkhole::new();
        let deliveries = router.route(
            AccountId(1),
            false,
            &email(vec!["bob@honeymail.example"]),
            SimTime::ZERO,
            &mut sink,
        );
        assert_eq!(deliveries, vec![Delivery::Internal(AccountId(7))]);
        assert!(sink.is_empty());
    }

    #[test]
    fn unknown_recipients_route_external() {
        let router = MailRouter::new();
        let mut sink = Sinkhole::new();
        let deliveries = router.route(
            AccountId(1),
            false,
            &email(vec!["stranger@elsewhere.example"]),
            SimTime::ZERO,
            &mut sink,
        );
        assert_eq!(deliveries, vec![Delivery::External]);
    }
}
