//! The service-side event stream.
//!
//! Google Apps Script hooks fire on mailbox activity; our monitor crate
//! consumes these events to synthesize the notifications the paper's
//! scripts sent ("whenever an email is opened, sent, or starred", plus
//! draft copies). Security events (blocks, hijacks) are also emitted so
//! the experiment driver and ground-truth records stay in sync.

use crate::account::AccountId;
use pwnd_corpus::email::EmailId;
use pwnd_net::access::CookieId;
use pwnd_sim::SimTime;

/// Something observable happened inside the service.
#[derive(Clone, Debug, PartialEq)]
pub enum WebmailEvent {
    /// A login succeeded.
    LoginSucceeded {
        /// Account logged into.
        account: AccountId,
        /// Device cookie of the access.
        cookie: CookieId,
        /// When.
        at: SimTime,
    },
    /// An email was opened (read).
    EmailOpened {
        /// Account.
        account: AccountId,
        /// Message opened.
        email: EmailId,
        /// Device cookie of the session.
        cookie: CookieId,
        /// When.
        at: SimTime,
    },
    /// An email was starred.
    EmailStarred {
        /// Account.
        account: AccountId,
        /// Message starred.
        email: EmailId,
        /// Device cookie.
        cookie: CookieId,
        /// When.
        at: SimTime,
    },
    /// An email was sent.
    EmailSent {
        /// Account.
        account: AccountId,
        /// Message sent.
        email: EmailId,
        /// Device cookie.
        cookie: CookieId,
        /// When.
        at: SimTime,
        /// Number of intended recipients.
        recipients: usize,
    },
    /// A draft was created.
    DraftCreated {
        /// Account.
        account: AccountId,
        /// Draft id.
        email: EmailId,
        /// Device cookie.
        cookie: CookieId,
        /// When.
        at: SimTime,
    },
    /// The account password was changed (hijack when done by an attacker).
    PasswordChanged {
        /// Account.
        account: AccountId,
        /// Device cookie of the changer.
        cookie: CookieId,
        /// When.
        at: SimTime,
        /// Whether the change came through a Tor exit.
        via_tor: bool,
    },
    /// The abuse detector suspended the account.
    AccountBlocked {
        /// Account.
        account: AccountId,
        /// When.
        at: SimTime,
    },
}

impl WebmailEvent {
    /// The account this event concerns.
    pub fn account(&self) -> AccountId {
        match *self {
            WebmailEvent::LoginSucceeded { account, .. }
            | WebmailEvent::EmailOpened { account, .. }
            | WebmailEvent::EmailStarred { account, .. }
            | WebmailEvent::EmailSent { account, .. }
            | WebmailEvent::DraftCreated { account, .. }
            | WebmailEvent::PasswordChanged { account, .. }
            | WebmailEvent::AccountBlocked { account, .. } => account,
        }
    }

    /// When the event happened.
    pub fn at(&self) -> SimTime {
        match *self {
            WebmailEvent::LoginSucceeded { at, .. }
            | WebmailEvent::EmailOpened { at, .. }
            | WebmailEvent::EmailStarred { at, .. }
            | WebmailEvent::EmailSent { at, .. }
            | WebmailEvent::DraftCreated { at, .. }
            | WebmailEvent::PasswordChanged { at, .. }
            | WebmailEvent::AccountBlocked { at, .. } => at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_all_variants() {
        let a = AccountId(5);
        let t = SimTime::from_secs(99);
        let c = CookieId(1);
        let events = vec![
            WebmailEvent::LoginSucceeded {
                account: a,
                cookie: c,
                at: t,
            },
            WebmailEvent::EmailOpened {
                account: a,
                email: EmailId(1),
                cookie: c,
                at: t,
            },
            WebmailEvent::EmailStarred {
                account: a,
                email: EmailId(1),
                cookie: c,
                at: t,
            },
            WebmailEvent::EmailSent {
                account: a,
                email: EmailId(1),
                cookie: c,
                at: t,
                recipients: 2,
            },
            WebmailEvent::DraftCreated {
                account: a,
                email: EmailId(1),
                cookie: c,
                at: t,
            },
            WebmailEvent::PasswordChanged {
                account: a,
                cookie: c,
                at: t,
                via_tor: true,
            },
            WebmailEvent::AccountBlocked { account: a, at: t },
        ];
        for e in events {
            assert_eq!(e.account(), a);
            assert_eq!(e.at(), t);
        }
    }
}
