//! Mailbox search: an inverted index plus provider-side query logs.
//!
//! Gold diggers find sensitive mail by *searching*, and the paper's key
//! limitation (§4.3.5) is that researchers could only observe the emails
//! attackers **opened**, never the query strings — those live in logs only
//! the provider can read. We reproduce both halves: [`SearchIndex`] serves
//! ranked results, and every query is appended to a ground-truth log that
//! the monitor crate has no access to (tests use it to validate the
//! TF-IDF keyword-inference pipeline against what was really searched).

use crate::mailbox::Mailbox;
use pwnd_corpus::email::{Email, EmailId, MailTime};
use pwnd_sim::SimTime;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One logged query (provider-side ground truth).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryLogEntry {
    /// When the query ran.
    pub at: SimTime,
    /// The raw query string.
    pub query: String,
    /// How many results it returned.
    pub hits: usize,
}

/// An inverted index over one mailbox.
#[derive(Clone, Debug, Default)]
pub struct SearchIndex {
    postings: BTreeMap<String, BTreeSet<EmailId>>,
    /// Message timestamps, for recency ranking (Gmail's default order).
    recency: HashMap<EmailId, MailTime>,
    query_log: Vec<QueryLogEntry>,
}

fn terms_of(text: &str) -> impl Iterator<Item = String> + '_ {
    // Tokens are pure ASCII alphanumerics by construction of the split,
    // so the cheap ASCII lowercase is exact.
    text.split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_ascii_lowercase())
}

impl SearchIndex {
    /// An empty index.
    pub fn new() -> SearchIndex {
        SearchIndex::default()
    }

    /// Build the index for everything currently in `mailbox`.
    pub fn build(mailbox: &Mailbox) -> SearchIndex {
        let mut idx = SearchIndex::new();
        for entry in mailbox.iter() {
            idx.add_email(&entry.email);
        }
        idx
    }

    /// Index one email. Terms are tokenized straight off the subject and
    /// body — callers no longer materialize the concatenated
    /// `full_text()` string just to throw it away after tokenization.
    /// (Pre-deduplicating terms per email was measured slower than
    /// letting the postings `BTreeSet` absorb repeats.)
    pub fn add_email(&mut self, email: &Email) {
        for term in terms_of(&email.subject).chain(terms_of(&email.body)) {
            self.postings.entry(term).or_default().insert(email.id);
        }
        self.recency.insert(email.id, email.timestamp);
    }

    /// Index one document given as raw text (callers with a real
    /// [`Email`] should prefer [`SearchIndex::add_email`]).
    pub fn add(&mut self, id: EmailId, text: &str, timestamp: MailTime) {
        for term in terms_of(text) {
            self.postings.entry(term).or_default().insert(id);
        }
        self.recency.insert(id, timestamp);
    }

    /// Run a query at time `at`: conjunctive term match, results ranked
    /// newest-first (Gmail's default). The query is logged provider-side.
    ///
    /// The intersection walks the smallest posting list and probes the
    /// others (`O(min · k·log)` instead of cloning and re-collecting a
    /// `BTreeSet` per term), and short-circuits to empty as soon as any
    /// term has no postings at all.
    pub fn search(&mut self, query: &str, at: SimTime) -> Vec<EmailId> {
        let mut terms: Vec<String> = terms_of(query).collect();
        terms.sort_unstable();
        terms.dedup();
        let results: Vec<EmailId> = if terms.is_empty() {
            Vec::new()
        } else {
            let mut hits: Vec<EmailId> = {
                let mut lists: Vec<&BTreeSet<EmailId>> = Vec::with_capacity(terms.len());
                let mut missing = false;
                for t in &terms {
                    match self.postings.get(t) {
                        Some(p) if !p.is_empty() => lists.push(p),
                        // A term nobody ever wrote: the conjunction is
                        // empty, whatever the other lists hold.
                        _ => {
                            missing = true;
                            break;
                        }
                    }
                }
                if missing {
                    Vec::new()
                } else {
                    lists.sort_by_key(|p| p.len());
                    let (smallest, rest) = lists.split_first().expect("terms is non-empty");
                    smallest
                        .iter()
                        .filter(|id| rest.iter().all(|p| p.contains(id)))
                        .copied()
                        .collect()
                }
            };
            hits.sort_by_key(|id| {
                (
                    std::cmp::Reverse(self.recency.get(id).copied().unwrap_or(MailTime(i64::MIN))),
                    *id,
                )
            });
            hits
        };
        self.query_log.push(QueryLogEntry {
            at,
            query: query.to_string(),
            hits: results.len(),
        });
        results
    }

    /// Provider-side query log. **Not** reachable from the monitor crate —
    /// mirrors the paper's stated limitation.
    pub fn query_log(&self) -> &[QueryLogEntry] {
        &self.query_log
    }

    /// Number of distinct indexed terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_corpus::email::{Email, MailTime};

    fn mk(id: u64, subject: &str, body: &str) -> Email {
        Email {
            id: EmailId(id),
            from: "f@x".into(),
            to: vec!["t@x".into()],
            subject: subject.into(),
            body: body.into(),
            // Higher ids are newer, so recency ranking mirrors id order
            // in these fixtures.
            timestamp: MailTime(-1_000 + id as i64),
        }
    }

    fn index() -> SearchIndex {
        let mut mb = Mailbox::new();
        mb.deliver(mk(
            1,
            "Payment schedule",
            "the wire transfer payment is due",
        ));
        mb.deliver(mk(2, "Lunch", "see you at noon"));
        mb.deliver(mk(3, "Account payment", "account number attached"));
        SearchIndex::build(&mb)
    }

    #[test]
    fn single_term_search_newest_first() {
        let mut idx = index();
        let hits = idx.search("payment", SimTime::ZERO);
        assert_eq!(hits, vec![EmailId(3), EmailId(1)]);
    }

    #[test]
    fn conjunctive_multi_term() {
        let mut idx = index();
        let hits = idx.search("account payment", SimTime::ZERO);
        assert_eq!(hits, vec![EmailId(3)]);
    }

    #[test]
    fn case_insensitive() {
        let mut idx = index();
        assert_eq!(idx.search("PAYMENT", SimTime::ZERO).len(), 2);
    }

    #[test]
    fn no_hits_and_empty_query() {
        let mut idx = index();
        assert!(idx.search("bitcoin", SimTime::ZERO).is_empty());
        assert!(idx.search("  ", SimTime::ZERO).is_empty());
    }

    #[test]
    fn queries_are_logged_with_hit_counts() {
        let mut idx = index();
        idx.search("payment", SimTime::from_secs(5));
        idx.search("bitcoin", SimTime::from_secs(9));
        let log = idx.query_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].query, "payment");
        assert_eq!(log[0].hits, 2);
        assert_eq!(log[1].hits, 0);
        assert_eq!(log[1].at, SimTime::from_secs(9));
    }

    #[test]
    fn incremental_add_is_searchable() {
        let mut idx = index();
        idx.add(EmailId(9), "bitcoin ransom draft", MailTime(5));
        assert_eq!(idx.search("bitcoin", SimTime::ZERO), vec![EmailId(9)]);
    }

    #[test]
    fn recency_ranking_overrides_id_order() {
        let mut idx = SearchIndex::new();
        idx.add(EmailId(1), "payment new", MailTime(100));
        idx.add(EmailId(2), "payment old", MailTime(-100));
        assert_eq!(
            idx.search("payment", SimTime::ZERO),
            vec![EmailId(1), EmailId(2)]
        );
    }
}
