//! Mailbox search: an inverted index plus provider-side query logs.
//!
//! Gold diggers find sensitive mail by *searching*, and the paper's key
//! limitation (§4.3.5) is that researchers could only observe the emails
//! attackers **opened**, never the query strings — those live in logs only
//! the provider can read. We reproduce both halves: [`SearchIndex`] serves
//! ranked results, and every query is appended to a ground-truth log that
//! the monitor crate has no access to (tests use it to validate the
//! TF-IDF keyword-inference pipeline against what was really searched).
//!
//! ## Fleet-scale representation
//!
//! A fleet of honey accounts shares one corporate vocabulary, so the
//! index stores postings keyed by 4-byte [`Symbol`]s from a shared
//! [`Interner`] (owned by the service, one arena per fleet shard)
//! instead of one owned `String` per term per account. At paper scale
//! (100 accounts × ~3k distinct terms) this removes ~300k owned
//! strings; the ranking and results are unchanged — symbols are an
//! encoding, not a semantic change.

use crate::mailbox::Mailbox;
use pwnd_corpus::email::{Email, EmailId, MailTime};
use pwnd_sim::intern::{Interner, Symbol};
use pwnd_sim::SimTime;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One logged query (provider-side ground truth).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryLogEntry {
    /// When the query ran.
    pub at: SimTime,
    /// The raw query string.
    pub query: String,
    /// How many results it returned.
    pub hits: usize,
}

/// An inverted index over one mailbox.
///
/// Term strings live in a caller-provided [`Interner`] (shared across
/// every index of a service), so the per-index state is symbols and id
/// sets only. Methods that tokenize text take the arena: mutably when
/// indexing (new terms are interned), immutably when searching (a term
/// the arena has never seen cannot match anything).
#[derive(Clone, Debug, Default)]
pub struct SearchIndex {
    postings: BTreeMap<Symbol, BTreeSet<EmailId>>,
    /// Message timestamps, for recency ranking (Gmail's default order).
    recency: HashMap<EmailId, MailTime>,
    query_log: Vec<QueryLogEntry>,
}

fn terms_of(text: &str) -> impl Iterator<Item = String> + '_ {
    // Tokens are pure ASCII alphanumerics by construction of the split,
    // so the cheap ASCII lowercase is exact.
    text.split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_ascii_lowercase())
}

impl SearchIndex {
    /// An empty index.
    pub fn new() -> SearchIndex {
        SearchIndex::default()
    }

    /// Build the index for everything currently in `mailbox`, interning
    /// terms into `vocab`.
    pub fn build(mailbox: &Mailbox, vocab: &mut Interner) -> SearchIndex {
        let mut idx = SearchIndex::new();
        for entry in mailbox.iter() {
            idx.add_email(vocab, &entry.email);
        }
        idx
    }

    /// Index one email. Terms are tokenized straight off the subject and
    /// body — callers no longer materialize the concatenated
    /// `full_text()` string just to throw it away after tokenization.
    /// (Pre-deduplicating terms per email was measured slower than
    /// letting the postings `BTreeSet` absorb repeats.)
    pub fn add_email(&mut self, vocab: &mut Interner, email: &Email) {
        for term in terms_of(&email.subject).chain(terms_of(&email.body)) {
            let sym = vocab.intern(&term);
            self.postings.entry(sym).or_default().insert(email.id);
        }
        self.recency.insert(email.id, email.timestamp);
    }

    /// Index one document given as raw text (callers with a real
    /// [`Email`] should prefer [`SearchIndex::add_email`]).
    pub fn add(&mut self, vocab: &mut Interner, id: EmailId, text: &str, timestamp: MailTime) {
        for term in terms_of(text) {
            let sym = vocab.intern(&term);
            self.postings.entry(sym).or_default().insert(id);
        }
        self.recency.insert(id, timestamp);
    }

    /// Run a query at time `at`: conjunctive term match, results ranked
    /// newest-first (Gmail's default). The query is logged provider-side.
    ///
    /// The intersection walks the smallest posting list and probes the
    /// others (`O(min · k·log)` instead of cloning and re-collecting a
    /// `BTreeSet` per term), and short-circuits to empty as soon as any
    /// term has no postings at all — including terms the shared arena
    /// has never interned, which by definition appear in no mailbox.
    // lint:hot-root
    pub fn search(&mut self, vocab: &Interner, query: &str, at: SimTime) -> Vec<EmailId> {
        let mut terms: Vec<String> = terms_of(query).collect();
        terms.sort_unstable();
        terms.dedup();
        let results: Vec<EmailId> = if terms.is_empty() {
            Vec::new()
        } else {
            let mut hits: Vec<EmailId> = {
                let mut lists: Vec<&BTreeSet<EmailId>> = Vec::with_capacity(terms.len());
                let mut missing = false;
                for t in &terms {
                    match vocab.lookup(t).and_then(|sym| self.postings.get(&sym)) {
                        Some(p) if !p.is_empty() => lists.push(p),
                        // A term nobody ever wrote: the conjunction is
                        // empty, whatever the other lists hold.
                        _ => {
                            missing = true;
                            break;
                        }
                    }
                }
                if missing {
                    Vec::new()
                } else {
                    lists.sort_by_key(|p| p.len());
                    let (smallest, rest) = lists.split_first().expect("terms is non-empty");
                    smallest
                        .iter()
                        .filter(|id| rest.iter().all(|p| p.contains(id)))
                        .copied()
                        .collect()
                }
            };
            hits.sort_by_key(|id| {
                (
                    std::cmp::Reverse(self.recency.get(id).copied().unwrap_or(MailTime(i64::MIN))),
                    *id,
                )
            });
            hits
        };
        self.query_log.push(QueryLogEntry {
            at,
            query: query.to_string(),
            hits: results.len(),
        });
        results
    }

    /// Provider-side query log. **Not** reachable from the monitor crate —
    /// mirrors the paper's stated limitation.
    pub fn query_log(&self) -> &[QueryLogEntry] {
        &self.query_log
    }

    /// Number of distinct indexed terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// Approximate heap footprint of this index in bytes, counting the
    /// postings map (4-byte symbol keys, 8-byte email ids), the recency
    /// map, and the query log — but **not** the shared arena, which is
    /// accounted once per service. Feeds the fleet engine's
    /// `fleet.peak_rss_proxy` metric; never reads the OS.
    pub fn heap_bytes(&self) -> usize {
        let posting_ids: usize = self.postings.values().map(|p| p.len()).sum();
        // Per posting entry: symbol key + set bookkeeping; per id: 8
        // bytes + B-tree node overhead amortized to ~8.
        let postings = self.postings.len() * (4 + 24) + posting_ids * 16;
        let recency = self.recency.len() * (8 + 8 + 16);
        let log: usize = self
            .query_log
            .iter()
            .map(|q| q.query.len() + std::mem::size_of::<QueryLogEntry>())
            .sum();
        postings + recency + log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_corpus::email::{Email, MailTime};

    fn mk(id: u64, subject: &str, body: &str) -> Email {
        Email {
            id: EmailId(id),
            from: "f@x".into(),
            to: vec!["t@x".into()],
            subject: subject.into(),
            body: body.into(),
            // Higher ids are newer, so recency ranking mirrors id order
            // in these fixtures.
            timestamp: MailTime(-1_000 + id as i64),
        }
    }

    fn index() -> (SearchIndex, Interner) {
        let mut mb = Mailbox::new();
        mb.deliver(mk(
            1,
            "Payment schedule",
            "the wire transfer payment is due",
        ));
        mb.deliver(mk(2, "Lunch", "see you at noon"));
        mb.deliver(mk(3, "Account payment", "account number attached"));
        let mut vocab = Interner::new();
        let idx = SearchIndex::build(&mb, &mut vocab);
        (idx, vocab)
    }

    #[test]
    fn single_term_search_newest_first() {
        let (mut idx, vocab) = index();
        let hits = idx.search(&vocab, "payment", SimTime::ZERO);
        assert_eq!(hits, vec![EmailId(3), EmailId(1)]);
    }

    #[test]
    fn conjunctive_multi_term() {
        let (mut idx, vocab) = index();
        let hits = idx.search(&vocab, "account payment", SimTime::ZERO);
        assert_eq!(hits, vec![EmailId(3)]);
    }

    #[test]
    fn case_insensitive() {
        let (mut idx, vocab) = index();
        assert_eq!(idx.search(&vocab, "PAYMENT", SimTime::ZERO).len(), 2);
    }

    #[test]
    fn no_hits_and_empty_query() {
        let (mut idx, vocab) = index();
        assert!(idx.search(&vocab, "bitcoin", SimTime::ZERO).is_empty());
        assert!(idx.search(&vocab, "  ", SimTime::ZERO).is_empty());
    }

    #[test]
    fn queries_are_logged_with_hit_counts() {
        let (mut idx, vocab) = index();
        idx.search(&vocab, "payment", SimTime::from_secs(5));
        idx.search(&vocab, "bitcoin", SimTime::from_secs(9));
        let log = idx.query_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].query, "payment");
        assert_eq!(log[0].hits, 2);
        assert_eq!(log[1].hits, 0);
        assert_eq!(log[1].at, SimTime::from_secs(9));
    }

    #[test]
    fn incremental_add_is_searchable() {
        let (mut idx, mut vocab) = index();
        idx.add(&mut vocab, EmailId(9), "bitcoin ransom draft", MailTime(5));
        assert_eq!(
            idx.search(&vocab, "bitcoin", SimTime::ZERO),
            vec![EmailId(9)]
        );
    }

    #[test]
    fn recency_ranking_overrides_id_order() {
        let mut vocab = Interner::new();
        let mut idx = SearchIndex::new();
        idx.add(&mut vocab, EmailId(1), "payment new", MailTime(100));
        idx.add(&mut vocab, EmailId(2), "payment old", MailTime(-100));
        assert_eq!(
            idx.search(&vocab, "payment", SimTime::ZERO),
            vec![EmailId(1), EmailId(2)]
        );
    }

    #[test]
    fn shared_arena_deduplicates_vocabulary_across_indexes() {
        let mut vocab = Interner::new();
        let mut a = SearchIndex::new();
        let mut b = SearchIndex::new();
        a.add(
            &mut vocab,
            EmailId(1),
            "quarterly payment invoice",
            MailTime(0),
        );
        b.add(
            &mut vocab,
            EmailId(2),
            "invoice payment overdue",
            MailTime(0),
        );
        // Four distinct terms total; the arena holds each exactly once.
        assert_eq!(vocab.len(), 4);
        assert_eq!(a.search(&vocab, "payment", SimTime::ZERO), vec![EmailId(1)]);
        assert_eq!(b.search(&vocab, "payment", SimTime::ZERO), vec![EmailId(2)]);
    }

    #[test]
    fn heap_bytes_counts_postings() {
        let (idx, _) = index();
        assert!(idx.heap_bytes() > 0);
    }
}
