#![warn(missing_docs)]

//! # pwnd-webmail — a webmail service simulator (the "Gmail" substrate)
//!
//! The paper's measurement infrastructure interacts with Gmail through a
//! small observable surface: logins that are labelled with cookie
//! identifiers, mailbox operations (open / star / search / draft / send),
//! the visitor-activity page listing recent accesses with geolocation and
//! system fingerprint, password changes (hijack), abuse-driven account
//! blocking, signup rate-limiting, and a send-from override that redirects
//! all outbound mail into the researchers' sinkhole. This crate implements
//! that entire surface as a deterministic, single-threaded state machine.
//!
//! Layout (one module per subsystem, smoltcp-style):
//!
//! * [`account`] — account records, credentials, lifecycle states;
//! * [`mailbox`] — folders, read/star flags, drafts;
//! * [`search`] — an inverted index with provider-side query logs (which
//!   the monitor can *not* read — the paper lacked search-log access);
//! * [`activity`] — the visitor-activity page (bounded ring of accesses);
//! * [`security`] — login risk analysis (the "suspicious login filter"
//!   Google disabled for the honey accounts) and the abuse detector that
//!   blocked 42 of them;
//! * [`mta`] — message routing and the sinkhole mailserver;
//! * [`events`] — the event stream Apps-Script hooks subscribe to;
//! * [`service`] — the façade tying everything together.
//!
//! Deliberately not implemented (event-level simulation, per DESIGN.md):
//! real HTTP/OAuth, IMAP/SMTP wire formats, TLS, attachment bodies.

pub mod account;
pub mod activity;
pub mod events;
pub mod mailbox;
pub mod mta;
pub mod rules;
pub mod search;
pub mod security;
pub mod service;

pub use account::{AccountId, AccountState};
pub use events::WebmailEvent;
pub use service::{LoginError, SendError, ServiceConfig, SessionId, SignupError, WebmailService};
