//! Account records and lifecycle.

use pwnd_sim::SimTime;
use std::fmt;

/// Service-internal account identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccountId(pub u32);

impl fmt::Debug for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "acct#{}", self.0)
    }
}

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Lifecycle state of an account.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccountState {
    /// Normal operation.
    Active,
    /// Suspended by the abuse detector; logins fail, scripts stop running.
    /// The paper: "42 accounts were blocked by Google during the course of
    /// the experiment, due to suspicious activity."
    Blocked {
        /// When the block was applied.
        at: SimTime,
    },
}

impl AccountState {
    /// Whether the account accepts logins and runs scripts.
    pub fn is_active(self) -> bool {
        matches!(self, AccountState::Active)
    }
}

/// One webmail account.
#[derive(Clone, Debug)]
pub struct Account {
    /// Identifier.
    pub id: AccountId,
    /// Login address, e.g. `james.smith@honeymail.example`.
    pub address: String,
    /// Current password.
    pub password: String,
    /// The original password the researchers set. A mismatch with
    /// `password` means the account has been hijacked.
    pub original_password: String,
    /// Lifecycle state.
    pub state: AccountState,
    /// When the account was created.
    pub created_at: SimTime,
    /// Send-from override: when set, *all* outbound mail is diverted to
    /// this address's mail route (the researchers point it at the
    /// sinkhole). `None` means normal delivery.
    pub send_from_override: Option<String>,
    /// Number of password changes since creation.
    pub password_changes: u32,
    /// When the password last changed (hijack time, for ground truth).
    pub last_password_change: Option<SimTime>,
}

impl Account {
    /// Whether the password differs from the one the researchers set.
    pub fn is_hijacked(&self) -> bool {
        self.password != self.original_password
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acct() -> Account {
        Account {
            id: AccountId(3),
            address: "a@honeymail.example".into(),
            password: "hunter2222".into(),
            original_password: "hunter2222".into(),
            state: AccountState::Active,
            created_at: SimTime::ZERO,
            send_from_override: None,
            password_changes: 0,
            last_password_change: None,
        }
    }

    #[test]
    fn fresh_account_not_hijacked() {
        let a = acct();
        assert!(!a.is_hijacked());
        assert!(a.state.is_active());
    }

    #[test]
    fn password_change_marks_hijack() {
        let mut a = acct();
        a.password = "attacker-owned".into();
        assert!(a.is_hijacked());
    }

    #[test]
    fn blocked_state_is_inactive() {
        let s = AccountState::Blocked { at: SimTime::ZERO };
        assert!(!s.is_active());
    }

    #[test]
    fn id_formats() {
        assert_eq!(format!("{:?}", AccountId(9)), "acct#9");
        assert_eq!(AccountId(9).to_string(), "9");
    }
}
