//! The webmail service façade.
//!
//! [`WebmailService`] is the single entry point both populations use: the
//! researchers (account creation, corpus seeding, send-from overrides,
//! periodic activity-page scrapes) and the attackers (logins, searches,
//! opens, stars, drafts, sends, password changes). It owns every
//! subsystem — mailboxes, search indexes, activity pages, the risk
//! engine, the abuse detector, the mail router and sinkhole — and emits
//! [`WebmailEvent`]s that the monitoring crate turns into script
//! notifications.

use crate::account::{Account, AccountId, AccountState};
use crate::activity::{ActivityPage, ActivityRow};
use crate::events::WebmailEvent;
use crate::mailbox::{Folder, Mailbox};
use crate::mta::{MailRouter, Sinkhole};
use crate::rules::{Rule, RuleAction, RuleSet};
use crate::search::SearchIndex;
use crate::security::{AbuseDetector, ContentFlags, LoginSignals, RiskEngine, SecurityPolicy};
use pwnd_corpus::email::{Email, EmailId, MailTime};
use pwnd_net::access::{ConnectionInfo, CookieId};
use pwnd_net::geo::{haversine_km, GeoPoint};
use pwnd_net::geolocate::Geolocator;
use pwnd_net::useragent;
use pwnd_sim::intern::{Interner, Symbol};
use pwnd_sim::SimTime;
use pwnd_telemetry::TelemetrySink;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// Login session handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SessionId(pub u64);

/// Why an account could not be created.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignupError {
    /// Too many signups from this IP: the provider demands phone
    /// verification (§3.2: "Google also rate-limits the creation of new
    /// accounts from the same IP address by presenting a phone
    /// verification page").
    PhoneVerificationRequired,
    /// Address already registered.
    AddressTaken,
}

/// Why a login failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoginError {
    /// Wrong address or password (including post-hijack scraper logins).
    BadCredentials,
    /// The account is suspended.
    AccountBlocked,
    /// Rejected by the location-based login filter (only when the filter
    /// is enabled; never for the paper-configured honey accounts).
    SuspiciousLogin,
    /// The provider is in a maintenance window: nobody — attacker or
    /// monitoring scraper — can log in until it ends. Transient; callers
    /// with a retry budget should back off and try again.
    Maintenance,
}

/// Why a mailbox operation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpError {
    /// Unknown or stale session.
    InvalidSession,
    /// The account was blocked mid-session.
    AccountBlocked,
    /// No such message in this mailbox.
    NoSuchEmail,
}

/// Why a send failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendError {
    /// Session problem (see [`OpError`]).
    Op(OpError),
    /// No recipients given.
    NoRecipients,
}

/// Service-wide configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Security policy (login filter, abuse thresholds).
    pub security: SecurityPolicy,
    /// Rows kept on each visitor-activity page.
    pub activity_page_capacity: usize,
    /// Signups allowed per source IP before phone verification.
    pub signups_per_ip: u32,
    /// How many recent login locations count as "habitual".
    pub habitual_window: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            security: SecurityPolicy::default(),
            activity_page_capacity: crate::activity::DEFAULT_CAPACITY,
            signups_per_ip: 4,
            habitual_window: 10,
        }
    }
}

struct Session {
    account: AccountId,
    cookie: CookieId,
    via_tor: bool,
}

/// The simulated webmail provider.
pub struct WebmailService {
    config: ServiceConfig,
    geolocator: Geolocator,
    accounts: Vec<Account>,
    by_address: BTreeMap<Symbol, AccountId>,
    mailboxes: Vec<Mailbox>,
    indexes: Vec<SearchIndex>,
    /// Shared string arena: account addresses and the search vocabulary
    /// of every mailbox intern into one insertion-ordered table, so a
    /// fleet shard stores each distinct string once.
    vocab: Interner,
    rules: Vec<RuleSet>,
    activity: Vec<ActivityPage>,
    habitual: Vec<Vec<GeoPoint>>,
    sessions: HashMap<SessionId, Session>,
    risk: RiskEngine,
    abuse: AbuseDetector,
    router: MailRouter,
    sinkhole: Sinkhole,
    events: Vec<WebmailEvent>,
    signup_counts: HashMap<Ipv4Addr, u32>,
    maintenance: Vec<(SimTime, SimTime)>,
    next_session: u64,
    next_cookie: u64,
    next_email_id: u64,
    telemetry: TelemetrySink,
}

impl WebmailService {
    /// Bring up the service.
    pub fn new(config: ServiceConfig, geolocator: Geolocator) -> WebmailService {
        let risk = RiskEngine::new(config.security.clone());
        let abuse = AbuseDetector::new(config.security.clone());
        WebmailService {
            config,
            geolocator,
            accounts: Vec::new(),
            by_address: BTreeMap::new(),
            mailboxes: Vec::new(),
            indexes: Vec::new(),
            vocab: Interner::new(),
            rules: Vec::new(),
            activity: Vec::new(),
            habitual: Vec::new(),
            sessions: HashMap::new(),
            risk,
            abuse,
            router: MailRouter::new(),
            sinkhole: Sinkhole::new(),
            events: Vec::new(),
            signup_counts: HashMap::new(),
            maintenance: Vec::new(),
            next_session: 1,
            next_cookie: 1,
            // High base so attacker-composed mail never collides with
            // corpus-generated ids.
            next_email_id: 10_000_000,
            telemetry: TelemetrySink::disabled(),
        }
    }

    /// Attach a telemetry sink, shared with the risk engine and abuse
    /// detector. Login outcomes, mailbox operations, hijacks, and blocks
    /// feed `webmail.*` counters and the trace.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.risk.set_telemetry(sink.clone());
        self.abuse.set_telemetry(sink.clone());
        self.telemetry = sink;
    }

    /// Schedule provider maintenance windows (`[start, end)` spans).
    /// Logins inside a window fail with [`LoginError::Maintenance`]. The
    /// fault layer injects these; an empty list (the default) restores
    /// the always-up provider.
    pub fn set_maintenance(&mut self, windows: Vec<(SimTime, SimTime)>) {
        self.maintenance = windows;
    }

    // ------------------------------------------------------------------
    // Researcher-facing API (account setup)
    // ------------------------------------------------------------------

    /// Create an account. Rate-limited per source IP.
    pub fn create_account(
        &mut self,
        address: &str,
        password: &str,
        from_ip: Ipv4Addr,
        at: SimTime,
    ) -> Result<AccountId, SignupError> {
        if self
            .vocab
            .lookup(address)
            .is_some_and(|sym| self.by_address.contains_key(&sym))
        {
            return Err(SignupError::AddressTaken);
        }
        let count = self.signup_counts.entry(from_ip).or_insert(0);
        if *count >= self.config.signups_per_ip {
            return Err(SignupError::PhoneVerificationRequired);
        }
        *count += 1;
        let id = AccountId(self.accounts.len() as u32);
        self.accounts.push(Account {
            id,
            address: address.to_string(),
            password: password.to_string(),
            original_password: password.to_string(),
            state: AccountState::Active,
            created_at: at,
            send_from_override: None,
            password_changes: 0,
            last_password_change: None,
        });
        let sym = self.vocab.intern(address);
        self.by_address.insert(sym, id);
        self.mailboxes.push(Mailbox::new());
        self.indexes.push(SearchIndex::new());
        self.rules.push(RuleSet::new());
        self.activity.push(ActivityPage::with_capacity(
            self.config.activity_page_capacity,
        ));
        self.habitual.push(Vec::new());
        self.router.register(address.to_string(), id);
        Ok(id)
    }

    /// Complete phone verification for `ip`, resetting its signup counter
    /// (the manual step the researchers performed when rate-limited).
    pub fn complete_phone_verification(&mut self, ip: Ipv4Addr) {
        self.signup_counts.insert(ip, 0);
    }

    /// Seed a mailbox with corpus emails (researcher setup step). Each
    /// delivery runs through the account's automation rules, exactly as
    /// a real incoming message would (§2: rules "automatically process
    /// received emails").
    pub fn seed_mailbox(&mut self, account: AccountId, emails: Vec<Email>) {
        let idx = account.0 as usize;
        for email in emails {
            let id = email.id;
            let actions: Vec<RuleAction> = self.rules[idx]
                .actions_for(&email)
                .into_iter()
                .cloned()
                .collect();
            self.indexes[idx].add_email(&mut self.vocab, &email);
            self.mailboxes[idx].deliver(email);
            for action in actions {
                match action {
                    RuleAction::ApplyLabel(label) => {
                        self.mailboxes[idx].label(id, &label);
                    }
                    RuleAction::MarkRead => {
                        self.mailboxes[idx].open(id);
                    }
                    RuleAction::Star => {
                        self.mailboxes[idx].star(id);
                    }
                }
            }
        }
    }

    /// Install an automation rule on an account (owner-level setup; the
    /// researchers add a few so the mailbox looks lived-in).
    pub fn add_rule(&mut self, account: AccountId, rule: Rule) {
        self.rules[account.0 as usize].add(rule);
    }

    /// Number of automation rules installed on an account.
    pub fn rule_count(&self, account: AccountId) -> usize {
        self.rules[account.0 as usize].len()
    }

    /// Point the account's send-from at the sinkhole.
    pub fn set_send_from_override(&mut self, account: AccountId, address: &str) {
        self.accounts[account.0 as usize].send_from_override = Some(address.to_string());
    }

    // ------------------------------------------------------------------
    // Authentication
    // ------------------------------------------------------------------

    /// Attempt a login. On success returns a session plus the cookie that
    /// now identifies this device (reused if the device presented one).
    pub fn login(
        &mut self,
        address: &str,
        password: &str,
        conn: &ConnectionInfo,
        at: SimTime,
    ) -> Result<(SessionId, CookieId), LoginError> {
        // Maintenance is checked before credentials: a provider that is
        // down reveals nothing about the account, records nothing on the
        // activity page, and emits no events.
        if self.maintenance.iter().any(|&(s, e)| s <= at && at < e) {
            self.telemetry
                .count_labeled("webmail.logins", "maintenance");
            self.telemetry
                .count_labeled("faults.injected", "maintenance");
            return Err(LoginError::Maintenance);
        }
        let Some(&id) = self
            .vocab
            .lookup(address)
            .and_then(|sym| self.by_address.get(&sym))
        else {
            self.telemetry
                .count_labeled("webmail.logins", "bad_credentials");
            self.telemetry.trace(at.as_secs(), "login", None);
            return Err(LoginError::BadCredentials);
        };
        let idx = id.0 as usize;
        if self.accounts[idx].password != password {
            self.telemetry
                .count_labeled("webmail.logins", "bad_credentials");
            self.telemetry
                .trace_with(at.as_secs(), "login", Some(id.0), || {
                    "bad_credentials".to_string() // lint:allow(alloc-hot): lazy closure; runs only when tracing is on
                });
            return Err(LoginError::BadCredentials);
        }
        if !self.accounts[idx].state.is_active() {
            self.telemetry.count_labeled("webmail.logins", "blocked");
            self.telemetry
                .trace_with(at.as_secs(), "login", Some(id.0), || "blocked".to_string()); // lint:allow(alloc-hot): lazy closure; runs only when tracing is on
            return Err(LoginError::AccountBlocked);
        }

        let via_tor = self.geolocator.is_tor_exit(conn.ip);
        let loc = self.geolocator.locate(conn.ip);
        let distance = self.habitual[idx]
            .iter()
            .map(|&p| haversine_km(p, loc.point))
            .min_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        let signals = LoginSignals {
            via_tor,
            distance_from_habitual_km: distance,
            new_device: conn.cookie.is_none(),
        };
        // Scored exactly once per attempt (the score call also feeds the
        // risk histogram when telemetry is live).
        let score = self.risk.score(signals);
        if self.config.security.login_filter_enabled
            && score >= self.config.security.login_reject_threshold
        {
            self.telemetry.count_labeled("webmail.logins", "rejected");
            self.telemetry
                .trace_with(at.as_secs(), "login", Some(id.0), || {
                    format!("rejected risk={score:.2}") // lint:allow(alloc-hot): lazy closure; runs only when tracing is on
                });
            return Err(LoginError::SuspiciousLogin);
        }

        let cookie = match conn.cookie {
            Some(c) => c,
            None => {
                let c = CookieId(self.next_cookie);
                self.next_cookie += 1;
                c
            }
        };
        let session = SessionId(self.next_session);
        self.next_session += 1;
        self.sessions.insert(
            session,
            Session {
                account: id,
                cookie,
                via_tor,
            },
        );

        // Record on the activity page.
        self.activity[idx].record(ActivityRow {
            cookie,
            at,
            ip: conn.ip,
            location: loc.clone(), // lint:allow(alloc-hot): the activity row owns its location snapshot
            fingerprint: useragent::fingerprint(&conn.client),
        });
        // Update habitual locations (bounded window).
        let hab = &mut self.habitual[idx];
        hab.push(loc.point);
        let window = self.config.habitual_window;
        if hab.len() > window {
            let excess = hab.len() - window;
            hab.drain(..excess);
        }

        self.events.push(WebmailEvent::LoginSucceeded {
            account: id,
            cookie,
            at,
        });
        self.telemetry.count_labeled("webmail.logins", "ok");
        self.telemetry
            .trace_with(at.as_secs(), "login", Some(id.0), || {
                format!("ok risk={score:.2}") // lint:allow(alloc-hot): lazy closure; runs only when tracing is on
            });
        // Even allowed logins feed the abuse detector's trickle.
        if self.abuse.note_login_risk(id, score) {
            self.block_account(id, at);
        }
        Ok((session, cookie))
    }

    fn session(&self, session: SessionId) -> Result<(AccountId, CookieId, bool), OpError> {
        let s = self.sessions.get(&session).ok_or(OpError::InvalidSession)?;
        if !self.accounts[s.account.0 as usize].state.is_active() {
            return Err(OpError::AccountBlocked);
        }
        Ok((s.account, s.cookie, s.via_tor))
    }

    // ------------------------------------------------------------------
    // Mailbox operations (attacker- and monitor-facing)
    // ------------------------------------------------------------------

    /// List message ids in a folder, newest first.
    pub fn list_folder(&self, session: SessionId, folder: Folder) -> Result<Vec<EmailId>, OpError> {
        let (account, _, _) = self.session(session)?;
        Ok(self.mailboxes[account.0 as usize].list(folder))
    }

    /// Open (read) a message. Emits [`WebmailEvent::EmailOpened`].
    pub fn open_email(
        &mut self,
        session: SessionId,
        id: EmailId,
        at: SimTime,
    ) -> Result<Email, OpError> {
        let (account, cookie, _) = self.session(session)?;
        let email = self.mailboxes[account.0 as usize]
            .open(id)
            .ok_or(OpError::NoSuchEmail)?
            .clone(); // lint:allow(alloc-hot): the API returns an owned copy by contract
        self.events.push(WebmailEvent::EmailOpened {
            account,
            email: id,
            cookie,
            at,
        });
        self.telemetry.count("webmail.opens");
        Ok(email)
    }

    /// Star a message. Emits [`WebmailEvent::EmailStarred`].
    pub fn star_email(
        &mut self,
        session: SessionId,
        id: EmailId,
        at: SimTime,
    ) -> Result<(), OpError> {
        let (account, cookie, _) = self.session(session)?;
        if !self.mailboxes[account.0 as usize].star(id) {
            return Err(OpError::NoSuchEmail);
        }
        self.events.push(WebmailEvent::EmailStarred {
            account,
            email: id,
            cookie,
            at,
        });
        self.telemetry.count("webmail.stars");
        Ok(())
    }

    /// Search the mailbox. The query is logged provider-side only.
    pub fn search(
        &mut self,
        session: SessionId,
        query: &str,
        at: SimTime,
    ) -> Result<Vec<EmailId>, OpError> {
        let (account, _, _) = self.session(session)?;
        self.telemetry.count("webmail.searches");
        Ok(self.indexes[account.0 as usize].search(&self.vocab, query, at))
    }

    /// The shared string arena (account addresses plus the search
    /// vocabulary of every mailbox).
    pub fn search_vocab(&self) -> &Interner {
        &self.vocab
    }

    /// Approximate heap bytes of the interned hot state: the shared
    /// arena plus every per-account inverted index. Pure byte-size
    /// accounting (no OS, no wall clock); the fleet engine reports the
    /// high-water of this across shards as `fleet.peak_rss_proxy`.
    pub fn interned_state_bytes(&self) -> usize {
        self.vocab.heap_bytes()
            + self
                .indexes
                .iter()
                .map(SearchIndex::heap_bytes)
                .sum::<usize>()
    }

    fn fresh_email_id(&mut self) -> EmailId {
        let id = EmailId(self.next_email_id);
        self.next_email_id += 1;
        id
    }

    /// Create a draft. Emits [`WebmailEvent::DraftCreated`].
    pub fn create_draft(
        &mut self,
        session: SessionId,
        to: Vec<String>,
        subject: &str,
        body: &str,
        at: SimTime,
    ) -> Result<EmailId, OpError> {
        let (account, cookie, _) = self.session(session)?;
        let id = self.fresh_email_id();
        let email = Email {
            id,
            from: self.accounts[account.0 as usize].address.clone(),
            to,
            subject: subject.to_string(),
            body: body.to_string(),
            timestamp: MailTime::from_sim(at),
        };
        self.indexes[account.0 as usize].add_email(&mut self.vocab, &email);
        self.mailboxes[account.0 as usize].store_draft(email);
        self.events.push(WebmailEvent::DraftCreated {
            account,
            email: id,
            cookie,
            at,
        });
        self.telemetry.count("webmail.drafts");
        Ok(id)
    }

    fn content_flags(subject: &str, body: &str, recipients: usize) -> ContentFlags {
        let text = format!("{subject} {body}").to_lowercase(); // lint:allow(alloc-hot): one scratch string per send; keywords may span the subject/body seam
        let extortion = ["bitcoin", "ransom", "expose you", "payment or"]
            .iter()
            .any(|kw| text.contains(kw));
        ContentFlags {
            extortion,
            bulk_recipients: recipients > 5,
        }
    }

    fn dispatch(
        &mut self,
        account: AccountId,
        cookie: CookieId,
        email: Email,
        at: SimTime,
    ) -> EmailId {
        let idx = account.0 as usize;
        let id = email.id;
        let recipients = email.to.len();
        let flags = Self::content_flags(&email.subject, &email.body, recipients);
        let has_override = self.accounts[idx].send_from_override.is_some();
        self.router
            .route(account, has_override, &email, at, &mut self.sinkhole);
        self.mailboxes[idx].record_sent(email);
        self.events.push(WebmailEvent::EmailSent {
            account,
            email: id,
            cookie,
            at,
            recipients,
        });
        self.telemetry.count("webmail.sends");
        if self.abuse.note_send(account, at, recipients, flags) {
            self.block_account(account, at);
        }
        id
    }

    /// Compose and send a message. Emits [`WebmailEvent::EmailSent`]; may
    /// trigger an abuse block.
    pub fn send_email(
        &mut self,
        session: SessionId,
        to: Vec<String>,
        subject: &str,
        body: &str,
        at: SimTime,
    ) -> Result<EmailId, SendError> {
        if to.is_empty() {
            return Err(SendError::NoRecipients);
        }
        let (account, cookie, _) = self.session(session).map_err(SendError::Op)?;
        let id = self.fresh_email_id();
        let email = Email {
            id,
            from: self.accounts[account.0 as usize].address.clone(), // lint:allow(alloc-hot): the Email owns its sender address
            to,
            subject: subject.to_string(), // lint:allow(alloc-hot): the Email owns its subject
            body: body.to_string(),       // lint:allow(alloc-hot): the Email owns its body
            timestamp: MailTime::from_sim(at),
        };
        Ok(self.dispatch(account, cookie, email, at))
    }

    /// Send an existing draft.
    pub fn send_draft(
        &mut self,
        session: SessionId,
        draft: EmailId,
        at: SimTime,
    ) -> Result<EmailId, SendError> {
        let (account, cookie, _) = self.session(session).map_err(SendError::Op)?;
        let email = self.mailboxes[account.0 as usize]
            .promote_draft(draft)
            .ok_or(SendError::Op(OpError::NoSuchEmail))?;
        if email.to.is_empty() {
            return Err(SendError::NoRecipients);
        }
        Ok(self.dispatch(account, cookie, email, at))
    }

    /// Change the account password (hijack when done by an attacker).
    /// Existing sessions stay alive — matching Gmail at the time — but new
    /// logins need the new password, which is what kills the scraper.
    pub fn change_password(
        &mut self,
        session: SessionId,
        new_password: &str,
        at: SimTime,
    ) -> Result<(), OpError> {
        let (account, cookie, via_tor) = self.session(session)?;
        let acct = &mut self.accounts[account.0 as usize];
        acct.password = new_password.to_string();
        acct.password_changes += 1;
        acct.last_password_change = Some(at);
        self.events.push(WebmailEvent::PasswordChanged {
            account,
            cookie,
            at,
            via_tor,
        });
        self.telemetry.count("webmail.hijacks");
        self.telemetry
            .trace_with(at.as_secs(), "hijack", Some(account.0), || {
                format!("password change via_tor={via_tor}")
            });
        if self.abuse.note_password_change(account, via_tor) {
            self.block_account(account, at);
        }
        Ok(())
    }

    /// Read the visitor-activity page (what the scraper parses).
    pub fn read_activity_page(&self, session: SessionId) -> Result<Vec<ActivityRow>, OpError> {
        let (account, _, _) = self.session(session)?;
        Ok(self.activity[account.0 as usize].rows().cloned().collect())
    }

    // ------------------------------------------------------------------
    // Administrative / ground truth
    // ------------------------------------------------------------------

    fn block_account(&mut self, account: AccountId, at: SimTime) {
        let acct = &mut self.accounts[account.0 as usize];
        if acct.state.is_active() {
            acct.state = AccountState::Blocked { at };
            self.events
                .push(WebmailEvent::AccountBlocked { account, at });
            self.telemetry.count("webmail.blocks");
            self.telemetry.trace(at.as_secs(), "block", Some(account.0));
        }
    }

    /// Force-block an account (used by the experiment's "report to Google"
    /// path and by tests).
    pub fn admin_block(&mut self, account: AccountId, at: SimTime) {
        self.block_account(account, at);
    }

    /// Account record (ground truth).
    pub fn account(&self, id: AccountId) -> &Account {
        &self.accounts[id.0 as usize]
    }

    /// Number of accounts.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Mailbox (ground truth; the monitor goes through sessions instead).
    pub fn mailbox(&self, id: AccountId) -> &Mailbox {
        &self.mailboxes[id.0 as usize]
    }

    /// Provider-side search log (ground truth; *not* monitor-visible).
    pub fn query_log(&self, id: AccountId) -> &[crate::search::QueryLogEntry] {
        self.indexes[id.0 as usize].query_log()
    }

    /// The sinkhole store.
    pub fn sinkhole(&self) -> &Sinkhole {
        &self.sinkhole
    }

    /// The geolocator (shared with analyses).
    pub fn geolocator(&self) -> &Geolocator {
        &self.geolocator
    }

    /// Lifetime access count on an account's activity page (ground truth).
    pub fn total_accesses_recorded(&self, id: AccountId) -> u64 {
        self.activity[id.0 as usize].total_recorded()
    }

    /// Drain all pending events (the monitor runtime consumes these).
    pub fn drain_events(&mut self) -> Vec<WebmailEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_net::geo::GeoDb;
    use pwnd_net::ip::AddressPlan;
    use pwnd_net::tor::TorDirectory;
    use pwnd_net::useragent::{Browser, ClientConfig, Os};
    use pwnd_sim::Rng;

    fn service_with(config: ServiceConfig) -> (WebmailService, Rng) {
        let geo = GeoDb::new();
        let plan = AddressPlan::new(&geo);
        let mut rng = Rng::seed_from(11);
        let tor = TorDirectory::generate(100, &mut rng);
        (
            WebmailService::new(config, Geolocator::new(plan, geo, tor)),
            rng,
        )
    }

    fn service() -> (WebmailService, Rng) {
        service_with(ServiceConfig::default())
    }

    fn conn(svc: &WebmailService, rng: &mut Rng, country: &str) -> ConnectionInfo {
        let ip = svc.geolocator().plan().sample_host(country, rng);
        let loc = svc.geolocator().locate(ip);
        ConnectionInfo::new(
            ip,
            ClientConfig::plain(Browser::Chrome, Os::Windows),
            loc.point,
        )
    }

    fn seeded_email(id: u64, body: &str) -> Email {
        Email {
            id: EmailId(id),
            from: "peer@meridianpower.example".into(),
            to: vec!["honey@honeymail.example".into()],
            subject: format!("mail {id}"),
            body: body.into(),
            timestamp: MailTime(-1000 - id as i64),
        }
    }

    fn setup_account(svc: &mut WebmailService) -> AccountId {
        let id = svc
            .create_account(
                "honey@honeymail.example",
                "pw123456",
                Ipv4Addr::new(198, 51, 0, 1),
                SimTime::ZERO,
            )
            .unwrap();
        svc.seed_mailbox(
            id,
            vec![
                seeded_email(1, "quarterly energy transfer report"),
                seeded_email(2, "the payment account details are below"),
            ],
        );
        svc.set_send_from_override(id, "sinkhole@monitor.example");
        id
    }

    #[test]
    fn signup_rate_limit_and_verification() {
        let (mut svc, _) = service();
        let ip = Ipv4Addr::new(198, 51, 0, 9);
        for i in 0..4 {
            assert!(svc
                .create_account(&format!("a{i}@honeymail.example"), "pw", ip, SimTime::ZERO)
                .is_ok());
        }
        assert_eq!(
            svc.create_account("a4@honeymail.example", "pw", ip, SimTime::ZERO),
            Err(SignupError::PhoneVerificationRequired)
        );
        svc.complete_phone_verification(ip);
        assert!(svc
            .create_account("a4@honeymail.example", "pw", ip, SimTime::ZERO)
            .is_ok());
        assert_eq!(
            svc.create_account(
                "a0@honeymail.example",
                "pw",
                Ipv4Addr::new(1, 1, 1, 1),
                SimTime::ZERO
            ),
            Err(SignupError::AddressTaken)
        );
    }

    #[test]
    fn login_open_search_star_flow() {
        let (mut svc, mut rng) = service();
        let id = setup_account(&mut svc);
        let c = conn(&svc, &mut rng, "GB");
        let (session, cookie) = svc
            .login(
                "honey@honeymail.example",
                "pw123456",
                &c,
                SimTime::from_secs(60),
            )
            .unwrap();
        assert!(cookie.0 > 0);

        let inbox = svc.list_folder(session, Folder::Inbox).unwrap();
        assert_eq!(inbox.len(), 2);

        let hits = svc
            .search(session, "payment", SimTime::from_secs(70))
            .unwrap();
        assert_eq!(hits, vec![EmailId(2)]);
        let opened = svc
            .open_email(session, hits[0], SimTime::from_secs(80))
            .unwrap();
        assert!(opened.body.contains("payment"));
        svc.star_email(session, hits[0], SimTime::from_secs(85))
            .unwrap();

        let events = svc.drain_events();
        assert!(matches!(events[0], WebmailEvent::LoginSucceeded { .. }));
        assert!(events
            .iter()
            .any(|e| matches!(e, WebmailEvent::EmailOpened { email, .. } if *email == EmailId(2))));
        assert!(events
            .iter()
            .any(|e| matches!(e, WebmailEvent::EmailStarred { .. })));
        // Search queries never appear in the event stream (monitor can't
        // see them) but they are in the provider log.
        assert_eq!(svc.query_log(id).len(), 1);
    }

    #[test]
    fn wrong_password_rejected() {
        let (mut svc, mut rng) = service();
        setup_account(&mut svc);
        let c = conn(&svc, &mut rng, "GB");
        assert_eq!(
            svc.login("honey@honeymail.example", "nope", &c, SimTime::ZERO),
            Err(LoginError::BadCredentials)
        );
        assert_eq!(
            svc.login("ghost@honeymail.example", "pw", &c, SimTime::ZERO),
            Err(LoginError::BadCredentials)
        );
    }

    #[test]
    fn cookie_reuse_identifies_device() {
        let (mut svc, mut rng) = service();
        setup_account(&mut svc);
        let c = conn(&svc, &mut rng, "GB");
        let (_, cookie1) = svc
            .login(
                "honey@honeymail.example",
                "pw123456",
                &c,
                SimTime::from_secs(1),
            )
            .unwrap();
        let c2 = c.clone().with_cookie(cookie1);
        let (_, cookie2) = svc
            .login(
                "honey@honeymail.example",
                "pw123456",
                &c2,
                SimTime::from_secs(100),
            )
            .unwrap();
        assert_eq!(cookie1, cookie2);
        let c3 = conn(&svc, &mut rng, "GB");
        let (_, cookie3) = svc
            .login(
                "honey@honeymail.example",
                "pw123456",
                &c3,
                SimTime::from_secs(200),
            )
            .unwrap();
        assert_ne!(cookie1, cookie3);
    }

    #[test]
    fn sends_are_sinkholed_and_hijack_kills_scraper_login() {
        let (mut svc, mut rng) = service();
        let id = setup_account(&mut svc);
        let c = conn(&svc, &mut rng, "RU");
        let (session, _) = svc
            .login(
                "honey@honeymail.example",
                "pw123456",
                &c,
                SimTime::from_secs(10),
            )
            .unwrap();
        svc.send_email(
            session,
            vec!["victim@other.example".into()],
            "hello",
            "legit message",
            SimTime::from_secs(20),
        )
        .unwrap();
        assert_eq!(svc.sinkhole().len(), 1);

        svc.change_password(session, "attacker-pw", SimTime::from_secs(30))
            .unwrap();
        assert!(svc.account(id).is_hijacked());
        // Scraper tries the original password: locked out.
        let scraper = conn(&svc, &mut rng, "GB");
        assert_eq!(
            svc.login(
                "honey@honeymail.example",
                "pw123456",
                &scraper,
                SimTime::from_secs(40)
            ),
            Err(LoginError::BadCredentials)
        );
        // Attacker's new password works.
        assert!(svc
            .login(
                "honey@honeymail.example",
                "attacker-pw",
                &scraper,
                SimTime::from_secs(50)
            )
            .is_ok());
    }

    #[test]
    fn spam_burst_blocks_account_and_sessions() {
        let (mut svc, mut rng) = service();
        let id = setup_account(&mut svc);
        let c = conn(&svc, &mut rng, "US");
        let (session, _) = svc
            .login(
                "honey@honeymail.example",
                "pw123456",
                &c,
                SimTime::from_secs(10),
            )
            .unwrap();
        let mut blocked = false;
        for i in 0..200 {
            let at = SimTime::from_secs(20 + i * 10);
            match svc.send_email(
                session,
                vec![format!("v{i}@spamtarget.example")],
                "ca$h now",
                "click here",
                at,
            ) {
                Ok(_) => {}
                Err(SendError::Op(OpError::AccountBlocked)) => {
                    blocked = true;
                    break;
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(blocked, "burst spam must block the account");
        assert!(!svc.account(id).state.is_active());
        let c2 = conn(&svc, &mut rng, "US");
        assert_eq!(
            svc.login(
                "honey@honeymail.example",
                "pw123456",
                &c2,
                SimTime::from_secs(9_999)
            ),
            Err(LoginError::AccountBlocked)
        );
        assert!(svc
            .drain_events()
            .iter()
            .any(|e| matches!(e, WebmailEvent::AccountBlocked { account, .. } if *account == id)));
    }

    #[test]
    fn activity_page_records_fingerprint_and_location() {
        let (mut svc, mut rng) = service();
        setup_account(&mut svc);
        let ip = svc.geolocator().plan().sample_host("FR", &mut rng);
        let loc = svc.geolocator().locate(ip);
        let c = ConnectionInfo::new(
            ip,
            ClientConfig::stealth(Browser::Firefox, Os::Linux),
            loc.point,
        );
        let (session, cookie) = svc
            .login(
                "honey@honeymail.example",
                "pw123456",
                &c,
                SimTime::from_secs(5),
            )
            .unwrap();
        let rows = svc.read_activity_page(session).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].cookie, cookie);
        assert_eq!(rows[0].location.country, Some("FR"));
        assert_eq!(rows[0].fingerprint.browser, Browser::Unknown);
        assert_eq!(rows[0].fingerprint.os, Os::Linux);
    }

    #[test]
    fn enabled_login_filter_blocks_tor() {
        let config = ServiceConfig {
            security: SecurityPolicy {
                login_filter_enabled: true,
                ..SecurityPolicy::default()
            },
            ..ServiceConfig::default()
        };
        let (mut svc, mut rng) = service_with(config);
        setup_account(&mut svc);
        let tor_ip = {
            let t = svc.geolocator().tor();
            let mut r = rng.fork(1);
            t.sample_exit(&mut r)
        };
        let loc = svc.geolocator().locate(tor_ip);
        let c = ConnectionInfo::new(
            tor_ip,
            ClientConfig::stealth(Browser::Firefox, Os::Windows),
            loc.point,
        );
        assert_eq!(
            svc.login(
                "honey@honeymail.example",
                "pw123456",
                &c,
                SimTime::from_secs(5)
            ),
            Err(LoginError::SuspiciousLogin)
        );
    }

    #[test]
    fn drafts_promote_to_sent() {
        let (mut svc, mut rng) = service();
        setup_account(&mut svc);
        let c = conn(&svc, &mut rng, "GB");
        let (session, _) = svc
            .login(
                "honey@honeymail.example",
                "pw123456",
                &c,
                SimTime::from_secs(1),
            )
            .unwrap();
        let draft = svc
            .create_draft(
                session,
                vec!["x@y.example".into()],
                "draft subject",
                "draft body",
                SimTime::from_secs(2),
            )
            .unwrap();
        assert_eq!(
            svc.list_folder(session, Folder::Drafts).unwrap(),
            vec![draft]
        );
        svc.send_draft(session, draft, SimTime::from_secs(3))
            .unwrap();
        assert!(svc.list_folder(session, Folder::Drafts).unwrap().is_empty());
        assert!(svc
            .list_folder(session, Folder::Sent)
            .unwrap()
            .contains(&draft));
        assert_eq!(svc.sinkhole().len(), 1);
    }

    #[test]
    fn invalid_session_is_rejected_everywhere() {
        let (mut svc, _) = service();
        setup_account(&mut svc);
        let bogus = SessionId(999);
        assert_eq!(
            svc.open_email(bogus, EmailId(1), SimTime::ZERO),
            Err(OpError::InvalidSession)
        );
        assert_eq!(
            svc.search(bogus, "x", SimTime::ZERO),
            Err(OpError::InvalidSession)
        );
        assert_eq!(
            svc.read_activity_page(bogus).unwrap_err(),
            OpError::InvalidSession
        );
    }

    #[test]
    fn automation_rules_apply_at_delivery() {
        let (mut svc, _) = service();
        let id = svc
            .create_account(
                "r@honeymail.example",
                "pw",
                Ipv4Addr::new(198, 51, 0, 3),
                SimTime::ZERO,
            )
            .unwrap();
        svc.add_rule(
            id,
            crate::rules::Rule {
                matcher: crate::rules::Matcher::SubjectContains("invoice".into()),
                action: crate::rules::RuleAction::ApplyLabel("finance".into()),
            },
        );
        svc.add_rule(
            id,
            crate::rules::Rule {
                matcher: crate::rules::Matcher::FromContains("noreply@".into()),
                action: crate::rules::RuleAction::MarkRead,
            },
        );
        assert_eq!(svc.rule_count(id), 2);
        svc.seed_mailbox(
            id,
            vec![
                Email {
                    id: EmailId(1),
                    from: "peer@x".into(),
                    to: vec!["r@honeymail.example".into()],
                    subject: "Invoice attached".into(),
                    body: "see attachment".into(),
                    timestamp: MailTime(-50),
                },
                Email {
                    id: EmailId(2),
                    from: "noreply@newsletter.example".into(),
                    to: vec!["r@honeymail.example".into()],
                    subject: "weekly digest".into(),
                    body: "news".into(),
                    timestamp: MailTime(-40),
                },
            ],
        );
        let labelled = svc.mailbox(id).get(EmailId(1)).unwrap();
        assert!(labelled.labels.contains("finance"));
        assert!(!labelled.read);
        let digested = svc.mailbox(id).get(EmailId(2)).unwrap();
        assert!(digested.read, "MarkRead rule must have fired");
        assert!(digested.labels.is_empty());
    }

    #[test]
    fn extortion_draft_burst_blocks_faster() {
        let (mut svc, mut rng) = service();
        let id = setup_account(&mut svc);
        let c = conn(&svc, &mut rng, "NG");
        let (session, _) = svc
            .login(
                "honey@honeymail.example",
                "pw123456",
                &c,
                SimTime::from_secs(1),
            )
            .unwrap();
        let mut sends = 0;
        for i in 0..30 {
            sends = i + 1;
            let r = svc.send_email(
                session,
                vec![format!("victim{i}@am.example")],
                "I know what you did",
                "send 2 bitcoin to wallet 1abc or I expose you",
                SimTime::from_secs(10 + i * 5),
            );
            if r.is_err() {
                break;
            }
        }
        assert!(sends <= 12, "extortion spam lasted {sends} sends");
        assert!(!svc.account(id).state.is_active());
    }
}
