//! The visitor-activity page.
//!
//! Gmail's "Last account activity" page lists recent accesses with a
//! cookie identifier, access time, IP-derived geolocation, and the
//! fingerprinted system configuration. The paper's external scripts log
//! in periodically and scrape this page — it is the *only* source of
//! location and device information in the study. The page is a bounded
//! ring: if more accesses happen between two scrapes than the page holds,
//! the oldest are lost (a real censoring effect we preserve).

use pwnd_net::access::CookieId;
use pwnd_net::geolocate::GeoLocation;
use pwnd_net::useragent::Fingerprint;
use pwnd_sim::SimTime;
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// One row of the activity page.
#[derive(Clone, Debug)]
pub struct ActivityRow {
    /// The access cookie (one per unique device).
    pub cookie: CookieId,
    /// When the access happened.
    pub at: SimTime,
    /// Source address.
    pub ip: Ipv4Addr,
    /// Provider geolocation of the source address.
    pub location: GeoLocation,
    /// Fingerprinted browser/OS.
    pub fingerprint: Fingerprint,
}

/// Default number of rows Gmail shows (10 at the time of the study).
pub const DEFAULT_CAPACITY: usize = 10;

/// A bounded, newest-first activity page.
#[derive(Clone, Debug)]
pub struct ActivityPage {
    rows: VecDeque<ActivityRow>,
    capacity: usize,
    total_recorded: u64,
}

impl Default for ActivityPage {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl ActivityPage {
    /// A page holding at most `capacity` rows.
    pub fn with_capacity(capacity: usize) -> ActivityPage {
        assert!(capacity > 0, "activity page needs at least one row");
        ActivityPage {
            rows: VecDeque::with_capacity(capacity),
            capacity,
            total_recorded: 0,
        }
    }

    /// Record an access (evicting the oldest row when full).
    pub fn record(&mut self, row: ActivityRow) {
        if self.rows.len() == self.capacity {
            self.rows.pop_front();
        }
        self.rows.push_back(row);
        self.total_recorded += 1;
    }

    /// Current rows, oldest first.
    pub fn rows(&self) -> impl Iterator<Item = &ActivityRow> {
        self.rows.iter()
    }

    /// Number of rows currently visible.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the page is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Lifetime count of recorded accesses (ground truth; the scraper only
    /// ever sees the visible window).
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_net::geo::GeoPoint;
    use pwnd_net::useragent::{Browser, Os};

    fn row(n: u64) -> ActivityRow {
        ActivityRow {
            cookie: CookieId(n),
            at: SimTime::from_secs(n),
            ip: Ipv4Addr::new(1, 2, 3, 4),
            location: GeoLocation {
                country: Some("GB"),
                city: "London",
                point: GeoPoint {
                    lat: 51.5,
                    lon: -0.1,
                },
            },
            fingerprint: Fingerprint {
                browser: Browser::Chrome,
                os: Os::Windows,
            },
        }
    }

    #[test]
    fn records_in_order() {
        let mut p = ActivityPage::default();
        for n in 0..5 {
            p.record(row(n));
        }
        let cookies: Vec<u64> = p.rows().map(|r| r.cookie.0).collect();
        assert_eq!(cookies, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut p = ActivityPage::with_capacity(3);
        for n in 0..10 {
            p.record(row(n));
        }
        let cookies: Vec<u64> = p.rows().map(|r| r.cookie.0).collect();
        assert_eq!(cookies, vec![7, 8, 9]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.total_recorded(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_capacity_rejected() {
        ActivityPage::with_capacity(0);
    }
}
