//! Property-based tests for the webmail service: random operation
//! sequences must preserve the service's invariants.

use proptest::prelude::*;
use pwnd_corpus::email::{Email, EmailId, MailTime};
use pwnd_net::access::ConnectionInfo;
use pwnd_net::geo::GeoDb;
use pwnd_net::geolocate::Geolocator;
use pwnd_net::ip::AddressPlan;
use pwnd_net::tor::TorDirectory;
use pwnd_net::useragent::{Browser, ClientConfig, Os};
use pwnd_sim::{Rng, SimTime};
use pwnd_webmail::mailbox::{Folder, Mailbox};
use pwnd_webmail::service::{ServiceConfig, WebmailService};

#[derive(Clone, Debug)]
enum Op {
    Deliver(u64, i64),
    Open(u64),
    Star(u64),
    Draft(u64, i64),
    Promote(u64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..40, -500i64..500).prop_map(|(i, t)| Op::Deliver(i, t)),
        (0u64..40).prop_map(Op::Open),
        (0u64..40).prop_map(Op::Star),
        (0u64..40, -500i64..500).prop_map(|(i, t)| Op::Draft(i, t)),
        (0u64..40).prop_map(Op::Promote),
    ]
}

fn email(id: u64, ts: i64) -> Email {
    Email {
        id: EmailId(id),
        from: "a@x".into(),
        to: vec!["b@x".into()],
        subject: format!("s{id}"),
        body: "body".into(),
        timestamp: MailTime(ts),
    }
}

proptest! {
    /// Any operation sequence leaves the mailbox consistent: folders
    /// partition the entries, listings are sorted newest-first, unread ⊆
    /// inbox.
    #[test]
    fn mailbox_invariants_under_random_ops(ops in proptest::collection::vec(op(), 0..120)) {
        let mut mb = Mailbox::new();
        for o in ops {
            match o {
                Op::Deliver(i, t) => mb.deliver(email(i, t)),
                Op::Open(i) => { let _ = mb.open(EmailId(i)); }
                Op::Star(i) => { let _ = mb.star(EmailId(i)); }
                Op::Draft(i, t) => mb.store_draft(email(i, t)),
                Op::Promote(i) => { let _ = mb.promote_draft(EmailId(i)); }
            }
        }
        let inbox = mb.list(Folder::Inbox);
        let sent = mb.list(Folder::Sent);
        let drafts = mb.list(Folder::Drafts);
        prop_assert_eq!(inbox.len() + sent.len() + drafts.len(), mb.len());
        // Listings are sorted newest-first.
        for folder in [Folder::Inbox, Folder::Sent, Folder::Drafts] {
            let ids = mb.list(folder);
            for w in ids.windows(2) {
                let a = mb.get(w[0]).unwrap().email.timestamp;
                let b = mb.get(w[1]).unwrap().email.timestamp;
                prop_assert!(a >= b);
            }
        }
        // Unread is a subset of the inbox and none of them are read.
        for id in mb.unread() {
            let e = mb.get(id).unwrap();
            prop_assert_eq!(e.folder, Folder::Inbox);
            prop_assert!(!e.read);
        }
        // Opened messages are read.
        // (Re-open everything and check.)
        let all: Vec<EmailId> = inbox.iter().chain(&sent).chain(&drafts).copied().collect();
        for id in all {
            mb.open(id);
            prop_assert!(mb.get(id).unwrap().read);
        }
    }

    /// Logins with the wrong password never succeed, never mint cookies,
    /// and never appear on the activity page — for arbitrary passwords.
    #[test]
    fn bad_credentials_never_authenticate(pw in ".{0,24}", seed in any::<u64>()) {
        prop_assume!(pw != "correct-horse");
        let geo = GeoDb::new();
        let plan = AddressPlan::new(&geo);
        let mut rng = Rng::seed_from(seed);
        let tor = TorDirectory::generate(32, &mut rng);
        let mut svc = WebmailService::new(ServiceConfig::default(), Geolocator::new(plan, geo, tor));
        svc.create_account(
            "h@honeymail.example",
            "correct-horse",
            std::net::Ipv4Addr::new(198, 51, 0, 1),
            SimTime::ZERO,
        )
        .unwrap();
        let ip = svc.geolocator().plan().sample_host("DE", &mut rng);
        let loc = svc.geolocator().locate(ip);
        let conn = ConnectionInfo::new(ip, ClientConfig::plain(Browser::Chrome, Os::Windows), loc.point);
        let res = svc.login("h@honeymail.example", &pw, &conn, SimTime::from_secs(10));
        prop_assert!(res.is_err());
        // And the failed attempt emitted no events.
        prop_assert!(svc.drain_events().is_empty());
    }

    /// The content scanner flags extortion regardless of the surrounding
    /// text, and never flags plain business mail.
    #[test]
    fn extortion_flagging(prefix in "[a-z ]{0,40}", suffix in "[a-z ]{0,40}") {
        // Route through the public API: send a message and check how fast
        // abuse accumulates. We only verify the classifier's monotonicity
        // here: ransom text must never be *less* alarming than the same
        // envelope without it.
        let geo = GeoDb::new();
        let plan = AddressPlan::new(&geo);
        let mut rng = Rng::seed_from(1);
        let tor = TorDirectory::generate(16, &mut rng);
        let mut svc = WebmailService::new(ServiceConfig::default(), Geolocator::new(plan, geo, tor));
        let _ = svc
            .create_account("h@honeymail.example", "pw", std::net::Ipv4Addr::new(198, 51, 0, 1), SimTime::ZERO)
            .unwrap();
        svc.set_send_from_override(pwnd_webmail::account::AccountId(0), "sink@x");
        let ip = svc.geolocator().plan().sample_host("US", &mut rng);
        let loc = svc.geolocator().locate(ip);
        let conn = ConnectionInfo::new(ip, ClientConfig::plain(Browser::Chrome, Os::Windows), loc.point);
        let (session, _) = svc
            .login("h@honeymail.example", "pw", &conn, SimTime::from_secs(1))
            .unwrap();
        let ransom = format!("{prefix} send 2 bitcoin now {suffix}");
        let mut sends = 0;
        for i in 0..30u64 {
            match svc.send_email(session, vec!["v@x".into()], "hi", &ransom, SimTime::from_secs(10 + i)) {
                Ok(_) => sends += 1,
                Err(_) => break,
            }
        }
        // Extortion content must block within a dozen sends no matter the
        // padding around the keyword.
        prop_assert!(sends <= 12, "ransom survived {sends} sends");
    }
}

/// Small vocabulary so multi-term queries actually intersect; the last
/// entries are rare or absent, exercising the empty-posting short
/// circuit.
const VOCAB: &[&str] = &[
    "payment",
    "invoice",
    "account",
    "password",
    "meeting",
    "report",
    "wire",
    "transfer",
    "lunch",
    "bitcoin",
    "zzzunseen",
];

fn vocab_text(idxs: &[usize]) -> String {
    idxs.iter()
        .map(|&i| VOCAB[i % VOCAB.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

/// The naive reference: an email matches iff it contains every distinct
/// query term; rank newest-first with the id as tie-break. This is
/// exactly what the pre-optimization clone-every-posting-set
/// `SearchIndex::search` computed.
fn naive_search(emails: &[Email], query: &str) -> Vec<EmailId> {
    let terms: Vec<String> = query
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect();
    if terms.is_empty() {
        return Vec::new();
    }
    let mut hits: Vec<EmailId> = emails
        .iter()
        .filter(|e| {
            let text = format!("{}\n{}", e.subject, e.body).to_lowercase();
            let words: std::collections::HashSet<&str> = text
                .split(|c: char| !c.is_ascii_alphanumeric())
                .filter(|t| !t.is_empty())
                .collect();
            terms.iter().all(|t| words.contains(t.as_str()))
        })
        .map(|e| e.id)
        .collect();
    hits.sort_by_key(|&id| {
        let ts = emails
            .iter()
            .find(|e| e.id == id)
            .map(|e| e.timestamp)
            .unwrap_or(MailTime(i64::MIN));
        (std::cmp::Reverse(ts), id)
    });
    hits
}

proptest! {
    /// The smallest-first probing intersection in `SearchIndex::search`
    /// agrees with the naive scan-every-email reference on arbitrary
    /// mailboxes and queries (including repeated terms, case changes,
    /// punctuation, and terms no email contains).
    #[test]
    fn optimized_search_matches_naive_reference(
        specs in proptest::collection::vec(
            (proptest::collection::vec(0usize..VOCAB.len(), 0..6),
             proptest::collection::vec(0usize..VOCAB.len(), 0..12),
             -500i64..500),
            0..25,
        ),
        queries in proptest::collection::vec(
            proptest::collection::vec(0usize..VOCAB.len() + 2, 0..4),
            1..8,
        ),
    ) {
        let emails: Vec<Email> = specs
            .iter()
            .enumerate()
            .map(|(i, (subj, body, ts))| Email {
                id: EmailId(i as u64),
                from: "a@x".into(),
                to: vec!["b@x".into()],
                subject: vocab_text(subj),
                body: vocab_text(body),
                timestamp: MailTime(*ts),
            })
            .collect();
        let mut mb = Mailbox::new();
        for e in &emails {
            mb.deliver(e.clone());
        }
        let mut vocab = pwnd_sim::intern::Interner::new();
        let mut idx = pwnd_webmail::search::SearchIndex::build(&mb, &mut vocab);
        for (qi, q) in queries.iter().enumerate() {
            // Indexes past VOCAB map to an unindexed word; odd slots get
            // uppercase + punctuation noise to exercise normalization.
            let mut words: Vec<String> = q
                .iter()
                .map(|&i| VOCAB.get(i).copied().unwrap_or("neverwritten").to_string())
                .collect();
            if qi % 2 == 1 {
                words = words.iter().map(|w| w.to_uppercase()).collect();
            }
            let query = words.join(if qi % 3 == 0 { " " } else { ", " });
            let got = idx.search(&vocab, &query, SimTime::from_secs(qi as u64));
            let want = naive_search(&emails, &query);
            prop_assert_eq!(got, want, "query {:?}", query);
        }
    }
}
