//! Property-based tests for the webmail service: random operation
//! sequences must preserve the service's invariants.

use proptest::prelude::*;
use pwnd_corpus::email::{Email, EmailId, MailTime};
use pwnd_net::access::ConnectionInfo;
use pwnd_net::geo::GeoDb;
use pwnd_net::geolocate::Geolocator;
use pwnd_net::ip::AddressPlan;
use pwnd_net::tor::TorDirectory;
use pwnd_net::useragent::{Browser, ClientConfig, Os};
use pwnd_sim::{Rng, SimTime};
use pwnd_webmail::mailbox::{Folder, Mailbox};
use pwnd_webmail::service::{ServiceConfig, WebmailService};

#[derive(Clone, Debug)]
enum Op {
    Deliver(u64, i64),
    Open(u64),
    Star(u64),
    Draft(u64, i64),
    Promote(u64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..40, -500i64..500).prop_map(|(i, t)| Op::Deliver(i, t)),
        (0u64..40).prop_map(Op::Open),
        (0u64..40).prop_map(Op::Star),
        (0u64..40, -500i64..500).prop_map(|(i, t)| Op::Draft(i, t)),
        (0u64..40).prop_map(Op::Promote),
    ]
}

fn email(id: u64, ts: i64) -> Email {
    Email {
        id: EmailId(id),
        from: "a@x".into(),
        to: vec!["b@x".into()],
        subject: format!("s{id}"),
        body: "body".into(),
        timestamp: MailTime(ts),
    }
}

proptest! {
    /// Any operation sequence leaves the mailbox consistent: folders
    /// partition the entries, listings are sorted newest-first, unread ⊆
    /// inbox.
    #[test]
    fn mailbox_invariants_under_random_ops(ops in proptest::collection::vec(op(), 0..120)) {
        let mut mb = Mailbox::new();
        for o in ops {
            match o {
                Op::Deliver(i, t) => mb.deliver(email(i, t)),
                Op::Open(i) => { let _ = mb.open(EmailId(i)); }
                Op::Star(i) => { let _ = mb.star(EmailId(i)); }
                Op::Draft(i, t) => mb.store_draft(email(i, t)),
                Op::Promote(i) => { let _ = mb.promote_draft(EmailId(i)); }
            }
        }
        let inbox = mb.list(Folder::Inbox);
        let sent = mb.list(Folder::Sent);
        let drafts = mb.list(Folder::Drafts);
        prop_assert_eq!(inbox.len() + sent.len() + drafts.len(), mb.len());
        // Listings are sorted newest-first.
        for folder in [Folder::Inbox, Folder::Sent, Folder::Drafts] {
            let ids = mb.list(folder);
            for w in ids.windows(2) {
                let a = mb.get(w[0]).unwrap().email.timestamp;
                let b = mb.get(w[1]).unwrap().email.timestamp;
                prop_assert!(a >= b);
            }
        }
        // Unread is a subset of the inbox and none of them are read.
        for id in mb.unread() {
            let e = mb.get(id).unwrap();
            prop_assert_eq!(e.folder, Folder::Inbox);
            prop_assert!(!e.read);
        }
        // Opened messages are read.
        // (Re-open everything and check.)
        let all: Vec<EmailId> = inbox.iter().chain(&sent).chain(&drafts).copied().collect();
        for id in all {
            mb.open(id);
            prop_assert!(mb.get(id).unwrap().read);
        }
    }

    /// Logins with the wrong password never succeed, never mint cookies,
    /// and never appear on the activity page — for arbitrary passwords.
    #[test]
    fn bad_credentials_never_authenticate(pw in ".{0,24}", seed in any::<u64>()) {
        prop_assume!(pw != "correct-horse");
        let geo = GeoDb::new();
        let plan = AddressPlan::new(&geo);
        let mut rng = Rng::seed_from(seed);
        let tor = TorDirectory::generate(32, &mut rng);
        let mut svc = WebmailService::new(ServiceConfig::default(), Geolocator::new(plan, geo, tor));
        svc.create_account(
            "h@honeymail.example",
            "correct-horse",
            std::net::Ipv4Addr::new(198, 51, 0, 1),
            SimTime::ZERO,
        )
        .unwrap();
        let ip = svc.geolocator().plan().sample_host("DE", &mut rng);
        let loc = svc.geolocator().locate(ip);
        let conn = ConnectionInfo::new(ip, ClientConfig::plain(Browser::Chrome, Os::Windows), loc.point);
        let res = svc.login("h@honeymail.example", &pw, &conn, SimTime::from_secs(10));
        prop_assert!(res.is_err());
        // And the failed attempt emitted no events.
        prop_assert!(svc.drain_events().is_empty());
    }

    /// The content scanner flags extortion regardless of the surrounding
    /// text, and never flags plain business mail.
    #[test]
    fn extortion_flagging(prefix in "[a-z ]{0,40}", suffix in "[a-z ]{0,40}") {
        // Route through the public API: send a message and check how fast
        // abuse accumulates. We only verify the classifier's monotonicity
        // here: ransom text must never be *less* alarming than the same
        // envelope without it.
        let geo = GeoDb::new();
        let plan = AddressPlan::new(&geo);
        let mut rng = Rng::seed_from(1);
        let tor = TorDirectory::generate(16, &mut rng);
        let mut svc = WebmailService::new(ServiceConfig::default(), Geolocator::new(plan, geo, tor));
        let _ = svc
            .create_account("h@honeymail.example", "pw", std::net::Ipv4Addr::new(198, 51, 0, 1), SimTime::ZERO)
            .unwrap();
        svc.set_send_from_override(pwnd_webmail::account::AccountId(0), "sink@x");
        let ip = svc.geolocator().plan().sample_host("US", &mut rng);
        let loc = svc.geolocator().locate(ip);
        let conn = ConnectionInfo::new(ip, ClientConfig::plain(Browser::Chrome, Os::Windows), loc.point);
        let (session, _) = svc
            .login("h@honeymail.example", "pw", &conn, SimTime::from_secs(1))
            .unwrap();
        let ransom = format!("{prefix} send 2 bitcoin now {suffix}");
        let mut sends = 0;
        for i in 0..30u64 {
            match svc.send_email(session, vec!["v@x".into()], "hi", &ransom, SimTime::from_secs(10 + i)) {
                Ok(_) => sends += 1,
                Err(_) => break,
            }
        }
        // Extortion content must block within a dozen sends no matter the
        // padding around the keyword.
        prop_assert!(sends <= 12, "ransom survived {sends} sends");
    }
}
