#![warn(missing_docs)]
// The monitor/fault paths must degrade gracefully, never panic;
// test code may unwrap freely.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # pwnd-faults — deterministic fault injection
//!
//! The paper's measurement infrastructure was lossy in practice: Apps
//! Script quota kills and trigger misfires silenced scripts, hijackers
//! deleted them outright, the activity-page scraper's logins failed
//! transiently, and notification emails went missing (§4.4, §5). The
//! pipeline outside this crate used to assume a perfect substrate; this
//! crate models the imperfections so the rest of the stack can practice
//! recovering from them.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** A [`FaultPlan`] is a pure function of
//!    `(seed, profile, horizon)`. Compiling it twice yields equal plans,
//!    and every per-event decision is a pure hash of the event's identity
//!    — never a stateful draw — so decision order cannot perturb
//!    outcomes. A given seed + profile reproduces the identical run.
//! 2. **Isolation.** The fault stream derives from its own salted seed
//!    and never consumes simulation RNG. With [`FaultProfile::none`] the
//!    plan injects nothing and consumers take their historical paths:
//!    faults-off output is byte-identical to a build without this crate.
//! 3. **Recovery is the consumer's job.** The plan only *decides* what
//!    fails; the scraper retries with [`RetryPolicy`] backoff, the
//!    collector deduplicates at-least-once redelivery, and the dataset
//!    builder turns known gaps into per-account coverage fractions.

pub mod backoff;
pub mod plan;
pub mod profile;

pub use backoff::RetryPolicy;
pub use plan::{FaultPlan, NotificationFate, Window};
pub use profile::FaultProfile;
