//! Sim-time retry with exponential backoff and jitter.

use pwnd_sim::SimDuration;

/// How a consumer retries a transiently failing operation. Delays are
/// simulated time, not wall clock: a scraper that backs off 2 minutes
/// re-attempts its login at `t + 2min` on the simulation clock.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so 4 = 1 try + 3 retries).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Multiplier applied per further retry.
    pub factor: f64,
    /// Ceiling on any single delay.
    pub cap: SimDuration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled into
    /// `[1 - jitter, 1 + jitter]` by the caller-supplied roll (equal
    /// jitter keeps retries spread without ever collapsing to zero).
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base: SimDuration::from_secs(30),
            factor: 2.0,
            cap: SimDuration::minutes(10),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// The backoff delay before retry number `retry` (0-based), jittered
    /// by `roll` (a uniform `[0, 1)` draw the caller supplies — the
    /// policy itself holds no RNG, so schedules stay reproducible).
    pub fn delay(&self, retry: u32, roll: f64) -> SimDuration {
        let cap_secs = self.cap.as_secs() as f64;
        // The exponential step is a saturating multiply, not a closed-form
        // power: `factor.powi(retry as i32)` wraps the exponent negative
        // once `retry` passes `i32::MAX` — collapsing a huge backoff to
        // under a second — and a u64 restatement would overflow long
        // before that. Growing one factor at a time and stopping at the
        // cap (or at a fixed point: factor 1.0, underflow to zero,
        // saturation at infinity) cannot wrap or overflow at any attempt
        // count, and is exact for the power-of-two factors in use.
        let mut raw = self.base.as_secs() as f64;
        for _ in 0..retry {
            if raw >= cap_secs {
                break;
            }
            let next = raw * self.factor;
            if next == raw {
                break;
            }
            raw = next;
        }
        let capped = raw.min(cap_secs);
        let j = self.jitter.clamp(0.0, 1.0);
        let scale = 1.0 - j + 2.0 * j * roll.clamp(0.0, 1.0);
        SimDuration::from_secs((capped * scale).max(1.0) as u64)
    }

    /// Number of retries after the first attempt.
    pub fn retries(&self) -> u32 {
        self.max_attempts.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_then_cap() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let d0 = p.delay(0, 0.5);
        let d1 = p.delay(1, 0.5);
        let d2 = p.delay(2, 0.5);
        assert!(d0 < d1 && d1 < d2);
        // Far out, the cap binds.
        assert_eq!(p.delay(20, 0.5), p.cap);
    }

    #[test]
    fn jitter_spreads_but_never_zeroes() {
        let p = RetryPolicy::default();
        let lo = p.delay(0, 0.0);
        let hi = p.delay(0, 0.999);
        assert!(lo < hi);
        assert!(lo >= SimDuration::from_secs(1));
    }

    #[test]
    fn same_roll_same_delay() {
        let p = RetryPolicy::default();
        assert_eq!(p.delay(2, 0.37), p.delay(2, 0.37));
    }

    #[test]
    fn attempt_64_and_beyond_saturate_at_the_cap() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        // 30s * 2^64 overflows u64 (and 2^(2^31) overflows the powi
        // exponent); the saturating step must pin both to the cap.
        assert_eq!(p.delay(64, 0.5), p.cap);
        assert_eq!(p.delay(u32::MAX, 0.5), p.cap);
        // Delays never decrease on the way up.
        let mut prev = SimDuration::from_secs(0);
        for retry in 0..70 {
            let d = p.delay(retry, 0.5);
            assert!(d >= prev, "retry {retry} shrank: {d:?} < {prev:?}");
            prev = d;
        }
    }

    #[test]
    fn degenerate_factors_terminate_and_stay_sane() {
        let flat = RetryPolicy {
            factor: 1.0,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(flat.delay(u32::MAX, 0.5), flat.base);
        let shrinking = RetryPolicy {
            factor: 0.5,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        // Shrinks toward the 1-second floor, never panics or wraps.
        assert_eq!(shrinking.delay(u32::MAX, 0.5), SimDuration::from_secs(1));
    }
}
