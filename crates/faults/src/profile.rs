//! Fault profiles: how unreliable the world is asked to be.

/// Rates and shapes for every fault kind the plan can inject. All rates
/// are probabilities (per attempt, per notification, per account-day);
/// window counts are expected occurrences per 30 simulated days.
///
/// ```
/// use pwnd_faults::FaultProfile;
///
/// assert!(FaultProfile::none().is_none());        // the default: no faults
/// let light = FaultProfile::by_name("light").unwrap();
/// assert!(light.scaled(0.0).is_none());           // ablation endpoint
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FaultProfile {
    /// Expected whole-infrastructure scraper outages per 30 days (the
    /// monitoring host down, nothing scrapes).
    pub scraper_outages_per_30d: f64,
    /// Mean scraper outage duration, hours.
    pub scraper_outage_hours: f64,
    /// Probability one scraper login attempt fails transiently (browser
    /// timeout, flaky login form). Retried with backoff.
    pub scraper_flake_rate: f64,
    /// Probability a script notification email is lost in transit.
    pub notification_loss_rate: f64,
    /// Probability a notification is redelivered (at-least-once duplicate).
    pub notification_dup_rate: f64,
    /// Probability an account's daily time-driven trigger misfires and
    /// the whole tick (heartbeat + polling) is skipped.
    pub trigger_misfire_rate: f64,
    /// Expected webmail maintenance windows per 30 days (provider down:
    /// every login, attacker or scraper, is refused).
    pub maintenance_per_30d: f64,
    /// Mean maintenance window duration, hours.
    pub maintenance_hours: f64,
}

impl FaultProfile {
    /// No faults at all. The plan compiled from this profile injects
    /// nothing; consumers behave exactly as they did before the fault
    /// layer existed.
    pub fn none() -> FaultProfile {
        FaultProfile {
            scraper_outages_per_30d: 0.0,
            scraper_outage_hours: 0.0,
            scraper_flake_rate: 0.0,
            notification_loss_rate: 0.0,
            notification_dup_rate: 0.0,
            trigger_misfire_rate: 0.0,
            maintenance_per_30d: 0.0,
            maintenance_hours: 0.0,
        }
    }

    /// The dropout levels the paper's infrastructure plausibly suffered:
    /// occasional flakes and losses, rare outages.
    pub fn light() -> FaultProfile {
        FaultProfile {
            scraper_outages_per_30d: 0.5,
            scraper_outage_hours: 4.0,
            scraper_flake_rate: 0.05,
            notification_loss_rate: 0.02,
            notification_dup_rate: 0.02,
            trigger_misfire_rate: 0.01,
            maintenance_per_30d: 0.25,
            maintenance_hours: 2.0,
        }
    }

    /// Hostile conditions for chaos testing: frequent outages, lossy
    /// delivery, misfiring triggers.
    pub fn heavy() -> FaultProfile {
        FaultProfile {
            scraper_outages_per_30d: 3.0,
            scraper_outage_hours: 12.0,
            scraper_flake_rate: 0.25,
            notification_loss_rate: 0.15,
            notification_dup_rate: 0.10,
            trigger_misfire_rate: 0.08,
            maintenance_per_30d: 1.5,
            maintenance_hours: 6.0,
        }
    }

    /// Look a profile up by CLI name.
    pub fn by_name(name: &str) -> Option<FaultProfile> {
        match name {
            "none" => Some(FaultProfile::none()),
            "light" => Some(FaultProfile::light()),
            "heavy" => Some(FaultProfile::heavy()),
            _ => None,
        }
    }

    /// Scale every rate by `factor` (clamped to non-negative). The chaos
    /// sweep uses this to trace a data-loss vs fault-rate curve; durations
    /// are left alone so windows stay comparable across factors.
    pub fn scaled(&self, factor: f64) -> FaultProfile {
        let f = factor.max(0.0);
        FaultProfile {
            scraper_outages_per_30d: self.scraper_outages_per_30d * f,
            scraper_outage_hours: self.scraper_outage_hours,
            scraper_flake_rate: (self.scraper_flake_rate * f).min(1.0),
            notification_loss_rate: (self.notification_loss_rate * f).min(1.0),
            notification_dup_rate: (self.notification_dup_rate * f).min(1.0),
            trigger_misfire_rate: (self.trigger_misfire_rate * f).min(1.0),
            maintenance_per_30d: self.maintenance_per_30d * f,
            maintenance_hours: self.maintenance_hours,
        }
    }

    /// The canonical name of this profile — the inverse of
    /// [`FaultProfile::by_name`] for the three presets, `"custom"` for
    /// anything else (e.g. a [`FaultProfile::scaled`] chaos point). The
    /// fleet-store manifest records this per shard; it is informational
    /// (the config fingerprint is what actually guards reuse), so
    /// `"custom"` losing the exact rates is fine.
    pub fn describe(&self) -> &'static str {
        for name in ["none", "light", "heavy"] {
            if FaultProfile::by_name(name).as_ref() == Some(self) {
                return name;
            }
        }
        "custom"
    }

    /// Whether this profile injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.scraper_outages_per_30d == 0.0
            && self.scraper_flake_rate == 0.0
            && self.notification_loss_rate == 0.0
            && self.notification_dup_rate == 0.0
            && self.trigger_misfire_rate == 0.0
            && self.maintenance_per_30d == 0.0
    }
}

impl Default for FaultProfile {
    fn default() -> FaultProfile {
        FaultProfile::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_profiles_resolve() {
        assert!(FaultProfile::by_name("none").unwrap().is_none());
        assert!(!FaultProfile::by_name("light").unwrap().is_none());
        assert!(!FaultProfile::by_name("heavy").unwrap().is_none());
        assert!(FaultProfile::by_name("nope").is_none());
    }

    #[test]
    fn scaling_to_zero_is_none() {
        assert!(FaultProfile::heavy().scaled(0.0).is_none());
        assert_eq!(FaultProfile::heavy().scaled(1.0), FaultProfile::heavy());
    }

    #[test]
    fn scaling_clamps_probabilities() {
        let p = FaultProfile::heavy().scaled(100.0);
        assert!(p.scraper_flake_rate <= 1.0);
        assert!(p.notification_loss_rate <= 1.0);
    }

    #[test]
    fn describe_inverts_by_name_for_presets() {
        for name in ["none", "light", "heavy"] {
            assert_eq!(FaultProfile::by_name(name).unwrap().describe(), name);
        }
        assert_eq!(FaultProfile::heavy().scaled(0.5).describe(), "custom");
    }
}
