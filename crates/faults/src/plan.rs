//! Compiling a profile into a concrete, reproducible fault plan.

use crate::profile::FaultProfile;
use pwnd_sim::{Rng, SimDuration, SimTime};

/// Salt mixed into the experiment seed so the fault stream can never
/// collide with a simulation stream (which all fork from the unsalted
/// master generator).
const FAULT_STREAM_SALT: u64 = 0xFA17_5EED_0B5E_55ED;

/// Hash-domain separators for per-event decisions.
const KIND_FLAKE: u64 = 1;
const KIND_NOTE: u64 = 2;
const KIND_MISFIRE: u64 = 3;
const KIND_JITTER: u64 = 4;

/// A half-open `[start, end)` downtime window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Window {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
}

impl Window {
    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// What happens to one notification in transit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NotificationFate {
    /// Delivered exactly once.
    Deliver,
    /// Lost in transit; never arrives.
    Lose,
    /// Delivered, then redelivered (at-least-once semantics: the
    /// collector sees a duplicate and must deduplicate).
    DeliverTwice,
}

/// The per-run fault schedule: downtime windows are materialized at
/// compile time, per-event decisions are pure hashes of the event's
/// identity. Two compilations of the same `(seed, profile, horizon)` are
/// identical ([`PartialEq`] proves it in tests), and no query ever
/// mutates the plan, so call order is irrelevant.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    profile: FaultProfile,
    decision_seed: u64,
    scraper_outages: Vec<Window>,
    maintenance: Vec<Window>,
}

impl FaultPlan {
    /// Compile the plan for one run. `seed` is the experiment's master
    /// seed; the plan salts it into a dedicated stream, so compiling the
    /// plan consumes nothing from the simulation's generators.
    pub fn compile(seed: u64, profile: &FaultProfile, horizon: SimDuration) -> FaultPlan {
        let mut rng = Rng::seed_from(seed ^ FAULT_STREAM_SALT);
        let decision_seed = rng.next_u64();
        let days = horizon.as_days_f64();
        let scraper_outages = sample_windows(
            &mut rng,
            profile.scraper_outages_per_30d,
            profile.scraper_outage_hours,
            days,
        );
        let maintenance = sample_windows(
            &mut rng,
            profile.maintenance_per_30d,
            profile.maintenance_hours,
            days,
        );
        FaultPlan {
            profile: profile.clone(), // lint:allow(alloc-hot): the plan archives its own profile snapshot
            decision_seed,
            scraper_outages,
            maintenance,
        }
    }

    /// A plan that injects nothing (the default wiring everywhere).
    pub fn none() -> FaultPlan {
        FaultPlan::compile(0, &FaultProfile::none(), SimDuration::days(0))
    }

    /// Whether this plan can inject anything at all. Consumers use this
    /// to keep their fault-free fast paths branch-cheap.
    pub fn is_none(&self) -> bool {
        self.profile.is_none()
    }

    /// The profile this plan was compiled from.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Whole-infrastructure scraper outage windows.
    pub fn scraper_outages(&self) -> &[Window] {
        &self.scraper_outages
    }

    /// Webmail provider maintenance windows.
    pub fn maintenance_windows(&self) -> &[Window] {
        &self.maintenance
    }

    /// Maintenance windows as plain spans, for consumers that must not
    /// depend on this crate (the webmail service takes these).
    pub fn maintenance_spans(&self) -> Vec<(SimTime, SimTime)> {
        self.maintenance.iter().map(|w| (w.start, w.end)).collect()
    }

    /// Is the scraping infrastructure down at `t`?
    pub fn scraper_outage_at(&self, t: SimTime) -> bool {
        self.scraper_outages.iter().any(|w| w.contains(t))
    }

    /// Is the webmail provider in maintenance at `t`?
    pub fn maintenance_at(&self, t: SimTime) -> bool {
        self.maintenance.iter().any(|w| w.contains(t))
    }

    /// Does scraper login attempt number `attempt` (0-based) against
    /// `account` at sweep time `at` fail transiently?
    pub fn login_flakes(&self, account: u32, at: SimTime, attempt: u32) -> bool {
        self.profile.scraper_flake_rate > 0.0
            && self.roll(
                KIND_FLAKE,
                u64::from(account),
                at.as_secs().wrapping_mul(64) + u64::from(attempt),
            ) < self.profile.scraper_flake_rate
    }

    /// The in-transit fate of notification `seq` from `account`.
    pub fn notification_fate(&self, account: u32, seq: u64) -> NotificationFate {
        let loss = self.profile.notification_loss_rate;
        let dup = self.profile.notification_dup_rate;
        if loss == 0.0 && dup == 0.0 {
            return NotificationFate::Deliver;
        }
        let r = self.roll(KIND_NOTE, u64::from(account), seq);
        if r < loss {
            NotificationFate::Lose
        } else if r < loss + dup {
            NotificationFate::DeliverTwice
        } else {
            NotificationFate::Deliver
        }
    }

    /// Does `account`'s daily time-driven trigger misfire on `day`?
    pub fn trigger_misfires(&self, account: u32, day: u64) -> bool {
        self.profile.trigger_misfire_rate > 0.0
            && self.roll(KIND_MISFIRE, u64::from(account), day) < self.profile.trigger_misfire_rate
    }

    /// A uniform `[0, 1)` jitter draw tied to one retry attempt, for
    /// backoff randomization that stays reproducible.
    pub fn jitter_roll(&self, account: u32, at: SimTime, attempt: u32) -> f64 {
        self.roll(
            KIND_JITTER,
            u64::from(account),
            at.as_secs().wrapping_mul(64) + u64::from(attempt),
        )
    }

    /// Pure decision hash: uniform in `[0, 1)`, a function of the plan's
    /// decision seed and the event identity only.
    fn roll(&self, kind: u64, a: u64, b: u64) -> f64 {
        let mut z = self
            .decision_seed
            .wrapping_add(kind.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(a.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(b.wrapping_mul(0x94D0_49BB_1331_11EB));
        // finalizer from SplitMix64
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

/// Materialize downtime windows: `per_30d` expected occurrences per 30
/// days over `days`, exponentially distributed durations around
/// `mean_hours`, starts uniform over the horizon, returned sorted.
fn sample_windows(rng: &mut Rng, per_30d: f64, mean_hours: f64, days: f64) -> Vec<Window> {
    if per_30d <= 0.0 || mean_hours <= 0.0 || days <= 0.0 {
        return Vec::new(); // lint:allow(alloc-hot): an empty Vec never touches the heap
    }
    let expected = per_30d * days / 30.0;
    let mut count = expected.floor() as usize;
    if rng.chance(expected - expected.floor()) {
        count += 1;
    }
    let horizon_secs = (days * 86_400.0) as u64;
    let mut windows: Vec<Window> = (0..count)
        .map(|_| {
            let start = rng.below(horizon_secs.max(1));
            // Exponential duration via inverse CDF; clamp the tail so a
            // single window cannot swallow the whole run.
            let u = rng.f64();
            let dur_secs = (-(1.0 - u).ln() * mean_hours * 3_600.0).min(days * 86_400.0 / 4.0);
            Window {
                start: SimTime::from_secs(start),
                end: SimTime::from_secs(start) + SimDuration::from_secs(dur_secs.max(60.0) as u64),
            }
        })
        .collect();
    windows.sort_by_key(|w| (w.start, w.end));
    windows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizon() -> SimDuration {
        SimDuration::days(120)
    }

    #[test]
    fn none_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert!(p.scraper_outages().is_empty());
        assert!(p.maintenance_windows().is_empty());
        for t in [0u64, 1_000, 5_000_000] {
            assert!(!p.scraper_outage_at(SimTime::from_secs(t)));
            assert!(!p.maintenance_at(SimTime::from_secs(t)));
            assert!(!p.login_flakes(3, SimTime::from_secs(t), 0));
            assert!(!p.trigger_misfires(3, t));
            assert_eq!(p.notification_fate(3, t), NotificationFate::Deliver);
        }
    }

    #[test]
    fn compile_is_reproducible() {
        let a = FaultPlan::compile(42, &FaultProfile::heavy(), horizon());
        let b = FaultPlan::compile(42, &FaultProfile::heavy(), horizon());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::compile(1, &FaultProfile::heavy(), horizon());
        let b = FaultPlan::compile(2, &FaultProfile::heavy(), horizon());
        assert_ne!(a, b);
    }

    #[test]
    fn heavy_plan_has_windows_and_faults() {
        let p = FaultPlan::compile(7, &FaultProfile::heavy(), horizon());
        assert!(!p.scraper_outages().is_empty());
        assert!(!p.maintenance_windows().is_empty());
        let flakes = (0..1_000)
            .filter(|&i| p.login_flakes(1, SimTime::from_secs(i * 3_600), 0))
            .count();
        // 25% flake rate over 1000 attempts: comfortably non-degenerate.
        assert!((100..500).contains(&flakes), "{flakes}");
        let lost = (0..1_000)
            .filter(|&s| p.notification_fate(1, s) == NotificationFate::Lose)
            .count();
        assert!((50..300).contains(&lost), "{lost}");
        let dup = (0..1_000)
            .filter(|&s| p.notification_fate(1, s) == NotificationFate::DeliverTwice)
            .count();
        assert!(dup > 20, "{dup}");
    }

    #[test]
    fn decisions_are_stateless() {
        let p = FaultPlan::compile(9, &FaultProfile::heavy(), horizon());
        let t = SimTime::from_secs(12_345);
        let first = p.login_flakes(4, t, 1);
        for _ in 0..10 {
            // Interleave other queries: answers never change.
            let _ = p.notification_fate(4, 99);
            let _ = p.trigger_misfires(4, 3);
            assert_eq!(p.login_flakes(4, t, 1), first);
        }
    }

    #[test]
    fn windows_are_sorted_and_bounded() {
        let p = FaultPlan::compile(11, &FaultProfile::heavy(), horizon());
        for pair in p.scraper_outages().windows(2) {
            assert!(pair[0].start <= pair[1].start);
        }
        for w in p.scraper_outages() {
            assert!(w.start < w.end);
            // Tail clamp: no window longer than a quarter of the run.
            assert!(w.end.since(w.start) <= SimDuration::days(30));
        }
    }
}
