//! Property tests: fault plans are pure functions of (seed, profile).

use proptest::prelude::*;
use pwnd_faults::{FaultPlan, FaultProfile, NotificationFate, RetryPolicy};
use pwnd_sim::{SimDuration, SimTime};

fn profile(
    outages: f64,
    flake: f64,
    loss: f64,
    dup: f64,
    misfire: f64,
    maint: f64,
) -> FaultProfile {
    FaultProfile {
        scraper_outages_per_30d: outages,
        scraper_outage_hours: 6.0,
        scraper_flake_rate: flake,
        notification_loss_rate: loss,
        notification_dup_rate: dup,
        trigger_misfire_rate: misfire,
        maintenance_per_30d: maint,
        maintenance_hours: 3.0,
    }
}

proptest! {
    /// Two compilations of the same (seed, profile, horizon) are
    /// identical — the plan is a pure function of its inputs.
    #[test]
    fn plan_is_pure_function_of_seed_and_profile(
        seed in any::<u64>(),
        days in 1u64..400,
        outages in 0.0f64..4.0,
        flake in 0.0f64..0.5,
        loss in 0.0f64..0.4,
        dup in 0.0f64..0.4,
        misfire in 0.0f64..0.2,
        maint in 0.0f64..2.0,
    ) {
        let p = profile(outages, flake, loss, dup, misfire, maint);
        let h = SimDuration::days(days);
        let a = FaultPlan::compile(seed, &p, h);
        let b = FaultPlan::compile(seed, &p, h);
        prop_assert_eq!(&a, &b);
        // Per-event decisions agree too, at arbitrary probe points.
        for probe in 0..32u64 {
            let t = SimTime::from_secs(probe * 97_001);
            prop_assert_eq!(a.login_flakes(probe as u32, t, 0),
                            b.login_flakes(probe as u32, t, 0));
            prop_assert_eq!(a.notification_fate(probe as u32, probe),
                            b.notification_fate(probe as u32, probe));
            prop_assert_eq!(a.trigger_misfires(probe as u32, probe),
                            b.trigger_misfires(probe as u32, probe));
            prop_assert!(a.jitter_roll(probe as u32, t, 1)
                == b.jitter_roll(probe as u32, t, 1));
        }
    }

    /// The none profile injects nothing regardless of seed.
    #[test]
    fn none_profile_is_inert_for_any_seed(seed in any::<u64>(), probe in any::<u64>()) {
        let plan = FaultPlan::compile(seed, &FaultProfile::none(), SimDuration::days(236));
        let t = SimTime::from_secs(probe % 20_000_000);
        prop_assert!(plan.is_none());
        prop_assert!(!plan.scraper_outage_at(t));
        prop_assert!(!plan.maintenance_at(t));
        prop_assert!(!plan.login_flakes((probe % 100) as u32, t, 0));
        prop_assert!(!plan.trigger_misfires((probe % 100) as u32, probe % 236));
        prop_assert_eq!(
            plan.notification_fate((probe % 100) as u32, probe),
            NotificationFate::Deliver
        );
    }

    /// Backoff delays are monotone in the retry index (modulo cap) and
    /// deterministic in the roll.
    #[test]
    fn backoff_is_deterministic_and_bounded(retry in 0u32..12, roll in 0.0f64..1.0) {
        let p = RetryPolicy::default();
        let d = p.delay(retry, roll);
        prop_assert_eq!(d, p.delay(retry, roll));
        prop_assert!(d >= SimDuration::from_secs(1));
        // Cap plus full positive jitter bounds every delay.
        prop_assert!(d.as_secs() <= p.cap.as_secs() * 2);
    }
}
