//! Ablation — the §5 behavioural anomaly detectors.
//!
//! The paper proposes training detectors on owner search vocabulary and
//! benign connection durations. Evaluates both against the simulated
//! criminal population (with provider-side query logs as ground truth)
//! and benches the scoring hot paths.

use criterion::{criterion_group, criterion_main, Criterion};
use pwnd_analysis::defense::{
    evaluate_search_detector, RangeAnomalyDetector, SearchAnomalyDetector,
};
use pwnd_bench::{paper_run, BENCH_SEED};
use pwnd_sim::Rng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let run = paper_run(BENCH_SEED);

    // Owner search-history model: everyday workflow vocabulary.
    let workflow = [
        "meeting",
        "report",
        "schedule",
        "agreement",
        "contract",
        "review",
        "forecast",
        "pipeline",
        "delivery",
        "project",
        "quarter",
    ];
    let mut rng = Rng::seed_from(7);
    let mut detector = SearchAnomalyDetector::new();
    detector.train((0..300).map(|_| *rng.choose(&workflow)));
    let benign: Vec<String> = (0..200)
        .map(|_| (*rng.choose(&workflow)).to_string())
        .collect();

    let report =
        evaluate_search_detector(&detector, &run.ground_truth.searched_queries, &benign, 0.5);
    println!("\n== §5 search-vocabulary detector ==");
    println!(
        "attacker queries {} | TPR {:.2} | FPR {:.2}",
        run.ground_truth.searched_queries.len(),
        report.tpr(),
        report.fpr()
    );

    let benign_durations: Vec<f64> = (0..500).map(|_| rng.range_f64(0.5, 20.0)).collect();
    let duration = RangeAnomalyDetector::train_upper(&benign_durations, 0.99);
    let flagged = run
        .dataset
        .accesses
        .iter()
        .filter(|a| duration.is_anomalous(a.duration_secs() as f64 / 60.0))
        .count();
    println!(
        "== §5 duration detector == flagged {flagged}/{} accesses (band ≤ {:.1}m)",
        run.dataset.accesses.len(),
        duration.band().1
    );

    c.bench_function("defense/search_score", |b| {
        b.iter(|| detector.score(black_box("payment account banking")))
    });
    c.bench_function("defense/evaluate_full_query_log", |b| {
        b.iter(|| {
            evaluate_search_detector(
                black_box(&detector),
                black_box(&run.ground_truth.searched_queries),
                black_box(&benign),
                0.5,
            )
        })
    });
    c.bench_function("defense/train_duration_detector", |b| {
        b.iter(|| RangeAnomalyDetector::train_upper(black_box(&benign_durations), 0.99))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
