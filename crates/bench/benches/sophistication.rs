//! §4.5 — attacker sophistication per outlet.
//!
//! Paper ordering: malware-outlet attackers are the stealthiest (Tor +
//! hidden user agents + never destructive); forum attackers the least
//! careful.

use criterion::{criterion_group, criterion_main, Criterion};
use pwnd_analysis::sophistication::sophistication;
use pwnd_bench::{paper_run, BENCH_SEED};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let run = paper_run(BENCH_SEED);
    let rows = sophistication(&run.dataset);

    println!("\n== §4.5 sophistication ==");
    println!(
        "{:<10} {:>10} {:>6} {:>16} {:>6}",
        "outlet", "cfg hidden", "tor", "non-destructive", "score"
    );
    for r in &rows {
        println!(
            "{:<10} {:>10.2} {:>6.2} {:>16.2} {:>6.2}",
            r.outlet, r.config_hidden, r.tor, r.non_destructive, r.score
        );
    }
    let malware = rows.iter().find(|r| r.outlet == "malware").expect("row");
    let others_max = rows
        .iter()
        .filter(|r| r.outlet != "malware")
        .map(|r| r.score)
        .fold(0.0f64, f64::max);
    println!(
        "malware stealth lead: {:.2} vs best other {:.2} (paper: malware stealthiest)",
        malware.score, others_max
    );

    c.bench_function("sophistication/compute", |b| {
        b.iter(|| sophistication(black_box(&run.dataset)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
