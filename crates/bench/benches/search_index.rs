//! Microbenchmarks for the mailbox search hot path.
//!
//! `SearchIndex::search` runs on every gold-digger visit, so the sweep
//! and chaos batches hit it thousands of times per run. These benches
//! pin the cases the intersection rewrite targets: multi-term
//! conjunctions (smallest-list-first probing instead of per-term set
//! cloning), the guaranteed-miss short-circuit, and index build over a
//! realistic corpus-generated mailbox.

use criterion::{criterion_group, criterion_main, Criterion};
use pwnd_corpus::archetype::Archetype;
use pwnd_corpus::generator::CorpusGenerator;
use pwnd_corpus::persona::PersonaFactory;
use pwnd_sim::intern::Interner;
use pwnd_sim::{Rng, SimTime};
use pwnd_webmail::mailbox::Mailbox;
use pwnd_webmail::search::SearchIndex;
use std::hint::black_box;

fn fixture_mailbox() -> Mailbox {
    let mut rng = Rng::seed_from(7);
    let mut factory = PersonaFactory::new();
    let peers = factory.generate_batch(12, |_| None, &mut rng);
    let persona = factory.generate(None, &mut rng);
    let mut generator = CorpusGenerator::with_archetype(Archetype::CorporateEmployee);
    let emails = generator.generate_mailbox(&persona, &peers, 300, 300, &mut rng);
    let mut mailbox = Mailbox::new();
    for e in emails {
        mailbox.deliver(e);
    }
    mailbox
}

fn bench(c: &mut Criterion) {
    let mailbox = fixture_mailbox();

    c.bench_function("webmail/search_index_build_300", |b| {
        b.iter(|| {
            let mut vocab = Interner::new();
            SearchIndex::build(black_box(&mailbox), &mut vocab)
        })
    });

    let mut vocab = Interner::new();
    let mut idx = SearchIndex::build(&mailbox, &mut vocab);
    let mut t = 0u64;
    let mut at = move || {
        t += 1;
        SimTime::from_secs(t)
    };

    c.bench_function("webmail/search_single_common_term", |b| {
        b.iter(|| black_box(idx.search(&vocab, "payment", at())))
    });

    let mut idx = SearchIndex::build(&mailbox, &mut vocab);
    c.bench_function("webmail/search_multi_term_conjunction", |b| {
        b.iter(|| black_box(idx.search(&vocab, "wire transfer invoice payment", at())))
    });

    let mut idx = SearchIndex::build(&mailbox, &mut vocab);
    c.bench_function("webmail/search_missing_term_short_circuit", |b| {
        b.iter(|| black_box(idx.search(&vocab, "payment zzzunindexed", at())))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
