//! Table 2 — TF-IDF inference of attacker search keywords.
//!
//! Paper: the top terms by `TFIDF_R − TFIDF_A` are sensitive words
//! (bitcoin, family, seller, localbitcoins, account, payment, …), while
//! the corpus-dominant words (transfer, company, energy, power, …) score
//! near zero or negative — evidence the opened emails were found by
//! search, not at random.

use criterion::{criterion_group, criterion_main, Criterion};
use pwnd_analysis::tfidf::TfidfTable;
use pwnd_bench::{paper_run, BENCH_SEED};
use pwnd_corpus::tokenize::Tokenizer;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let run = paper_run(BENCH_SEED);
    let analysis = run.analysis();

    println!("\n== Table 2 (left): inferred searched words ==");
    for t in analysis.tfidf.top_searched(10) {
        println!(
            "{:<16} R {:>7.4}  A {:>7.4}  diff {:>7.4}",
            t.term,
            t.tfidf_r,
            t.tfidf_a,
            t.diff()
        );
    }
    println!("== Table 2 (right): corpus-dominant words ==");
    for t in analysis.tfidf.top_corpus(10) {
        println!(
            "{:<16} R {:>7.4}  A {:>7.4}  diff {:>7.4}",
            t.term,
            t.tfidf_r,
            t.tfidf_a,
            t.diff()
        );
    }

    let tokenizer = Tokenizer::new().with_extra_stopwords(run.extra_stopwords.iter());
    let opened = run.dataset.opened_texts.join("\n");
    c.bench_function("table2/tfidf_full_corpus", |b| {
        b.iter(|| {
            TfidfTable::build(
                black_box(&run.corpus_text),
                black_box(&opened),
                black_box(&tokenizer),
            )
        })
    });
    c.bench_function("table2/tokenize_opened_set", |b| {
        b.iter(|| tokenizer.tokenize(black_box(&opened)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
