//! §4.1 overview — the headline numbers of the study.
//!
//! Paper: 326 unique accesses, 147 emails opened, 845 sent, 12 drafts,
//! 90 accessed accounts (41 paste / 30 forum / 19 malware), 42 blocked,
//! 36 hijacked. Prints the run's values next to the paper's and benches
//! the overview computation.

use criterion::{criterion_group, criterion_main, Criterion};
use pwnd_analysis::tables::overview;
use pwnd_bench::{paper_run, BENCH_SEED};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let run = paper_run(BENCH_SEED);
    let ov = overview(&run.dataset);

    println!("\n== §4.1 overview (measured vs paper) ==");
    println!("unique accesses    {:>5}  (326)", ov.total_accesses);
    println!("emails opened      {:>5}  (147)", ov.emails_opened);
    println!("emails sent        {:>5}  (845)", ov.emails_sent);
    println!("drafts composed    {:>5}  (12)", ov.drafts_created);
    println!("accounts accessed  {:>5}  (90)", ov.accounts_accessed);
    for (outlet, paper) in [("paste", 41), ("forum", 30), ("malware", 19)] {
        println!(
            "  {outlet:<8} accounts {:>4}  ({paper})",
            ov.accessed_by_outlet.get(outlet).copied().unwrap_or(0)
        );
    }
    println!("accounts blocked   {:>5}  (42)", ov.accounts_blocked);
    println!("accounts hijacked  {:>5}  (36)", ov.accounts_hijacked);

    c.bench_function("overview/compute", |b| {
        b.iter(|| overview(black_box(&run.dataset)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
