//! Table 1 — leak-plan groupings.
//!
//! Regenerates the paper's Table 1 (30/20/10/20/20 accounts across paste,
//! forum, malware × location conditions) from the run's dataset and
//! benches the reconstruction.

use criterion::{criterion_group, criterion_main, Criterion};
use pwnd_analysis::tables::table1;
use pwnd_bench::{paper_run, BENCH_SEED};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let run = paper_run(BENCH_SEED);

    println!("\n== Table 1: account groupings (paper: 30/20/10/20/20) ==");
    for row in table1(&run.dataset) {
        println!(
            "group {}  {:>3} accounts  {}",
            row.group, row.accounts, row.outlet
        );
    }

    c.bench_function("table1/reconstruct_from_dataset", |b| {
        b.iter(|| table1(black_box(&run.dataset)))
    });
    c.bench_function("table1/build_paper_plan", |b| {
        b.iter(|| pwnd_leak::plan::LeakPlan::paper().total_accounts())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
