//! End-to-end throughput: how fast the testbed replays the 7-month study.
//!
//! The real experiment took 236 days of wall-clock time; the simulation
//! replays it in well under a second, which is what makes seed sweeps and
//! ablations practical.

use criterion::{criterion_group, criterion_main, Criterion};
use pwnd_core::{Experiment, ExperimentConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);

    group.bench_function("quick_config_120_days", |b| {
        b.iter(|| Experiment::new(black_box(ExperimentConfig::quick(1))).run())
    });
    group.bench_function("paper_config_236_days", |b| {
        b.iter(|| Experiment::new(black_box(ExperimentConfig::paper(1))).run())
    });
    group.bench_function("paper_run_plus_full_analysis", |b| {
        b.iter(|| {
            let out = Experiment::new(black_box(ExperimentConfig::paper(2))).run();
            out.analysis().render().len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
