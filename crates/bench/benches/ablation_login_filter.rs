//! Ablation — the suspicious-login filter the paper had Google disable.
//!
//! §3.4: "most accesses would be blocked if Google did not disable the
//! login filters." Runs both arms with the same seed and measures how
//! much of the study survives with the defense on; benches the risk
//! engine itself.

use criterion::{criterion_group, criterion_main, Criterion};
use pwnd_bench::{filtered_run, paper_run, BENCH_SEED};
use pwnd_webmail::security::{LoginSignals, RiskEngine, SecurityPolicy};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let base = paper_run(BENCH_SEED);
    let filtered = filtered_run(BENCH_SEED);

    let a = base.dataset.accesses.len();
    let b = filtered.dataset.accesses.len();
    println!("\n== Login-filter ablation ==");
    println!("observed accesses, filter OFF (paper setting): {a}");
    println!("observed accesses, filter ON  (ablation)     : {b}");
    println!(
        "the defense suppresses {:.0}% of accesses — the paper's §3.4 claim",
        100.0 * (a - b) as f64 / a as f64
    );

    let engine = RiskEngine::new(SecurityPolicy {
        login_filter_enabled: true,
        ..SecurityPolicy::default()
    });
    let tor_login = LoginSignals {
        via_tor: true,
        distance_from_habitual_km: Some(4_000.0),
        new_device: true,
    };
    c.bench_function("ablation/risk_engine_score", |bch| {
        bch.iter(|| engine.score(black_box(tor_login)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
