//! Figure 2 — CDF of unique-access durations per taxonomy class.
//!
//! Paper shape: the vast majority of accesses last a few minutes;
//! spammers burst and vanish; curious / gold-digger / hijacker accesses
//! carry a multi-day revisit tail.

use criterion::{criterion_group, criterion_main, Criterion};
use pwnd_analysis::figures::fig2;
use pwnd_analysis::stats::Ecdf;
use pwnd_bench::{paper_run, BENCH_SEED};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let run = paper_run(BENCH_SEED);
    let f = fig2(&run.dataset);

    println!("\n== Figure 2: duration CDFs (minutes) ==");
    for (label, e) in &f.series {
        if e.is_empty() {
            continue;
        }
        println!(
            "{label:<12} n={:<4} F(10m)={:.2} F(60m)={:.2} F(1d)={:.2} p50={:.1}m",
            e.len(),
            e.eval(10.0),
            e.eval(60.0),
            e.eval(24.0 * 60.0),
            e.median().unwrap_or(0.0)
        );
    }
    println!("paper: most mass below minutes; ~10% multi-day tail for non-spammers");

    c.bench_function("fig2/build", |b| b.iter(|| fig2(black_box(&run.dataset))));
    c.bench_function("fig2/ecdf_construction_10k", |b| {
        let samples: Vec<f64> = (0..10_000).map(|i| (i as f64 * 7.3) % 5000.0).collect();
        b.iter(|| Ecdf::new(black_box(samples.clone())))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
