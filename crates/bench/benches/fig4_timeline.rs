//! Figure 4 — per-account access timeline and the malware resale bursts.
//!
//! Paper: malware-leaked accounts show sharp bursts of fresh accesses
//! ~30 and ~100 days after the leak — the botmaster selling batches on
//! the underground market — and the Russian-paste subset stays silent
//! for over two months.

use criterion::{criterion_group, criterion_main, Criterion};
use pwnd_analysis::figures::fig4;
use pwnd_bench::{paper_run, BENCH_SEED};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let run = paper_run(BENCH_SEED);
    let points = fig4(&run.dataset);

    let malware: Vec<f64> = points
        .iter()
        .filter(|p| p.outlet == "malware")
        .map(|p| p.day)
        .collect();
    let band = |lo: f64, hi: f64| malware.iter().filter(|&&d| (lo..hi).contains(&d)).count();
    println!("\n== Figure 4: malware access bursts ==");
    println!(
        "first 25d: {}   resale wave 1 (25–60d): {}   resale wave 2 (95–135d): {}   rest: {}",
        band(0.0, 25.0),
        band(25.0, 60.0),
        band(95.0, 135.0),
        malware.len() - band(0.0, 25.0) - band(25.0, 60.0) - band(95.0, 135.0)
    );
    let russian_accounts: Vec<u32> = run
        .leaks
        .iter()
        .filter(|l| l.russian)
        .map(|l| l.account)
        .collect();
    let russian_first = points
        .iter()
        .filter(|p| russian_accounts.contains(&p.account))
        .map(|p| p.day)
        .fold(f64::INFINITY, f64::min);
    println!("earliest access to a Russian-paste account: day {russian_first:.0} (paper: > 60)");

    c.bench_function("fig4/build", |b| b.iter(|| fig4(black_box(&run.dataset))));
}

criterion_group!(benches, bench);
criterion_main!(benches);
