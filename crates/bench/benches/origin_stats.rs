//! §4.3.4 — origin statistics: Tor, countries, blacklist hits.
//!
//! Paper: 132/326 accesses via Tor (28/144 paste, 48/125 forum, 56/57
//! malware); non-Tor accesses from 29 countries; 20 origin IPs found on
//! the Spamhaus blacklist.

use criterion::{criterion_group, criterion_main, Criterion};
use pwnd_analysis::tables::origin_stats;
use pwnd_bench::{paper_run, BENCH_SEED};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let run = paper_run(BENCH_SEED);
    let stats = origin_stats(&run.dataset, Some(&run.blacklist));

    println!("\n== Origins (measured vs paper) ==");
    for (outlet, paper) in [
        ("paste", "28/144"),
        ("forum", "48/125"),
        ("malware", "56/57"),
    ] {
        let (n, tor) = stats.tor_by_outlet.get(outlet).copied().unwrap_or((0, 0));
        println!("{outlet:<8} tor {tor}/{n}  (paper {paper})");
    }
    println!("tor total       {} (paper 132)", stats.tor_total);
    println!("countries       {} (paper 29)", stats.countries);
    println!("blacklisted IPs {} (paper 20)", stats.blacklisted_ips);

    c.bench_function("origins/compute_with_blacklist", |b| {
        b.iter(|| origin_stats(black_box(&run.dataset), Some(black_box(&run.blacklist))))
    });
    c.bench_function("origins/compute_without_blacklist", |b| {
        b.iter(|| origin_stats(black_box(&run.dataset), None))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
