//! Figure 3 — CDF of time between leak and first access, per outlet.
//!
//! Paper: within 25 days, paste accounts had seen ~80% of their eventual
//! accesses, forums ~60%, malware ~40% (with resale inflections later).

use criterion::{criterion_group, criterion_main, Criterion};
use pwnd_analysis::figures::fig3;
use pwnd_bench::{paper_run, BENCH_SEED};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let run = paper_run(BENCH_SEED);
    let f = fig3(&run.dataset);

    println!("\n== Figure 3: leak → first access (days) ==");
    for (outlet, e) in &f.series {
        let paper = match outlet.as_str() {
            "paste" => 0.80,
            "forum" => 0.60,
            _ => 0.40,
        };
        println!(
            "{outlet:<8} n={:<4} F(5d)={:.2} F(25d)={:.2} (paper ≈{paper:.2}) F(100d)={:.2}",
            e.len(),
            e.eval(5.0),
            e.eval(25.0),
            e.eval(100.0)
        );
    }

    c.bench_function("fig3/build", |b| b.iter(|| fig3(black_box(&run.dataset))));
}

criterion_group!(benches, bench);
criterion_main!(benches);
