//! §4.3.4 — the two-sample Cramér–von Mises tests.
//!
//! Paper outcomes at the 0.01 threshold: paste UK p=0.0017 (reject),
//! paste US p≈7e-7 (reject), forum UK p=0.273 (keep), forum US p=0.272
//! (keep). Benches the statistic, the asymptotic p-value (Bessel series),
//! and the permutation fallback.

use criterion::{criterion_group, criterion_main, Criterion};
use pwnd_analysis::cvm::{cdf_cvm_inf, cramer_von_mises_2samp, permutation_p_value, statistic};
use pwnd_analysis::figures::{cvm_tests, fig6};
use pwnd_bench::{paper_run, BENCH_SEED};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let run = paper_run(BENCH_SEED);
    let conditions = fig6(&run.dataset);
    let outcomes = cvm_tests(&conditions);

    println!("\n== Cramér–von Mises (reject at p < 0.01) ==");
    for t in &outcomes {
        let paper = match t.label.as_str() {
            "paste UK" => "paper 0.0017 reject",
            "paste US" => "paper 7e-7 reject",
            "forum UK" => "paper 0.273 keep",
            _ => "paper 0.272 keep",
        };
        println!(
            "{:<9} T={:>7.4} p={:<9.6} {:<7} | {paper}",
            t.label,
            t.statistic,
            t.p_value,
            if t.rejected { "REJECT" } else { "keep" }
        );
    }

    // Real vectors from the run for the micro-benches.
    let with_loc = &conditions
        .iter()
        .find(|c| c.outlet == "paste" && c.region == "US" && c.with_location)
        .expect("condition present")
        .distances_km;
    let without = &conditions
        .iter()
        .find(|c| c.outlet == "paste" && c.region == "US" && !c.with_location)
        .expect("condition present")
        .distances_km;

    c.bench_function("cvm/statistic", |b| {
        b.iter(|| statistic(black_box(with_loc), black_box(without)))
    });
    c.bench_function("cvm/asymptotic_p", |b| {
        b.iter(|| cramer_von_mises_2samp(black_box(with_loc), black_box(without)))
    });
    c.bench_function("cvm/limiting_cdf", |b| {
        b.iter(|| cdf_cvm_inf(black_box(0.46136)))
    });
    c.bench_function("cvm/permutation_1000", |b| {
        b.iter(|| permutation_p_value(black_box(with_loc), black_box(without), 1_000, 7))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
