//! Substrate micro-benchmarks: the hot paths under the experiment loop.

use criterion::{criterion_group, criterion_main, Criterion};
use pwnd_net::geo::GeoDb;
use pwnd_net::geolocate::Geolocator;
use pwnd_net::ip::AddressPlan;
use pwnd_net::tor::TorDirectory;
use pwnd_sim::dist::{Exp, LogNormal, PoissonProcess};
use pwnd_sim::event::EventQueue;
use pwnd_sim::{Rng, SimDuration, SimTime};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // RNG and distributions.
    c.bench_function("sim/rng_next_u64", |b| {
        let mut rng = Rng::seed_from(1);
        b.iter(|| black_box(rng.next_u64()))
    });
    c.bench_function("sim/exp_sample", |b| {
        let mut rng = Rng::seed_from(2);
        let d = Exp::with_mean(10.0);
        b.iter(|| d.sample(black_box(&mut rng)))
    });
    c.bench_function("sim/lognormal_sample", |b| {
        let mut rng = Rng::seed_from(3);
        let d = LogNormal::with_median(300.0, 1.0);
        b.iter(|| d.sample(black_box(&mut rng)))
    });

    // Event queue throughput: schedule + drain 10k events.
    c.bench_function("sim/event_queue_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_secs((i * 7919) % 86_400), i);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });

    // Thinning sampler over a decaying rate (a full paste lifetime).
    c.bench_function("sim/poisson_thinning_236d", |b| {
        let mut rng = Rng::seed_from(4);
        let horizon = SimTime::ZERO + SimDuration::days(236);
        b.iter(|| {
            let p = PoissonProcess::new(
                |t| 0.5 / 86_400.0 * (-t.as_days_f64() / 10.0).exp() + 0.004 / 86_400.0,
                0.51 / 86_400.0,
            );
            p.sample_all(SimTime::ZERO, horizon, &mut rng).len()
        })
    });

    // Geolocation path (runs on every login).
    let geo = GeoDb::new();
    let plan = AddressPlan::new(&geo);
    let mut rng = Rng::seed_from(5);
    let tor = TorDirectory::generate(800, &mut rng);
    let locator = Geolocator::new(plan, geo, tor);
    let ip = locator.plan().sample_host("BR", &mut rng);
    c.bench_function("net/geolocate", |b| {
        b.iter(|| locator.locate(black_box(ip)))
    });
    c.bench_function("net/sample_host_in_city", |b| {
        let london = locator.geo().by_name("London").expect("city");
        b.iter(|| locator.sample_host_in_city(black_box(london), &mut rng))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
