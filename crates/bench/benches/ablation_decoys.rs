//! Ablation — decoy-sensitive-email seeding (§5 future work).
//!
//! The paper proposes seeding decoy bank statements and credentials to
//! widen the observable search surface. Compares the two arms on the
//! fraction of gold-digger opens that hit sensitive bait, and benches
//! decoy generation.

use criterion::{criterion_group, criterion_main, Criterion};
use pwnd_bench::BENCH_SEED;
use pwnd_core::{Experiment, ExperimentConfig};
use pwnd_corpus::decoy::generate_decoys;
use pwnd_corpus::persona::PersonaFactory;
use pwnd_sim::Rng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Smaller config: this ablation runs two fresh worlds.
    let plain = Experiment::new(ExperimentConfig::quick(BENCH_SEED)).run();
    let mut cfg = ExperimentConfig::quick(BENCH_SEED);
    cfg.seed_decoys = true;
    let baited = Experiment::new(cfg).run();

    let bait_hits = |ds: &pwnd_monitor::dataset::Dataset| {
        ds.opened_texts
            .iter()
            .filter(|t| t.contains("Routing number") || t.contains("password: hx"))
            .count()
    };
    println!("\n== Decoy-seeding ablation (§5 future work) ==");
    println!("decoy opens without seeding: {}", bait_hits(&plain.dataset));
    println!(
        "decoy opens with seeding   : {}",
        bait_hits(&baited.dataset)
    );
    println!(
        "opened-email volume: {} → {}",
        plain.dataset.opened_texts.len(),
        baited.dataset.opened_texts.len()
    );

    c.bench_function("ablation/generate_decoys", |b| {
        let mut rng = Rng::seed_from(1);
        let persona = PersonaFactory::new().generate(None, &mut rng);
        b.iter(|| generate_decoys(black_box(&persona), 0, &mut rng))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
