//! Figures 5a/5b — browser and OS distributions per outlet.
//!
//! Paper shape: malware accesses are 100% unknown browsers and
//! Windows-homogeneous; paste ~50% unknown browsers with a motley device
//! mix (Android present); forums less cloaked than paste.

use criterion::{criterion_group, criterion_main, Criterion};
use pwnd_analysis::figures::fig5;
use pwnd_bench::{paper_run, BENCH_SEED};
use pwnd_net::useragent::{fingerprint, Browser, ClientConfig, Os};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let run = paper_run(BENCH_SEED);
    let f = fig5(&run.dataset);

    println!("\n== Figure 5a: browsers per outlet ==");
    for (outlet, m) in &f.browsers {
        let unknown = m.get("Unknown").copied().unwrap_or(0.0);
        println!("{outlet:<8} unknown {:.0}%  ({})", unknown * 100.0, {
            let mut parts: Vec<String> = m
                .iter()
                .filter(|(k, _)| k.as_str() != "Unknown")
                .map(|(k, v)| format!("{k} {:.0}%", v * 100.0))
                .collect();
            parts.sort();
            parts.join(", ")
        });
    }
    println!("paper: malware 100% unknown; paste ≈50% unknown; forums less");
    println!("\n== Figure 5b: operating systems per outlet ==");
    for (outlet, m) in &f.oses {
        let windows = m.get("Windows").copied().unwrap_or(0.0);
        let android = m.get("Android").copied().unwrap_or(0.0);
        println!(
            "{outlet:<8} windows {:.0}%  android {:.0}%",
            windows * 100.0,
            android * 100.0
        );
    }
    println!("paper: >50% Windows everywhere; Android on paste/forums only");

    c.bench_function("fig5/build", |b| b.iter(|| fig5(black_box(&run.dataset))));
    c.bench_function("fig5/fingerprint_stealth_client", |b| {
        let cfg = ClientConfig::stealth(Browser::Firefox, Os::Windows);
        b.iter(|| fingerprint(black_box(&cfg)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
