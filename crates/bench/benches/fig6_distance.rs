//! Figures 6a/6b — median login-distance circles around the advertised
//! decoy midpoints.
//!
//! Paper radii (km): paste UK 1400 (with location) vs 1784 (without);
//! paste US 939 vs 7900; forum gaps visible but smaller. Location-bearing
//! leaks pull logins toward the advertised midpoint — the §4.3.4
//! "location malleability" finding.

use criterion::{criterion_group, criterion_main, Criterion};
use pwnd_analysis::figures::fig6;
use pwnd_bench::{paper_run, BENCH_SEED};
use pwnd_net::geo::{haversine_km, GeoPoint};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let run = paper_run(BENCH_SEED);
    let conditions = fig6(&run.dataset);

    println!("\n== Figure 6: median distances from advertised midpoints (km) ==");
    let paper = [
        ("paste", "UK", true, 1400.0),
        ("paste", "UK", false, 1784.0),
        ("paste", "US", true, 939.0),
        ("paste", "US", false, 7900.0),
    ];
    for cond in &conditions {
        let reference = paper
            .iter()
            .find(|&&(o, r, w, _)| o == cond.outlet && r == cond.region && w == cond.with_location)
            .map(|&(_, _, _, v)| format!("(paper {v:.0})"))
            .unwrap_or_default();
        println!(
            "{:<6} {} {:<14} median {:>7.0} km n={:<3} {}",
            cond.outlet,
            cond.region,
            if cond.with_location {
                "with location"
            } else {
                "no location"
            },
            cond.median_km.unwrap_or(f64::NAN),
            cond.distances_km.len(),
            reference
        );
    }

    c.bench_function("fig6/build", |b| b.iter(|| fig6(black_box(&run.dataset))));
    c.bench_function("fig6/haversine", |b| {
        let a = GeoPoint {
            lat: 51.5074,
            lon: -0.1278,
        };
        let z = GeoPoint {
            lat: 42.6389,
            lon: -83.2910,
        };
        b.iter(|| haversine_km(black_box(a), black_box(z)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
