//! Figure 1 — distribution of access types per leak outlet.
//!
//! Paper shape: most accesses curious everywhere; malware has *no*
//! hijackers or spammers; paste has the largest hijacker share (~20%);
//! forums the largest gold-digger share (~30%).

use criterion::{criterion_group, criterion_main, Criterion};
use pwnd_analysis::figures::fig1;
use pwnd_analysis::taxonomy::classify;
use pwnd_bench::{paper_run, BENCH_SEED};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let run = paper_run(BENCH_SEED);
    let f = fig1(&run.dataset);

    println!("\n== Figure 1: access-type fractions per outlet ==");
    println!(
        "{:<10} {:>8} {:>12} {:>9} {:>8}  n",
        "outlet", "curious", "gold digger", "hijacker", "spammer"
    );
    for (outlet, fr, n) in &f.rows {
        println!(
            "{outlet:<10} {:>8.2} {:>12.2} {:>9.2} {:>8.2}  {n}",
            fr[0], fr[1], fr[2], fr[3]
        );
    }
    println!("paper: malware hijacker=0, paste hijacker≈0.20, forum gold≈0.30");

    c.bench_function("fig1/build", |b| b.iter(|| fig1(black_box(&run.dataset))));
    c.bench_function("fig1/classify_single_access", |b| {
        let access = &run.dataset.accesses[0];
        b.iter(|| classify(black_box(access)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
