//! # pwnd-bench — shared helpers for the benchmark harness
//!
//! Every table and figure of the paper has a Criterion bench target in
//! `benches/`. Experiments are expensive (a full 236-day world), so the
//! harness memoizes one run per (config flavour, seed) and lets each
//! bench print its paper-vs-measured comparison once before timing the
//! analysis step it regenerates.

use parking_lot::Mutex;
use pwnd_core::{Experiment, ExperimentConfig, RunOutput};
use std::collections::HashMap;
use std::sync::Arc;

type RunCache = HashMap<(bool, u64), Arc<RunOutput>>;

static CACHE: Mutex<Option<RunCache>> = Mutex::new(None);

/// The seed every bench uses by default, so printed numbers match across
/// targets and EXPERIMENTS.md.
pub const BENCH_SEED: u64 = 2016;

/// Run (or fetch the memoized) paper experiment.
pub fn paper_run(seed: u64) -> Arc<RunOutput> {
    run_cached(false, seed)
}

/// Run (or fetch) the login-filter-enabled ablation.
pub fn filtered_run(seed: u64) -> Arc<RunOutput> {
    run_cached(true, seed)
}

fn run_cached(login_filter: bool, seed: u64) -> Arc<RunOutput> {
    let mut guard = CACHE.lock();
    let map = guard.get_or_insert_with(HashMap::new);
    if let Some(hit) = map.get(&(login_filter, seed)) {
        return hit.clone();
    }
    let mut config = ExperimentConfig::paper(seed);
    config.login_filter_enabled = login_filter;
    let out = Arc::new(Experiment::new(config).run());
    map.insert((login_filter, seed), out.clone());
    out
}
