//! The workspace itself must lint clean: this is the same gate CI runs
//! with `cargo run -p pwnd-lint -- --deny`, wired into `cargo test` so a
//! determinism regression cannot land even on machines that skip CI.

use std::path::Path;

#[test]
fn workspace_has_no_findings() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = pwnd_lint::find_workspace_root(here).expect("workspace root");
    let report = pwnd_lint::lint_workspace(&root, None).expect("scan workspace");
    assert!(
        report.findings.is_empty(),
        "the workspace must be lint-clean; run `cargo run -p pwnd-lint` for details:\n{}",
        report.render()
    );
    assert!(report.files_scanned > 100, "scan looks too small");
}
