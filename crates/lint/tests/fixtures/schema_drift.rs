//! Seeded schema drift: an emit-only tag, a re-inlined tag literal,
//! and a metric read under a name nothing emits.

// lint:jsonl-tags
pub mod tags {
    pub const LIVE: &str = "live";
    pub const ORPHAN: &str = "orphan";
    pub const GHOST: &str = "ghost"; // lint:allow(schema-drift): the fixture audits one future record kind
}

// lint:jsonl-emit
pub fn write_all(w: &mut W) {
    w.line(tags::LIVE);
    w.line(tags::ORPHAN);
    w.line(tags::GHOST);
    w.line("live");
}

// lint:jsonl-consume
pub fn read_all(r: &R) {
    r.read(tags::LIVE);
}

pub fn stale_metric(snap: &Snapshot) -> u64 {
    snap.counter("fleet.ghost")
}

pub fn live_metric(sink: &Sink, snap: &Snapshot) -> u64 {
    sink.count("fleet.ok");
    snap.counter("fleet.ok")
}
