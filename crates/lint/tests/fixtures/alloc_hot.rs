//! Seeded hot-path allocations, exercising the loop-aware semantics:
//! only allocation that *repeats within one event* is a finding.

// lint:hot-root
pub fn hot(n: usize) -> String {
    let mut out = String::new();
    let header = compose_header();
    for i in 0..n {
        let s = format!("{i}");
        out.push_str(&s);
        append_item(&mut out);
        let label = i.to_string(); // lint:allow(alloc-hot): the fixture audits one per-item label
        out.push_str(&label);
    }
    out.push_str(&header);
    out
}

fn append_item(out: &mut String) {
    let piece = vec![b'x'];
    out.push(piece[0] as char);
}

fn compose_header() -> String {
    let mut h = String::new();
    h.push_str("hdr");
    h
}
