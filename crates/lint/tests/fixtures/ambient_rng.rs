// Seeded violations for the ambient-rng rule. Linted as if it lived at
// crates/attacker/src/bad.rs.

pub fn naughty() -> u64 {
    let mut rng = rand::thread_rng(); // finding: ambient-rng
    let x: u64 = rand::random(); // finding: ambient-rng
    let s = std::collections::hash_map::RandomState::new(); // finding: ambient-rng
    let _ = (&mut rng, s);
    x
}

pub fn fine(seed: u64) -> u64 {
    // Salted-stream constructors are the sanctioned path.
    let mut rng = pwnd_sim::Rng::seed_from(seed);
    rng.next_u64()
}
