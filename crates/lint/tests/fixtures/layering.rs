//! Seeded layering violations: the monitor reaching into provider
//! internals the manifest never granted it.

use pwnd_core::report::Overview;
use pwnd_webmail::mailbox::Mailbox;
use pwnd_corpus::email::Email; // lint:allow(layering): the fixture audits one sanctioned exception

pub fn peek(_a: &Overview, _b: &Mailbox, _c: &Email) {}
