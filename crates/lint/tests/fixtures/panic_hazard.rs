// Seeded violations for the panic-hazard rule. Linted as if it lived at
// crates/monitor/src/parser.rs (a resilient monitor path).
use std::collections::HashMap;

pub fn naughty(parts: &[&str], m: &HashMap<u32, u32>) -> u32 {
    let first: u32 = parts[0].parse().unwrap(); // findings: indexing + unwrap
    let second = m[&first]; // finding: indexing
    let third = m.get(&second).expect("present"); // finding: expect
    if parts.len() < 2 {
        panic!("short row"); // finding: panic!
    }
    *third
}

pub fn fine(parts: &[&str], m: &HashMap<u32, u32>) -> Option<u32> {
    let first: u32 = parts.first()?.parse().ok()?;
    m.get(&first).copied()
}
