//! Seeded concurrency outside the manifest-approved modules.

pub fn tally(v: u32) -> u32 {
    let m = std::sync::Mutex::new(v);
    drop(m);
    let a = std::sync::atomic::AtomicU32::new(v); // lint:allow(lock-discipline): the fixture audits one approved counter
    a.into_inner()
}
