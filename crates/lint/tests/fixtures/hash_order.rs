// Seeded violations for the hash-order rule. Linted as if it lived at
// crates/analysis/src/bad.rs.
use std::collections::{BTreeMap, HashMap};

pub fn leaky(m: &HashMap<String, u64>) -> Vec<u64> {
    m.values().copied().collect() // finding: pub fn, unsorted hash iteration
}

pub fn render(m: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in m.iter() {
        // finding: loop order reaches the rendered string
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}

pub fn sorted_first(m: &HashMap<String, u64>) -> Vec<String> {
    let mut keys: Vec<String> = m.keys().cloned().collect();
    keys.sort(); // no finding: sorted before anyone can observe the order
    keys
}

pub fn rehomed(m: &HashMap<String, u64>) -> BTreeMap<String, u64> {
    m.iter().map(|(k, v)| (k.clone(), *v)).collect::<BTreeMap<_, _>>() // no finding
}

pub fn order_free(m: &HashMap<String, u64>) -> u64 {
    m.values().sum() // no finding: sum is order-insensitive
}

fn private_helper(m: &HashMap<String, u64>) -> Vec<u64> {
    m.values().copied().collect() // no finding: private, reaches no sink
}

pub fn total(m: &HashMap<String, u64>) -> u64 {
    private_helper(m).iter().sum()
}
