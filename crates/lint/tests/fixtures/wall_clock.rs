// Seeded violations for the wall-clock rule. Linted as if it lived at
// crates/sim/src/bad.rs (a deterministic crate).
use std::time::{Instant, SystemTime};

pub fn naughty() -> u64 {
    let t = Instant::now(); // finding: wall-clock
    std::thread::sleep(std::time::Duration::from_millis(1)); // finding: wall-clock
    let s = SystemTime::now(); // finding: wall-clock
    let _ = (t, s);
    0
}

pub fn fine() -> &'static str {
    // Strings are opaque: "Instant::now" is not a finding.
    "Instant::now"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let _ = std::time::Instant::now(); // no finding: test region
    }
}
