// Seeded violations for the env-io rule. Linted as if it lived at
// crates/corpus/src/bad.rs (a pure crate).

pub fn naughty() -> String {
    let home = std::env::var("HOME").unwrap_or_default(); // finding: env-io
    let text = std::fs::read_to_string("/etc/hostname").unwrap_or_default(); // finding: env-io
    let _sock = std::net::TcpStream::connect("127.0.0.1:1"); // finding: env-io
    format!("{home}{text}")
}

pub fn fine(bytes: &[u8]) -> usize {
    // Pure computation over inputs is what these crates are for.
    bytes.len()
}
