// Exercises the suppression syntax. Linted as if it lived at
// crates/monitor/src/parser.rs.
use std::collections::HashMap;

pub fn suppressed_trailing(m: &HashMap<u32, u32>) -> u32 {
    m[&0] // lint:allow(panic-hazard): fixture — key 0 is inserted by the caller
}

pub fn suppressed_own_line(m: &HashMap<u32, u32>) -> u32 {
    // lint:allow(panic-hazard): fixture — key 1 is inserted by the caller
    m[&1]
}

pub fn still_caught(m: &HashMap<u32, u32>) -> u32 {
    m[&2] // finding: no directive on this line
}

pub fn bad_directives(m: &HashMap<u32, u32>) -> u32 {
    // finding (bad-allow): unknown rule id — and the indexing below still fires
    let a = m[&3]; // lint:allow(no-such-rule): typo'd rule
    // finding (bad-allow): missing reason — and the indexing below still fires
    let b = m[&4]; // lint:allow(panic-hazard)
    a + b
}

pub fn stale(v: u32) -> u32 {
    // finding (unused-allow): nothing here panics
    v + 1 // lint:allow(panic-hazard): left over from an old refactor
}
