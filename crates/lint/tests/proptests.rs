//! Property-based tests for the lint lexer and pass-1 analysis.
//!
//! The lexer's documented contract is "never fails": a linter that
//! panics on the one malformed file it most needs to read is useless.
//! These properties hammer that with arbitrary unicode and with
//! adversarial Rust-ish fragments (unterminated strings, nested block
//! comments, stray quotes), and pin span stability: token lines are
//! 1-based, bounded by the input's line count, non-decreasing in source
//! order, and shift by exactly one when a line is prepended.

use proptest::prelude::*;
use pwnd_lint::analyze_file;
use pwnd_lint::lexer::lex;

/// Rust-ish fragments, heavy on the constructs the lexer special-cases.
/// Composing them randomly produces unterminated strings, comment
/// nesting, raw-string edges, and turbofish far more often than
/// uniform random unicode would.
const FRAGMENTS: &[&str] = &[
    "fn f() {",
    "}",
    "\"str with // no comment\"",
    "\"unterminated",
    "r#\"raw \" body\"#",
    "r#\"unterminated raw",
    "b\"bytes\"",
    "'c'",
    "'\\n'",
    "'lifetime",
    "/* block /* nested */ still block */",
    "/* unterminated",
    "// line comment lint:allow(wall-clock): reason",
    "// lint:hot-root",
    "::<Vec<u8>>",
    "std::time::Instant::now()",
    "let x = format!(\"{y}\");",
    "for i in 0..n {",
    "\\u{1F980}",
    "\u{1F980}",
    "\n",
    "\r\n",
    "\t",
    "0xFF_u64",
    "1.5e-3",
    "#[test]",
    "macro_rules! m { () => {} }",
];

fn fragment_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..FRAGMENTS.len(), 1..40)
        .prop_map(|idxs| idxs.into_iter().map(|i| FRAGMENTS[i]).collect())
}

proptest! {
    /// The lexer accepts any string at all without panicking, and both
    /// passes over it (lex + full pass-1 model build) are total.
    #[test]
    fn lexer_and_analysis_never_panic(src in ".{0,200}") {
        let _ = lex(&src);
        let _ = analyze_file("crates/monitor/src/fuzz.rs", &src);
    }

    /// Same totality under adversarial Rust-ish fragment soup.
    #[test]
    fn lexer_survives_pathological_rust(src in fragment_soup()) {
        let _ = lex(&src);
        let _ = analyze_file("crates/monitor/src/fuzz.rs", &src);
    }

    /// Spans are stable: every token and comment line is 1-based, never
    /// exceeds the number of source lines, and is non-decreasing in
    /// source order.
    #[test]
    fn spans_are_bounded_and_monotone(src in fragment_soup()) {
        let lexed = lex(&src);
        let line_count = src.split('\n').count() as u32;
        let mut last = 1u32;
        for t in &lexed.tokens {
            prop_assert!(t.line >= 1 && t.line <= line_count, "token line {} of {line_count}", t.line);
            prop_assert!(t.line >= last, "token lines went backwards");
            last = t.line;
        }
        let mut last = 1u32;
        for c in &lexed.comments {
            prop_assert!(c.line >= 1 && c.line <= line_count, "comment line {} of {line_count}", c.line);
            prop_assert!(c.line >= last, "comment lines went backwards");
            last = c.line;
        }
    }

    /// Lexing is a pure function: two runs agree exactly.
    #[test]
    fn lexing_is_deterministic(src in fragment_soup()) {
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(a.tokens, b.tokens);
        prop_assert_eq!(a.comments, b.comments);
    }

    /// Prepending one blank line shifts every span by exactly one and
    /// changes nothing else — the definition of a stable span.
    #[test]
    fn prepended_line_shifts_spans_by_one(src in fragment_soup()) {
        let base = lex(&src);
        let shifted = lex(&format!("\n{src}"));
        prop_assert_eq!(base.tokens.len(), shifted.tokens.len());
        for (a, b) in base.tokens.iter().zip(&shifted.tokens) {
            prop_assert_eq!(&a.kind, &b.kind);
            prop_assert_eq!(a.line + 1, b.line);
        }
        prop_assert_eq!(base.comments.len(), shifted.comments.len());
        for (a, b) in base.comments.iter().zip(&shifted.comments) {
            prop_assert_eq!(&a.text, &b.text);
            prop_assert_eq!(a.line + 1, b.line);
        }
    }
}
