//! Fixture self-tests: every rule must fire on its seeded violations and
//! stay quiet on the adjacent safe idioms — this is the linter's own
//! regression suite. Fixtures live under `tests/fixtures/` (excluded
//! from workspace scans) and are linted under synthetic in-scope paths.

use pwnd_lint::{lint_files, LintReport};

fn lint_fixture(path: &str, src: &str) -> LintReport {
    lint_files(&[(path.to_string(), src.to_string())], None)
}

fn lines_for(report: &LintReport, rule: &str) -> Vec<u32> {
    let mut v: Vec<u32> = report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect();
    v.dedup();
    v
}

#[test]
fn wall_clock_rule_fires_on_seeded_violations() {
    let src = include_str!("fixtures/wall_clock.rs");
    let r = lint_fixture("crates/sim/src/bad.rs", src);
    let lines = lines_for(&r, "wall-clock");
    // The use statement plus the three calls in `naughty`.
    assert!(lines.contains(&3), "use of std::time: {lines:?}");
    assert!(lines.contains(&6), "Instant::now: {lines:?}");
    assert!(lines.contains(&7), "thread::sleep: {lines:?}");
    assert!(lines.contains(&8), "SystemTime::now: {lines:?}");
    // Nothing in the string literal or the test module.
    assert!(lines.iter().all(|&l| l <= 11), "{lines:?}");
    // The same file in the telemetry crate is out of scope.
    let r = lint_fixture("crates/telemetry/src/bad.rs", src);
    assert!(lines_for(&r, "wall-clock").is_empty());
}

#[test]
fn hash_order_rule_flags_observable_iteration_only() {
    let src = include_str!("fixtures/hash_order.rs");
    let r = lint_fixture("crates/analysis/src/bad.rs", src);
    let lines = lines_for(&r, "hash-order");
    assert!(lines.contains(&6), "pub fn leaky: {lines:?}");
    assert!(lines.contains(&11), "for-loop in render: {lines:?}");
    // Sorted, re-homed, order-insensitive, and private/pure uses stay quiet.
    assert_eq!(lines, vec![6, 11], "{lines:?}");
}

#[test]
fn ambient_rng_rule_fires_outside_the_rng_home() {
    let src = include_str!("fixtures/ambient_rng.rs");
    let r = lint_fixture("crates/attacker/src/bad.rs", src);
    let lines = lines_for(&r, "ambient-rng");
    assert_eq!(lines, vec![5, 6, 7], "{lines:?}");
    // The salted-stream constructor file itself is exempt.
    let r = lint_fixture("crates/sim/src/rng.rs", src);
    assert!(lines_for(&r, "ambient-rng").is_empty());
}

#[test]
fn env_io_rule_fires_in_pure_crates_only() {
    let src = include_str!("fixtures/env_io.rs");
    let r = lint_fixture("crates/corpus/src/bad.rs", src);
    let lines = lines_for(&r, "env-io");
    assert_eq!(lines, vec![5, 6, 7], "{lines:?}");
    // The binary is the imperative shell and may do IO.
    let r = lint_fixture("src/bin/pwnd.rs", src);
    assert!(lines_for(&r, "env-io").is_empty());
}

#[test]
fn panic_hazard_rule_fires_on_monitor_parse_paths_only() {
    let src = include_str!("fixtures/panic_hazard.rs");
    let r = lint_fixture("crates/monitor/src/parser.rs", src);
    let lines = lines_for(&r, "panic-hazard");
    assert!(lines.contains(&6), "slice index + unwrap: {lines:?}");
    assert!(lines.contains(&7), "map index: {lines:?}");
    assert!(lines.contains(&8), "expect: {lines:?}");
    assert!(lines.contains(&10), "panic!: {lines:?}");
    assert!(lines.iter().all(|&l| l < 14), "fine() is clean: {lines:?}");
    // The same code outside the resilient monitor files is out of scope.
    let r = lint_fixture("crates/monitor/src/script.rs", src);
    assert!(lines_for(&r, "panic-hazard").is_empty());
}

#[test]
fn allow_directives_suppress_audit_and_expire() {
    let src = include_str!("fixtures/allows.rs");
    let r = lint_fixture("crates/monitor/src/parser.rs", src);
    // Both placements suppress their violation...
    let hazard = lines_for(&r, "panic-hazard");
    assert!(!hazard.contains(&6), "trailing allow: {hazard:?}");
    assert!(!hazard.contains(&11), "own-line allow: {hazard:?}");
    // ...and the suppressions are recorded, not dropped.
    assert_eq!(r.suppressed.len(), 2, "{:?}", r.suppressed);
    // An unsuppressed twin still fires.
    assert!(hazard.contains(&15), "{hazard:?}");
    // Malformed directives are findings and do not suppress.
    let bad = lines_for(&r, "bad-allow");
    assert_eq!(bad, vec![20, 22], "{bad:?}");
    assert!(hazard.contains(&20) && hazard.contains(&22), "{hazard:?}");
    // A directive that suppresses nothing is flagged for removal.
    assert_eq!(lines_for(&r, "unused-allow"), vec![28]);
}

#[test]
fn rule_filter_limits_the_run() {
    let src = include_str!("fixtures/panic_hazard.rs");
    let only: std::collections::BTreeSet<String> = ["wall-clock".to_string()].into_iter().collect();
    let r = lint_files(
        &[("crates/monitor/src/parser.rs".to_string(), src.to_string())],
        Some(&only),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}
