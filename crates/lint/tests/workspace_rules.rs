//! Fixture self-tests for the pass-2 workspace rules. Each rule gets a
//! seeded true positive, an adjacent true negative, and one audited
//! `lint:allow` — the same triple the per-file rules are held to in
//! `rules.rs`. Fixtures are linted under synthetic in-scope paths with
//! a hand-built [`WorkspaceCtx`], so the tests pin the cross-crate
//! behavior (manifest DAG, call-graph reachability, emit/consume
//! matching) without depending on the real workspace's state.

use pwnd_lint::manifest::{parse_cargo_deps, LayeringManifest};
use pwnd_lint::{lint_files_with, LintReport, WorkspaceCtx};

/// A small architecture: monitor may see core, nothing may see webmail,
/// and only `crates/core/src/fleet.rs` may hold locks.
const MANIFEST: &str = r#"
[deps]
monitor = ["core"]
corpus = []
core = []

[locks]
allow = ["crates/core/src/fleet.rs"]
"#;

fn ctx() -> WorkspaceCtx {
    WorkspaceCtx {
        manifest: Some(LayeringManifest::parse(MANIFEST).expect("fixture manifest")),
        ..WorkspaceCtx::default()
    }
}

fn lint_fixture(ctx: &WorkspaceCtx, path: &str, src: &str) -> LintReport {
    lint_files_with(&[(path.to_string(), src.to_string())], ctx, None)
}

fn lines_for(report: &LintReport, rule: &str) -> Vec<u32> {
    let mut v: Vec<u32> = report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect();
    v.dedup();
    v
}

fn suppressed_lines_for(report: &LintReport, rule: &str) -> Vec<u32> {
    report
        .suppressed
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn layering_rule_fires_on_disallowed_imports() {
    let src = include_str!("fixtures/layering.rs");
    let r = lint_fixture(&ctx(), "crates/monitor/src/bad.rs", src);
    // `pwnd_webmail` is not an edge the manifest grants monitor.
    assert_eq!(lines_for(&r, "layering"), vec![5]);
    // `pwnd_core` (line 4) is allowed; the corpus import is audited.
    assert_eq!(suppressed_lines_for(&r, "layering"), vec![6]);
}

#[test]
fn layering_rule_checks_cargo_declarations() {
    let src = include_str!("fixtures/layering.rs");
    let mut ctx = ctx();
    ctx.cargo.push(parse_cargo_deps(
        "monitor",
        "crates/monitor/Cargo.toml",
        "[dependencies]\npwnd-core = { path = \"../core\" }\npwnd-webmail = { path = \"../webmail\" }\n",
    ));
    let r = lint_fixture(&ctx, "crates/monitor/src/bad.rs", src);
    let cargo_findings: Vec<&pwnd_lint::Finding> = r
        .findings
        .iter()
        .filter(|f| f.path == "crates/monitor/Cargo.toml")
        .collect();
    // The declared `pwnd-webmail` edge (manifest line 3) is disallowed;
    // `pwnd-core` is both allowed and used by the source fixture.
    assert_eq!(cargo_findings.len(), 1, "{cargo_findings:?}");
    assert_eq!(cargo_findings[0].line, 3);
    assert!(cargo_findings[0].message.contains("pwnd-webmail"));
}

#[test]
fn layering_rule_flags_undeclared_crates_and_dead_edges() {
    // A crate absent from the manifest is itself a finding …
    let mut ctx = ctx();
    ctx.cargo.push(parse_cargo_deps(
        "attacker",
        "crates/attacker/Cargo.toml",
        "[dependencies]\n",
    ));
    // … and so is a declared dep the crate never references.
    ctx.cargo.push(parse_cargo_deps(
        "monitor",
        "crates/monitor/Cargo.toml",
        "[dependencies]\npwnd-core = { path = \"../core\" }\n",
    ));
    let r = lint_files_with(
        &[(
            "crates/monitor/src/ok.rs".to_string(),
            "pub fn quiet() {}\n".to_string(),
        )],
        &ctx,
        None,
    );
    let msgs: Vec<&str> = r
        .findings
        .iter()
        .filter(|f| f.rule == "layering")
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        msgs.iter()
            .any(|m| m.contains("not listed in LAYERING.toml")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("remove the dead edge")),
        "{msgs:?}"
    );
}

#[test]
fn alloc_hot_flags_only_repeating_allocation() {
    let src = include_str!("fixtures/alloc_hot.rs");
    let r = lint_fixture(&ctx(), "crates/corpus/src/hot.rs", src);
    // Line 9: `format!` inside the root's own loop. Line 20: a
    // straight-line `vec!` in `append_item`, which is *called* from
    // inside the loop — the looped status must propagate across the
    // call edge.
    assert_eq!(lines_for(&r, "alloc-hot"), vec![9, 20]);
    // The audited per-item label (line 12) is suppressed, not dropped.
    assert_eq!(suppressed_lines_for(&r, "alloc-hot"), vec![12]);
    // Straight-line allocation in the root (line 6) and in the
    // once-per-event `compose_header` callee (line 25) stays quiet:
    // reached once per event is not "repeats within one event".
    for f in &r.findings {
        assert!(f.line != 6 && f.line != 25, "cold site flagged: {f:?}");
    }
}

#[test]
fn alloc_hot_is_inert_without_a_hot_root() {
    let src = include_str!("fixtures/alloc_hot.rs").replace("// lint:hot-root", "");
    let r = lint_fixture(&ctx(), "crates/corpus/src/hot.rs", src.as_str());
    assert!(lines_for(&r, "alloc-hot").is_empty());
}

#[test]
fn schema_drift_catches_orphan_tags_inline_literals_and_stale_metrics() {
    let src = include_str!("fixtures/schema_drift.rs");
    let r = lint_fixture(&ctx(), "crates/monitor/src/export_fixture.rs", src);
    // Line 7: `ORPHAN` is emitted but never consumed. Line 16: a marked
    // emit site re-inlines the literal "live". Line 25: a metric read
    // under a name nothing emits.
    assert_eq!(lines_for(&r, "schema-drift"), vec![7, 16, 25]);
    // `LIVE` (written and read) and `fleet.ok` (emitted and read) are
    // quiet; the audited future tag `GHOST` is suppressed.
    assert_eq!(suppressed_lines_for(&r, "schema-drift"), vec![8]);
}

#[test]
fn lock_discipline_respects_the_manifest_allow_list() {
    let src = include_str!("fixtures/lock_discipline.rs");
    // An unapproved module: the Mutex is a finding, the audited atomic
    // is suppressed.
    let r = lint_fixture(&ctx(), "crates/corpus/src/bad.rs", src);
    assert_eq!(lines_for(&r, "lock-discipline"), vec![4]);
    assert_eq!(suppressed_lines_for(&r, "lock-discipline"), vec![6]);
    // The manifest-approved module: no lock findings at all — and the
    // now-pointless allow is itself reported as unused.
    let r = lint_fixture(&ctx(), "crates/core/src/fleet.rs", src);
    assert!(lines_for(&r, "lock-discipline").is_empty());
    assert_eq!(lines_for(&r, "unused-allow"), vec![6]);
}
