//! The incremental analysis cache: pass-1 [`FileModel`]s keyed by
//! content SHA-256.
//!
//! Pass 1 (lex + per-file rules + model distillation) is a pure
//! function of `(path, content)`, so its output can be replayed for any
//! file whose bytes have not changed. The cache stores one JSON entry
//! per file — `{path, sha256, model}` — under a schema/engine-revision
//! header; a warm run re-analyzes only changed files and runs pass 2
//! over the mixed cold/warm models, producing a report byte-identical
//! to a cold run (CI asserts exactly this).
//!
//! Every mismatch — unreadable file, wrong schema, stale
//! [`ENGINE_REV`], malformed entry — degrades to a cold analysis of the
//! affected files. The cache can never change a verdict, only skip
//! work.

use crate::findings::Finding;
use crate::model::{FileModel, FnModel, TagDef};
use crate::source::{AllowDirective, BadAllow};
use pwnd_core::hash::Sha256;
use pwnd_telemetry::json::Json;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Cache file schema identifier.
const SCHEMA: &str = "pwnd-lint-cache/1";

/// Bump when pass-1 semantics change (new per-file rule, new model
/// field, lexer fix): invalidates every cached model wholesale.
pub const ENGINE_REV: u64 = 2;

/// The content key for one file.
pub fn file_key(content: &str) -> String {
    Sha256::digest_hex(content.as_bytes())
}

/// An in-memory cache: path → (content sha, model).
#[derive(Debug, Default)]
pub struct Cache {
    entries: BTreeMap<String, (String, FileModel)>,
}

impl Cache {
    /// Load from disk. Any failure (missing file, bad JSON, wrong
    /// schema or engine revision, malformed entry) yields an empty
    /// cache: correctness never depends on what is on disk.
    pub fn load(path: &Path) -> Cache {
        let mut cache = Cache::default();
        let Ok(text) = std::fs::read_to_string(path) else {
            return cache;
        };
        let Ok(root) = Json::parse(&text) else {
            return cache;
        };
        if root.get("schema").and_then(Json::as_str) != Some(SCHEMA)
            || root.get("engine").and_then(Json::as_u64) != Some(ENGINE_REV)
        {
            return cache;
        }
        for entry in root
            .get("files")
            .and_then(Json::as_array)
            .unwrap_or_default()
        {
            let parsed = (|| {
                let path = entry.get("path")?.as_str()?.to_string();
                let sha = entry.get("sha")?.as_str()?.to_string();
                let model = model_from_json(entry.get("model")?)?;
                Some((path, sha, model))
            })();
            if let Some((path, sha, model)) = parsed {
                cache.entries.insert(path, (sha, model));
            }
        }
        cache
    }

    /// The cached model for `path`, if its content sha still matches.
    pub fn lookup(&self, path: &str, sha: &str) -> Option<&FileModel> {
        self.entries
            .get(path)
            .and_then(|(s, m)| (s == sha).then_some(m))
    }

    /// Write the given `(sha, model)` set to disk, replacing any
    /// previous contents (deleted files drop out automatically).
    pub fn save(path: &Path, entries: &[(String, FileModel)]) -> io::Result<()> {
        let files: Vec<Json> = entries
            .iter()
            .map(|(sha, m)| {
                Json::Obj(vec![
                    ("path".to_string(), Json::Str(m.path.clone())),
                    ("sha".to_string(), Json::Str(sha.clone())),
                    ("model".to_string(), model_to_json(m)),
                ])
            })
            .collect();
        let root = Json::Obj(vec![
            ("schema".to_string(), Json::Str(SCHEMA.to_string())),
            ("engine".to_string(), Json::U(ENGINE_REV)),
            ("files".to_string(), Json::Arr(files)),
        ]);
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, root.compact())
    }
}

// ---- FileModel ⇄ Json ---------------------------------------------------

fn str_u32_pairs(items: &[(String, u32)]) -> Json {
    Json::Arr(
        items
            .iter()
            .map(|(s, n)| Json::Arr(vec![Json::Str(s.clone()), Json::U(u64::from(*n))]))
            .collect(),
    )
}

fn u32_str_pairs(items: &[(u32, String)]) -> Json {
    Json::Arr(
        items
            .iter()
            .map(|(n, s)| Json::Arr(vec![Json::U(u64::from(*n)), Json::Str(s.clone())]))
            .collect(),
    )
}

fn str_arr<'a>(items: impl Iterator<Item = &'a String>) -> Json {
    Json::Arr(items.map(|s| Json::Str(s.clone())).collect())
}

/// Serialize one model.
pub fn model_to_json(m: &FileModel) -> Json {
    let fns: Vec<Json> = m
        .fns
        .iter()
        .map(|f| {
            Json::Obj(vec![
                ("name".to_string(), Json::Str(f.name.clone())),
                ("line".to_string(), Json::U(u64::from(f.line))),
                ("is_test".to_string(), Json::Bool(f.is_test)),
                ("hot_root".to_string(), Json::Bool(f.hot_root)),
                ("jsonl_emit".to_string(), Json::Bool(f.jsonl_emit)),
                ("jsonl_consume".to_string(), Json::Bool(f.jsonl_consume)),
                (
                    "calls".to_string(),
                    Json::Arr(
                        f.calls
                            .iter()
                            .map(|(c, l)| Json::Arr(vec![Json::Str(c.clone()), Json::Bool(*l)]))
                            .collect(),
                    ),
                ),
                (
                    "alloc_sites".to_string(),
                    Json::Arr(
                        f.alloc_sites
                            .iter()
                            .map(|(n, s, l)| {
                                Json::Arr(vec![
                                    Json::U(u64::from(*n)),
                                    Json::Str(s.clone()),
                                    Json::Bool(*l),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("tag_refs".to_string(), str_arr(f.tag_refs.iter())),
                ("str_lits".to_string(), str_u32_pairs(&f.str_lits)),
            ])
        })
        .collect();
    let tag_defs: Vec<Json> = m
        .tag_defs
        .iter()
        .map(|d| {
            Json::Arr(vec![
                Json::Str(d.name.clone()),
                Json::Str(d.value.clone()),
                Json::U(u64::from(d.line)),
            ])
        })
        .collect();
    let findings: Vec<Json> = m
        .local_findings
        .iter()
        .map(|f| {
            Json::Obj(vec![
                ("line".to_string(), Json::U(u64::from(f.line))),
                ("rule".to_string(), Json::Str(f.rule.clone())),
                ("message".to_string(), Json::Str(f.message.clone())),
            ])
        })
        .collect();
    let allows: Vec<Json> = m
        .allows
        .iter()
        .map(|a| {
            Json::Obj(vec![
                ("line".to_string(), Json::U(u64::from(a.line))),
                ("applies_to".to_string(), Json::U(u64::from(a.applies_to))),
                ("rule".to_string(), Json::Str(a.rule.clone())),
                ("reason".to_string(), Json::Str(a.reason.clone())),
            ])
        })
        .collect();
    let bad_allows: Vec<Json> = m
        .bad_allows
        .iter()
        .map(|b| {
            Json::Obj(vec![
                ("line".to_string(), Json::U(u64::from(b.line))),
                ("why".to_string(), Json::Str(b.why.clone())),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("path".to_string(), Json::Str(m.path.clone())),
        ("krate".to_string(), Json::Str(m.krate.clone())),
        ("imports".to_string(), str_u32_pairs(&m.imports)),
        ("all_refs".to_string(), str_arr(m.all_refs.iter())),
        ("fns".to_string(), Json::Arr(fns)),
        ("tag_defs".to_string(), Json::Arr(tag_defs)),
        ("metric_emits".to_string(), str_u32_pairs(&m.metric_emits)),
        (
            "metric_consumes".to_string(),
            str_u32_pairs(&m.metric_consumes),
        ),
        ("lock_sites".to_string(), u32_str_pairs(&m.lock_sites)),
        ("local_findings".to_string(), Json::Arr(findings)),
        ("allows".to_string(), Json::Arr(allows)),
        ("bad_allows".to_string(), Json::Arr(bad_allows)),
    ])
}

fn read_str_u32(j: &Json) -> Option<(String, u32)> {
    let a = j.as_array()?;
    Some((
        a.first()?.as_str()?.to_string(),
        u32::try_from(a.get(1)?.as_u64()?).ok()?,
    ))
}

fn read_u32_str(j: &Json) -> Option<(u32, String)> {
    let a = j.as_array()?;
    Some((
        u32::try_from(a.first()?.as_u64()?).ok()?,
        a.get(1)?.as_str()?.to_string(),
    ))
}

fn read_vec<T>(j: Option<&Json>, f: impl Fn(&Json) -> Option<T>) -> Option<Vec<T>> {
    j?.as_array()?.iter().map(f).collect()
}

fn read_line(j: &Json, key: &str) -> Option<u32> {
    u32::try_from(j.get(key)?.as_u64()?).ok()
}

/// Deserialize one model; `None` on any shape mismatch.
pub fn model_from_json(j: &Json) -> Option<FileModel> {
    let fns = read_vec(j.get("fns"), |f| {
        Some(FnModel {
            name: f.get("name")?.as_str()?.to_string(),
            line: read_line(f, "line")?,
            is_test: f.get("is_test")?.as_bool()?,
            hot_root: f.get("hot_root")?.as_bool()?,
            jsonl_emit: f.get("jsonl_emit")?.as_bool()?,
            jsonl_consume: f.get("jsonl_consume")?.as_bool()?,
            calls: read_vec(f.get("calls"), |c| {
                let a = c.as_array()?;
                Some((a.first()?.as_str()?.to_string(), a.get(1)?.as_bool()?))
            })?
            .into_iter()
            .collect(),
            alloc_sites: read_vec(f.get("alloc_sites"), |s| {
                let a = s.as_array()?;
                Some((
                    u32::try_from(a.first()?.as_u64()?).ok()?,
                    a.get(1)?.as_str()?.to_string(),
                    a.get(2)?.as_bool()?,
                ))
            })?,
            tag_refs: read_vec(f.get("tag_refs"), |c| Some(c.as_str()?.to_string()))?
                .into_iter()
                .collect(),
            str_lits: read_vec(f.get("str_lits"), read_str_u32)?,
        })
    })?;
    let path = j.get("path")?.as_str()?.to_string();
    let local_findings = read_vec(j.get("local_findings"), |f| {
        Some(Finding {
            path: path.clone(),
            line: read_line(f, "line")?,
            rule: f.get("rule")?.as_str()?.to_string(),
            message: f.get("message")?.as_str()?.to_string(),
        })
    })?;
    Some(FileModel {
        path,
        krate: j.get("krate")?.as_str()?.to_string(),
        imports: read_vec(j.get("imports"), read_str_u32)?,
        all_refs: read_vec(j.get("all_refs"), |c| Some(c.as_str()?.to_string()))?
            .into_iter()
            .collect(),
        fns,
        tag_defs: read_vec(j.get("tag_defs"), |d| {
            let a = d.as_array()?;
            Some(TagDef {
                name: a.first()?.as_str()?.to_string(),
                value: a.get(1)?.as_str()?.to_string(),
                line: u32::try_from(a.get(2)?.as_u64()?).ok()?,
            })
        })?,
        metric_emits: read_vec(j.get("metric_emits"), read_str_u32)?,
        metric_consumes: read_vec(j.get("metric_consumes"), read_str_u32)?,
        lock_sites: read_vec(j.get("lock_sites"), read_u32_str)?,
        local_findings,
        allows: read_vec(j.get("allows"), |a| {
            Some(AllowDirective {
                line: read_line(a, "line")?,
                applies_to: read_line(a, "applies_to")?,
                rule: a.get("rule")?.as_str()?.to_string(),
                reason: a.get("reason")?.as_str()?.to_string(),
            })
        })?,
        bad_allows: read_vec(j.get("bad_allows"), |b| {
            Some(BadAllow {
                line: read_line(b, "line")?,
                why: b.get("why")?.as_str()?.to_string(),
            })
        })?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyze_file;

    const SRC: &str = "\
// lint:jsonl-tags
pub mod tags { pub const ACCESS: &str = \"access\"; }
// lint:hot-root
pub fn hot(sink: &S) {
    let t = Instant::now(); // lint:allow(wall-clock): test fixture
    sink.count(\"m.x\");
    let s = t.to_string();
    helper(s);
}
fn helper(x: String) { drop(x); }
";

    #[test]
    fn model_round_trips_through_json() {
        let m = analyze_file("crates/webmail/src/x.rs", SRC);
        let j = model_to_json(&m);
        let back = model_from_json(&Json::parse(&j.compact()).expect("parse")).expect("model");
        // Spot-check every section survived.
        assert_eq!(back.path, m.path);
        assert_eq!(back.krate, m.krate);
        assert_eq!(back.fns.len(), m.fns.len());
        assert_eq!(back.fns[0].name, "hot");
        assert!(back.fns[0].hot_root);
        assert_eq!(back.fns[0].alloc_sites, m.fns[0].alloc_sites);
        assert_eq!(back.fns[0].calls, m.fns[0].calls);
        assert_eq!(back.tag_defs, m.tag_defs);
        assert_eq!(back.metric_emits, m.metric_emits);
        assert_eq!(back.local_findings, m.local_findings);
        assert_eq!(back.allows, m.allows);
        // And the full JSON is stable under a second round trip.
        let j2 = model_to_json(&back);
        assert_eq!(j.compact(), j2.compact());
    }

    #[test]
    fn cache_load_rejects_wrong_engine_rev() {
        let dir = std::env::temp_dir().join("pwnd-lint-cache-test");
        let file = dir.join("cache.json");
        let m = analyze_file("crates/webmail/src/x.rs", SRC);
        let sha = file_key(SRC);
        Cache::save(&file, &[(sha.clone(), m)]).expect("save");
        let cache = Cache::load(&file);
        assert!(cache.lookup("crates/webmail/src/x.rs", &sha).is_some());
        assert!(cache
            .lookup("crates/webmail/src/x.rs", "deadbeef")
            .is_none());
        // Corrupt the engine revision: the cache must come back empty.
        let text = std::fs::read_to_string(&file).expect("read");
        std::fs::write(&file, text.replace("\"engine\":", "\"engine_\":")).expect("write");
        assert!(Cache::load(&file)
            .lookup("crates/webmail/src/x.rs", &sha)
            .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
