//! Findings and report rendering (text and JSON).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id.
    pub rule: String,
    /// Human message.
    pub message: String,
}

/// The result of linting a file set.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Findings that survived suppression, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by a `lint:allow`, kept for `--json` auditing.
    pub suppressed: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Per-rule finding counts (for summaries and telemetry).
    pub fn counts_by_rule(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for f in &self.findings {
            *m.entry(f.rule.clone()).or_insert(0) += 1;
        }
        m
    }

    /// Render the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        }
        let _ = writeln!(
            out,
            "{} finding{} ({} suppressed by lint:allow) across {} files",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.suppressed.len(),
            self.files_scanned
        );
        out
    }

    /// Render as JSON (machine-readable CI artifact).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&f.path),
                f.line,
                json_str(&f.rule),
                json_str(&f.message)
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "],\n  \"suppressed\": {},\n  \"files_scanned\": {}\n}}\n",
            self.suppressed.len(),
            self.files_scanned
        );
        out
    }
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_text_and_json() {
        let r = LintReport {
            findings: vec![Finding {
                path: "crates/x/src/lib.rs".into(),
                line: 3,
                rule: "wall-clock".into(),
                message: "Instant::now in deterministic crate".into(),
            }],
            suppressed: vec![],
            files_scanned: 2,
        };
        let text = r.render();
        assert!(text.contains("crates/x/src/lib.rs:3: [wall-clock]"));
        assert!(text.contains("1 finding (0 suppressed by lint:allow) across 2 files"));
        let json = r.render_json();
        assert!(json.contains("\"rule\": \"wall-clock\""));
        assert!(json.contains("\"files_scanned\": 2"));
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
