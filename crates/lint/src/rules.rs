//! The rule registry: ids, one-line contracts, and crate scoping.
//!
//! Scoping philosophy: the determinism rules apply to every crate whose
//! output feeds a run (`sim`, `core`, `webmail`, `monitor`, `attacker`,
//! `leak`, `corpus`, `net`, `analysis`, `faults`). `telemetry` is exempt
//! from the wall-clock ban only — wall-clock *profiling* is its job, and
//! its design contract (no-op when disabled, never feeding sim state)
//! is proven by its own tests. That exemption is what makes the span
//! API lintable: a deterministic crate instruments itself through
//! `sink.span(..)` / guard `.child(..)` / `sink.subspan(..)`, and every
//! `Instant::now()` those imply — including the one taken when a
//! `SpanGuard` drops — executes inside `pwnd-telemetry`, never at the
//! call site. Span call sites therefore need no `lint:allow`; a literal
//! clock read in a deterministic crate is still a finding. The `bench` crate and the `tests/` and
//! `examples/` trees are test context and are skipped by every
//! non-meta rule; the linter itself is a tool and may touch the
//! filesystem.

/// Metadata for one rule.
#[derive(Clone, Copy, Debug)]
pub struct RuleMeta {
    /// Stable rule id, as used in `lint:allow(id)`.
    pub id: &'static str,
    /// One-line contract, shown by `--list-rules`.
    pub summary: &'static str,
}

/// Deterministic crates must not read host time.
pub const WALL_CLOCK: &str = "wall-clock";
/// No unordered-container iteration on paths an observer can see.
pub const HASH_ORDER: &str = "hash-order";
/// No ambient randomness outside the salted-stream constructors.
pub const AMBIENT_RNG: &str = "ambient-rng";
/// No environment, filesystem, process, or network access in pure crates.
pub const ENV_IO: &str = "env-io";
/// No panicking shortcuts in the resilient monitor paths.
pub const PANIC_HAZARD: &str = "panic-hazard";
/// Dependency edges must match the `LAYERING.toml` manifest.
pub const LAYERING: &str = "layering";
/// No fresh allocation in functions reachable from a `lint:hot-root`.
pub const ALLOC_HOT: &str = "alloc-hot";
/// JSONL record tags and metric names must agree at emit/consume sites.
pub const SCHEMA_DRIFT: &str = "schema-drift";
/// Locks/atomics/threads only in manifest-approved modules.
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
/// Malformed `lint:allow` directives.
pub const BAD_ALLOW: &str = "bad-allow";
/// `lint:allow` directives that suppress nothing.
pub const UNUSED_ALLOW: &str = "unused-allow";

/// Every rule the engine knows, in reporting order.
pub const ALL_RULES: &[RuleMeta] = &[
    RuleMeta {
        id: WALL_CLOCK,
        summary: "no Instant/SystemTime/thread::sleep in deterministic crates: \
                  a run must be a pure function of (seed, config)",
    },
    RuleMeta {
        id: HASH_ORDER,
        summary: "no HashMap/HashSet iteration reaching serialization, display, or \
                  telemetry export unless sorted or collected into an order-safe container",
    },
    RuleMeta {
        id: AMBIENT_RNG,
        summary: "no thread_rng/from_entropy/OsRng/RandomState: all randomness flows \
                  from the seeded xoshiro streams in pwnd-sim (crates/sim/src/rng.rs)",
    },
    RuleMeta {
        id: ENV_IO,
        summary: "no std::env/std::fs/std::process/socket access in pure crates; \
                  IO belongs to the pwnd binary shell",
    },
    RuleMeta {
        id: PANIC_HAZARD,
        summary: "no unwrap/expect/panic!/indexing in the resilient monitor \
                  parse/retry paths (parser, scraper, collector, dataset)",
    },
    RuleMeta {
        id: LAYERING,
        summary: "every pwnd-* dependency edge (Cargo.toml and source imports) must be \
                  allowed by LAYERING.toml, and every declared edge must be used",
    },
    RuleMeta {
        id: ALLOC_HOT,
        summary: "no format!/clone/to_string/fresh-collection allocation in functions \
                  reachable from a lint:hot-root anchor over the cross-crate call graph",
    },
    RuleMeta {
        id: SCHEMA_DRIFT,
        summary: "every JSONL record tag is both written (lint:jsonl-emit) and read \
                  (lint:jsonl-consume) via the tag-table consts; no metric is read \
                  under a name nothing emits",
    },
    RuleMeta {
        id: LOCK_DISCIPLINE,
        summary: "Mutex/atomics/threads only in modules approved by LAYERING.toml \
                  [locks]; the simulation is single-threaded by contract",
    },
    RuleMeta {
        id: BAD_ALLOW,
        summary: "lint:allow directives must name a known rule and give a reason",
    },
    RuleMeta {
        id: UNUSED_ALLOW,
        summary: "lint:allow directives that suppress nothing must be removed",
    },
];

/// Look up a rule id.
pub fn is_known_rule(id: &str) -> bool {
    ALL_RULES.iter().any(|r| r.id == id)
}

/// Crates whose behavior must be a pure function of `(seed, config)` —
/// the wall-clock ban applies here.
const DETERMINISTIC_CRATES: &[&str] = &[
    "sim", "core", "webmail", "monitor", "attacker", "leak", "corpus", "net", "analysis", "faults",
    "bin",
];

/// Crates that must perform no ambient IO. The binary (`bin`) is the
/// imperative shell and is exempt; `telemetry` renders to strings only,
/// so it is held to the same standard as the pure crates.
const PURE_IO_CRATES: &[&str] = &[
    "sim",
    "core",
    "webmail",
    "monitor",
    "attacker",
    "leak",
    "corpus",
    "net",
    "analysis",
    "faults",
    "telemetry",
];

/// Files holding the sanctioned salted-stream RNG constructors.
const RNG_HOME: &[&str] = &["crates/sim/src/rng.rs"];

/// The resilient monitor paths hardened in the fault-injection PR.
const RESILIENT_MONITOR_FILES: &[&str] = &[
    "crates/monitor/src/parser.rs",
    "crates/monitor/src/scraper.rs",
    "crates/monitor/src/collector.rs",
    "crates/monitor/src/dataset.rs",
];

/// Whether `rule` applies to the file at `path` in crate `krate`.
pub fn applies(rule: &str, krate: &str, path: &str) -> bool {
    match rule {
        WALL_CLOCK => DETERMINISTIC_CRATES.contains(&krate),
        AMBIENT_RNG => !RNG_HOME.contains(&path) && krate != "tests" && krate != "examples",
        ENV_IO => PURE_IO_CRATES.contains(&krate),
        HASH_ORDER => krate != "tests" && krate != "examples",
        PANIC_HAZARD => RESILIENT_MONITOR_FILES.contains(&path),
        // The workspace rules scope themselves over FileModels (test
        // crates and manifest-approved modules are excluded there); at
        // this per-file layer they apply everywhere.
        LAYERING | ALLOC_HOT | SCHEMA_DRIFT | LOCK_DISCIPLINE => true,
        BAD_ALLOW | UNUSED_ALLOW => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_matches_the_contract() {
        assert!(applies(WALL_CLOCK, "sim", "crates/sim/src/time.rs"));
        assert!(!applies(
            WALL_CLOCK,
            "telemetry",
            "crates/telemetry/src/sink.rs"
        ));
        assert!(!applies(AMBIENT_RNG, "sim", "crates/sim/src/rng.rs"));
        assert!(applies(AMBIENT_RNG, "sim", "crates/sim/src/dist.rs"));
        assert!(applies(
            ENV_IO,
            "telemetry",
            "crates/telemetry/src/trace.rs"
        ));
        assert!(!applies(ENV_IO, "bin", "src/bin/pwnd.rs"));
        assert!(applies(
            PANIC_HAZARD,
            "monitor",
            "crates/monitor/src/scraper.rs"
        ));
        assert!(!applies(
            PANIC_HAZARD,
            "monitor",
            "crates/monitor/src/script.rs"
        ));
        assert!(is_known_rule("hash-order"));
        assert!(!is_known_rule("made-up"));
    }
}
