//! `pwnd-lint`: workspace determinism and invariant linter.
//!
//! The simulation's core contract is that a run is a pure function of
//! `(seed, config)`. That property is easy to break silently: one
//! `Instant::now()` in a scoring path, one `HashMap` iteration feeding a
//! report, one `thread_rng()` in a constructor, and runs stop being
//! reproducible without any test failing. This crate is a small,
//! dependency-free static-analysis pass that walks every source file in
//! the workspace and enforces the named invariants from DESIGN.md:
//!
//! - [`rules::WALL_CLOCK`] — no host-time reads in deterministic crates.
//! - [`rules::HASH_ORDER`] — no unordered-container iteration on paths
//!   that reach serialization, display, or telemetry export.
//! - [`rules::AMBIENT_RNG`] — all randomness flows from the seeded
//!   streams in `pwnd-sim`.
//! - [`rules::ENV_IO`] — pure crates touch no environment, filesystem,
//!   process, or socket APIs.
//! - [`rules::PANIC_HAZARD`] — the resilient monitor parse/retry paths
//!   stay panic-free.
//!
//! False positives are suppressed *in the source*, with a reason:
//!
//! ```text
//! let v = per[&key]; // lint:allow(panic-hazard): key inserted 3 lines up
//! ```
//!
//! Suppressions are themselves linted: an unknown rule id or a missing
//! reason is a `bad-allow` finding, and a directive that suppresses
//! nothing is `unused-allow`, so stale allows cannot accumulate.
//!
//! There is no `syn` here (the build environment is offline), so the
//! pass runs on a hand-rolled token stream ([`lexer`]) with file-local
//! heuristics ([`source`], [`engine`]). The design bias is to
//! over-approximate: a rare false positive costs one explicit, reasoned
//! `lint:allow`; a false negative costs a nondeterministic run that may
//! go unnoticed for months.

pub mod engine;
pub mod findings;
pub mod lexer;
pub mod rules;
pub mod source;

pub use engine::lint_files;
pub use findings::{Finding, LintReport};
pub use rules::{RuleMeta, ALL_RULES};

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "node_modules"];

/// Subtrees excluded from the workspace scan: the linter's own fixture
/// corpus is *made of* seeded violations.
const SKIP_PREFIXES: &[&str] = &["crates/lint/tests"];

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collect every `.rs` file under `root` as `(workspace-relative path,
/// contents)`, in sorted path order so the report is stable across
/// hosts and filesystems. Vendored crates, build output, and the lint
/// fixture corpus are excluded.
pub fn scan_root(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            let rel = rel_path(root, &path);
            if path.is_dir() {
                if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                    continue;
                }
                if SKIP_PREFIXES
                    .iter()
                    .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let text = std::fs::read_to_string(&path)?;
                files.push((rel, text));
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Scan and lint the whole workspace rooted at `root`, optionally
/// restricted to the rule ids in `only`.
pub fn lint_workspace(root: &Path, only: Option<&BTreeSet<String>>) -> io::Result<LintReport> {
    let files = scan_root(root)?;
    Ok(engine::lint_files(&files, only))
}

/// `root`-relative path with forward slashes (the form rule scoping and
/// reports use on every platform).
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_workspace_root_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn scan_skips_vendor_and_fixtures() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let files = scan_root(&root).expect("scan");
        assert!(!files.is_empty());
        assert!(files.iter().all(|(p, _)| !p.starts_with("vendor/")));
        assert!(files.iter().all(|(p, _)| !p.starts_with("target/")));
        assert!(files
            .iter()
            .all(|(p, _)| !p.starts_with("crates/lint/tests")));
        assert!(files.iter().any(|(p, _)| p == "crates/sim/src/rng.rs"));
        // Sorted, so reports are byte-stable across hosts.
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
