//! `pwnd-lint`: workspace determinism and invariant linter.
//!
//! The simulation's core contract is that a run is a pure function of
//! `(seed, config)`. That property is easy to break silently: one
//! `Instant::now()` in a scoring path, one `HashMap` iteration feeding a
//! report, one `thread_rng()` in a constructor, and runs stop being
//! reproducible without any test failing. This crate is a small,
//! dependency-free static-analysis pass that walks every source file in
//! the workspace and enforces the named invariants from DESIGN.md:
//!
//! - [`rules::WALL_CLOCK`] — no host-time reads in deterministic crates.
//! - [`rules::HASH_ORDER`] — no unordered-container iteration on paths
//!   that reach serialization, display, or telemetry export.
//! - [`rules::AMBIENT_RNG`] — all randomness flows from the seeded
//!   streams in `pwnd-sim`.
//! - [`rules::ENV_IO`] — pure crates touch no environment, filesystem,
//!   process, or socket APIs.
//! - [`rules::PANIC_HAZARD`] — the resilient monitor parse/retry paths
//!   stay panic-free.
//!
//! False positives are suppressed *in the source*, with a reason:
//!
//! ```text
//! let v = per[&key]; // lint:allow(panic-hazard): key inserted 3 lines up
//! ```
//!
//! Suppressions are themselves linted: an unknown rule id or a missing
//! reason is a `bad-allow` finding, and a directive that suppresses
//! nothing is `unused-allow`, so stale allows cannot accumulate.
//!
//! There is no `syn` here (the build environment is offline), so the
//! pass runs on a hand-rolled token stream ([`lexer`]) with file-local
//! heuristics ([`source`], [`engine`]). The design bias is to
//! over-approximate: a rare false positive costs one explicit, reasoned
//! `lint:allow`; a false negative costs a nondeterministic run that may
//! go unnoticed for months.

pub mod cache;
pub mod engine;
pub mod findings;
pub mod lexer;
pub mod manifest;
pub mod model;
pub mod rules;
pub mod source;
pub mod workspace_rules;

pub use engine::{analyze_file, lint_files, lint_files_with, lint_models, WorkspaceCtx};
pub use findings::{Finding, LintReport};
pub use rules::{RuleMeta, ALL_RULES};

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "node_modules"];

/// Subtrees excluded from the workspace scan: the linter's own fixture
/// corpus is *made of* seeded violations.
const SKIP_PREFIXES: &[&str] = &["crates/lint/tests"];

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collect every `.rs` file under `root` as `(workspace-relative path,
/// contents)`, in sorted path order so the report is stable across
/// hosts and filesystems. Vendored crates, build output, and the lint
/// fixture corpus are excluded.
pub fn scan_root(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            let rel = rel_path(root, &path);
            if path.is_dir() {
                if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                    continue;
                }
                if SKIP_PREFIXES
                    .iter()
                    .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let text = std::fs::read_to_string(&path)?;
                files.push((rel, text));
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Reject unknown rule ids before doing any work: a filter that names a
/// rule the engine does not have would otherwise pass vacuously — the
/// exact silent-green failure a CI gate must not allow.
fn validate_rule_filter(only: Option<&BTreeSet<String>>) -> io::Result<()> {
    if let Some(rules) = only {
        for id in rules {
            if !rules::is_known_rule(id) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("unknown rule `{id}` (known: {})", known_rule_ids()),
                ));
            }
        }
    }
    Ok(())
}

/// Comma-separated known rule ids, for error messages.
pub fn known_rule_ids() -> String {
    rules::ALL_RULES
        .iter()
        .map(|r| r.id)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Load the pass-2 workspace context: `LAYERING.toml` and every
/// `Cargo.toml`'s dependency declarations. A missing or unparseable
/// manifest is not an error — it becomes a `layering` finding, so
/// deleting the manifest fails the gate instead of disabling it.
pub fn load_ctx(root: &Path) -> io::Result<WorkspaceCtx> {
    let mut ctx = WorkspaceCtx::default();
    let manifest_path = root.join("LAYERING.toml");
    match std::fs::read_to_string(&manifest_path) {
        Ok(text) => match manifest::LayeringManifest::parse(&text) {
            Ok(m) => ctx.manifest = Some(m),
            Err(e) => ctx.extra.push(Finding {
                path: "LAYERING.toml".to_string(),
                line: 1,
                rule: rules::LAYERING.to_string(),
                message: format!("LAYERING.toml is unparseable ({e}); the layering gate is down"),
            }),
        },
        Err(_) => ctx.extra.push(Finding {
            path: "LAYERING.toml".to_string(),
            line: 1,
            rule: rules::LAYERING.to_string(),
            message: "LAYERING.toml not found at the workspace root — the architecture \
                      manifest is mandatory"
                .to_string(),
        }),
    }
    // Root package + every crates/* package.
    if let Ok(text) = std::fs::read_to_string(root.join("Cargo.toml")) {
        ctx.cargo
            .push(manifest::parse_cargo_deps("bin", "Cargo.toml", &text));
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let Some(name) = dir.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let manifest_file = dir.join("Cargo.toml");
            if let Ok(text) = std::fs::read_to_string(&manifest_file) {
                ctx.cargo.push(manifest::parse_cargo_deps(
                    name,
                    &format!("crates/{name}/Cargo.toml"),
                    &text,
                ));
            }
        }
    }
    Ok(ctx)
}

/// Scan and lint the whole workspace rooted at `root`, optionally
/// restricted to the rule ids in `only`. Unknown ids in `only` are an
/// `InvalidInput` error, never a silent pass.
pub fn lint_workspace(root: &Path, only: Option<&BTreeSet<String>>) -> io::Result<LintReport> {
    validate_rule_filter(only)?;
    let files = scan_root(root)?;
    let ctx = load_ctx(root)?;
    Ok(engine::lint_files_with(&files, &ctx, only))
}

/// Warm-run statistics from [`lint_workspace_cached`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Files whose pass-1 model was replayed from the cache.
    pub reused: usize,
    /// Files analyzed cold (changed, new, or cache miss).
    pub analyzed: usize,
}

/// [`lint_workspace`] with an incremental cache at `cache_path`: pass-1
/// models of unchanged files (by content SHA-256) are replayed, changed
/// files are re-analyzed, and the refreshed cache is written back. The
/// report is byte-identical to a cold run — the stats never appear in
/// it.
pub fn lint_workspace_cached(
    root: &Path,
    only: Option<&BTreeSet<String>>,
    cache_path: &Path,
) -> io::Result<(LintReport, CacheStats)> {
    validate_rule_filter(only)?;
    let files = scan_root(root)?;
    let ctx = load_ctx(root)?;
    let old = cache::Cache::load(cache_path);
    let mut stats = CacheStats::default();
    let mut entries: Vec<(String, model::FileModel)> = Vec::with_capacity(files.len());
    for (path, content) in &files {
        let sha = cache::file_key(content);
        let m = match old.lookup(path, &sha) {
            Some(m) => {
                stats.reused += 1;
                m.clone()
            }
            None => {
                stats.analyzed += 1;
                engine::analyze_file(path, content)
            }
        };
        entries.push((sha, m));
    }
    cache::Cache::save(cache_path, &entries)?;
    let models: Vec<model::FileModel> = entries.into_iter().map(|(_, m)| m).collect();
    Ok((engine::lint_models(&models, &ctx, only), stats))
}

/// `root`-relative path with forward slashes (the form rule scoping and
/// reports use on every platform).
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_workspace_root_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn scan_skips_vendor_and_fixtures() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let files = scan_root(&root).expect("scan");
        assert!(!files.is_empty());
        assert!(files.iter().all(|(p, _)| !p.starts_with("vendor/")));
        assert!(files.iter().all(|(p, _)| !p.starts_with("target/")));
        assert!(files
            .iter()
            .all(|(p, _)| !p.starts_with("crates/lint/tests")));
        assert!(files.iter().any(|(p, _)| p == "crates/sim/src/rng.rs"));
        // Sorted, so reports are byte-stable across hosts.
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
