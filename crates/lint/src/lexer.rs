//! A minimal Rust lexer: enough token structure for invariant linting.
//!
//! The build environment has no crates.io access, so there is no `syn`;
//! instead this scanner produces a flat token stream with line numbers,
//! skipping string/char literals (so `"Instant::now"` inside a string is
//! not a finding) and collecting comments separately (so `lint:allow`
//! directives can be parsed out of them). Consecutive identifiers joined
//! by `::` are merged into a single path token (`std::time::Instant`),
//! which is what the rules match against.

/// What a token is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier, keyword, or `::`-joined path (`HashMap::new`).
    Ident(String),
    /// A single punctuation character (`.`:`(`:`[`: …). `::` between
    /// identifiers is folded into [`TokenKind::Ident`] paths; a `::`
    /// that is *not* followed by an identifier (turbofish) is emitted as
    /// two `:` puncts.
    Punct(char),
    /// A char, byte, or numeric literal (content dropped).
    Lit,
    /// A string literal (regular, raw, or byte), with its uninterpreted
    /// body. Rules never match identifiers against this, but the
    /// workspace string registry (record tags, metric names) reads it.
    Str(String),
}

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line.
    pub line: u32,
    /// Token payload.
    pub kind: TokenKind,
}

impl Token {
    /// The identifier/path text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// The body of a string literal, if this token is one.
    pub fn str_lit(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One comment (line or block), attributed to its starting line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line of the `//` or `/*`.
    pub line: u32,
    /// Comment text without the delimiters.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Whether a path token contains `seg` as one of its `::` segments.
pub fn has_segment(path: &str, seg: &str) -> bool {
    path.split("::").any(|s| s == seg)
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comments. Never fails: unexpected bytes are
/// emitted as punctuation and the scan continues, which is the right
/// behavior for a linter (it must not die on the one file it most needs
/// to read).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: b[start..j].iter().collect(),
                });
                i = j;
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1u32;
                let mut j = start;
                while j < b.len() && depth > 0 {
                    if b[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == '/' && b.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && b.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: start_line,
                    text: b[start..end].iter().collect(),
                });
                i = j;
            }
            '"' => {
                let start_line = line;
                let start = i + 1;
                i = skip_string(&b, i, &mut line);
                out.tokens.push(Token {
                    line: start_line,
                    kind: TokenKind::Str(string_body(&b, start, i)),
                });
            }
            'r' | 'b' if raw_string_start(&b, i).is_some() => {
                let start_line = line;
                let (body_start, hashes) = raw_string_start(&b, i).unwrap_or((i + 1, 0));
                i = skip_raw_string(&b, body_start, hashes, &mut line);
                let end = i.saturating_sub(1 + hashes).max(body_start);
                out.tokens.push(Token {
                    line: start_line,
                    kind: TokenKind::Str(b[body_start..end.min(b.len())].iter().collect()),
                });
            }
            'b' if b.get(i + 1) == Some(&'"') => {
                let start_line = line;
                let start = i + 2;
                i = skip_string(&b, i + 1, &mut line);
                out.tokens.push(Token {
                    line: start_line,
                    kind: TokenKind::Str(string_body(&b, start, i)),
                });
            }
            'b' if b.get(i + 1) == Some(&'\'') => {
                i = skip_char(&b, i + 1);
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Lit,
                });
            }
            '\'' => {
                // Char literal or lifetime. `'\x'`, `'a'` are chars;
                // `'static`, `'a` (no closing quote) are lifetimes.
                if b.get(i + 1) == Some(&'\\')
                    || (b.get(i + 1).is_some_and(|&c| c != '\'') && b.get(i + 2) == Some(&'\''))
                {
                    i = skip_char(&b, i);
                    out.tokens.push(Token {
                        line,
                        kind: TokenKind::Lit,
                    });
                } else {
                    // Lifetime: skip the quote and the identifier.
                    i += 1;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                let word: String = b[start..i].iter().collect();
                // Merge `prev :: word` into one path token.
                let merged = match out.tokens.len().checked_sub(2) {
                    Some(k)
                        if out.tokens[k].is_punct(':')
                            && out.tokens[k + 1].is_punct(':')
                            && k > 0
                            && matches!(out.tokens[k - 1].kind, TokenKind::Ident(_)) =>
                    {
                        Some(k - 1)
                    }
                    _ => None,
                };
                if let Some(k) = merged {
                    let prev = match &out.tokens[k].kind {
                        TokenKind::Ident(s) => s.clone(),
                        _ => unreachable!(),
                    };
                    out.tokens.truncate(k);
                    out.tokens.push(Token {
                        line,
                        kind: TokenKind::Ident(format!("{prev}::{word}")),
                    });
                } else {
                    out.tokens.push(Token {
                        line,
                        kind: TokenKind::Ident(word),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                i += 1;
                while i < b.len()
                    && (is_ident_continue(b[i])
                        || (b[i] == '.' && b.get(i + 1).is_some_and(|c| c.is_ascii_digit())))
                {
                    i += 1;
                }
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Lit,
                });
            }
            other => {
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Punct(other),
                });
                i += 1;
            }
        }
    }
    out
}

/// `r"…"`, `r#"…"#`, `br#"…"#` detection. Returns (index of opening
/// quote + 1, number of hashes) when `i` starts a raw string.
fn raw_string_start(b: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b.get(j) == Some(&'b') {
        j += 1;
    }
    if b.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (b.get(j) == Some(&'"')).then_some((j + 1, hashes))
}

fn skip_raw_string(b: &[char], mut i: usize, hashes: usize, line: &mut u32) -> usize {
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
        } else if b[i] == '"' && (0..hashes).all(|k| b.get(i + 1 + k) == Some(&'#')) {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

/// The body of a plain string literal given the index past its opening
/// quote and the index past its closing quote. Escapes are kept verbatim
/// (`\n` stays two chars): the registry matches identifier-like tag and
/// metric names, which never contain escapes.
fn string_body(b: &[char], start: usize, past_close: usize) -> String {
    let end = past_close.saturating_sub(1).max(start);
    b[start..end.min(b.len())].iter().collect()
}

/// Skip a `"…"` string starting at the opening quote; returns the index
/// past the closing quote.
fn skip_string(b: &[char], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skip a `'…'` char literal starting at the opening quote.
fn skip_char(b: &[char], start: usize) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(String::from))
            .collect()
    }

    #[test]
    fn merges_paths() {
        assert_eq!(
            idents("use std::time::Instant; Instant::now()"),
            vec!["use", "std::time::Instant", "Instant::now"]
        );
    }

    #[test]
    fn strings_and_chars_are_opaque() {
        let toks = lex(r#"let x = "Instant::now"; let c = 'a'; let l: &'static str = y;"#);
        assert!(toks
            .tokens
            .iter()
            .all(|t| t.ident() != Some("Instant::now")));
        // Lifetimes vanish; char literals are Lit.
        assert!(toks.tokens.iter().any(|t| t.kind == TokenKind::Lit));
        // The string body is preserved for the registry, as a Str token
        // that no identifier rule can match.
        assert!(toks
            .tokens
            .iter()
            .any(|t| t.str_lit() == Some("Instant::now")));
    }

    #[test]
    fn string_bodies_are_captured() {
        let l = lex(r##"w.line("access"); let raw = r#"tag"#; let by = b"gap";"##);
        let strs: Vec<&str> = l.tokens.iter().filter_map(Token::str_lit).collect();
        assert_eq!(strs, vec!["access", "tag", "gap"]);
        // A multi-line string is attributed to its starting line.
        let l = lex("let s = \"a\nb\";\nnext");
        assert_eq!(
            l.tokens.iter().find_map(|t| t.str_lit().map(|_| t.line)),
            Some(1)
        );
        assert_eq!(
            l.tokens.iter().filter_map(Token::str_lit).next(),
            Some("a\nb")
        );
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let l = lex("let a = 1; // trailing note\n// own line\nlet b = 2;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[0].text.trim(), "trailing note");
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn raw_strings_skipped() {
        let l = lex("let re = r#\"thread_rng \"quoted\" inner\"#; next");
        assert_eq!(
            l.tokens.iter().filter_map(|t| t.ident()).next_back(),
            Some("next")
        );
    }

    #[test]
    fn turbofish_keeps_colons() {
        let l = lex("v.collect::<HashMap<_, _>>()");
        let ids = idents("v.collect::<HashMap<_, _>>()");
        assert_eq!(ids, vec!["v", "collect", "HashMap", "_", "_"]);
        assert!(l.tokens.iter().any(|t| t.is_punct(':')));
    }

    #[test]
    fn has_segment_splits_paths() {
        assert!(has_segment("std::time::Instant", "Instant"));
        assert!(!has_segment("InstantLike", "Instant"));
    }
}
