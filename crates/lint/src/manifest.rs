//! Workspace metadata for pass 2: the `LAYERING.toml` architecture
//! manifest and per-crate `Cargo.toml` dependency declarations.
//!
//! `LAYERING.toml` is the machine-readable source of truth for the
//! dependency DAG described in ARCHITECTURE.md. The parser below reads
//! the small TOML subset that file uses — `[section]` headers, `key =
//! "string"`, and `key = [ "a", "b" ]` arrays that may span lines — and
//! nothing more. Keeping the grammar this narrow is deliberate: the
//! manifest stays trivially diffable, and a syntax the parser rejects is
//! a `layering` finding rather than a silent pass.

use std::collections::{BTreeMap, BTreeSet};

/// The parsed `LAYERING.toml`: the allowed dependency edges per crate
/// and the modules approved to hold locks/atomics/threads.
#[derive(Clone, Debug, Default)]
pub struct LayeringManifest {
    /// `[deps]`: crate short name → allowed first-party dep short names.
    pub deps: BTreeMap<String, BTreeSet<String>>,
    /// `[locks] allow`: workspace-relative file paths or bare crate
    /// short names exempt from `lock-discipline`.
    pub lock_allow: Vec<String>,
}

impl LayeringManifest {
    /// Parse the TOML subset used by `LAYERING.toml`.
    pub fn parse(text: &str) -> Result<LayeringManifest, String> {
        let mut m = LayeringManifest::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((n, raw)) = lines.next() {
            let line = strip_comment(raw);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", n + 1));
            };
            let key = key.trim().to_string();
            let mut value = value.trim().to_string();
            // A `[` array may span lines: accumulate until brackets close.
            if value.starts_with('[') {
                while count(&value, '[') > count(&value, ']') {
                    let Some((_, next)) = lines.next() else {
                        return Err(format!("line {}: unterminated array for `{key}`", n + 1));
                    };
                    value.push(' ');
                    value.push_str(strip_comment(next).trim());
                }
            }
            match section.as_str() {
                "deps" => {
                    let items = parse_string_array(&value)
                        .ok_or_else(|| format!("line {}: `{key}` must be a string array", n + 1))?;
                    m.deps.insert(key, items.into_iter().collect());
                }
                "locks" if key == "allow" => {
                    m.lock_allow = parse_string_array(&value)
                        .ok_or_else(|| format!("line {}: `allow` must be a string array", n + 1))?;
                }
                // `schema = "…"` and any future top-level keys are
                // tolerated so the format can grow without breaking old
                // linters.
                _ => {}
            }
        }
        if m.deps.is_empty() {
            return Err("no [deps] section — the manifest must list every crate".to_string());
        }
        Ok(m)
    }

    /// The allowed first-party deps for `krate`, or `None` if the crate
    /// is absent from the manifest (itself a finding).
    pub fn allowed_deps(&self, krate: &str) -> Option<&BTreeSet<String>> {
        self.deps.get(krate)
    }

    /// Whether the `[locks]` allow list approves this file: either its
    /// exact workspace-relative path or its whole crate is listed.
    pub fn allows_lock(&self, krate: &str, path: &str) -> bool {
        self.lock_allow.iter().any(|e| e == path || e == krate)
    }
}

/// Strip a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn count(s: &str, c: char) -> usize {
    s.chars().filter(|&x| x == c).count()
}

/// Parse `[ "a", "b", ]` (trailing comma tolerated) into its items.
fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let inner = value.strip_prefix('[')?.strip_suffix(']')?;
    let mut items = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let s = part.strip_prefix('"')?.strip_suffix('"')?;
        items.push(s.to_string());
    }
    Some(items)
}

/// One crate's first-party dependency declarations, read from its
/// `Cargo.toml`.
#[derive(Clone, Debug)]
pub struct CrateDeps {
    /// Crate short name (`monitor`), or `"bin"` for the root package.
    pub krate: String,
    /// Workspace-relative path of the Cargo.toml, for findings.
    pub manifest_path: String,
    /// `(dep short name, 1-based line)` for every `pwnd-*` entry in the
    /// exact `[dependencies]` section. `[dev-dependencies]` is test
    /// context and `[workspace.dependencies]` is the version registry;
    /// neither creates an architecture edge.
    pub deps: Vec<(String, u32)>,
}

/// Extract `pwnd-*` dependencies from one Cargo.toml.
pub fn parse_cargo_deps(krate: &str, manifest_path: &str, text: &str) -> CrateDeps {
    let mut deps = Vec::new();
    let mut in_deps = false;
    for (n, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            in_deps = name.trim() == "dependencies";
            continue;
        }
        if !in_deps {
            continue;
        }
        // `pwnd-xxx.workspace = true` or `pwnd-xxx = { … }`.
        let Some(key) = line.split(['=', '.', ' ']).next() else {
            continue;
        };
        if let Some(short) = key.trim().strip_prefix("pwnd-") {
            deps.push((short.to_string(), n as u32 + 1));
        }
    }
    CrateDeps {
        krate: krate.to_string(),
        manifest_path: manifest_path.to_string(),
        deps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_manifest_subset() {
        let text = "\
# comment\n\
schema = \"pwnd-layering/1\"\n\
[deps]\n\
telemetry = []\n\
sim = [\"telemetry\"]  # trailing comment\n\
core = [\n    \"sim\", \"telemetry\",\n]\n\
[locks]\n\
allow = [\"crates/core/src/runner.rs\", \"telemetry\"]\n";
        let m = LayeringManifest::parse(text).expect("parse");
        assert_eq!(m.deps.len(), 3);
        assert!(m.allowed_deps("sim").unwrap().contains("telemetry"));
        assert!(m.allowed_deps("core").unwrap().contains("sim"));
        assert!(m.allowed_deps("telemetry").unwrap().is_empty());
        assert!(m.allows_lock("core", "crates/core/src/runner.rs"));
        assert!(m.allows_lock("telemetry", "crates/telemetry/src/sink.rs"));
        assert!(!m.allows_lock("core", "crates/core/src/fleet.rs"));
    }

    #[test]
    fn rejects_garbage_with_line_numbers() {
        assert!(LayeringManifest::parse("[deps]\nnot a kv pair\n")
            .unwrap_err()
            .contains("line 2"));
        assert!(LayeringManifest::parse("schema = \"x\"\n")
            .unwrap_err()
            .contains("[deps]"));
    }

    #[test]
    fn cargo_deps_read_only_the_real_dependencies_section() {
        let toml = "\
[workspace.dependencies]\n\
pwnd-sim = { path = \"crates/sim\" }\n\
[package]\n\
name = \"pwnd\"\n\
[dependencies]\n\
pwnd-sim.workspace = true\n\
pwnd-core = { path = \"crates/core\" }\n\
serde = \"1\"\n\
[dev-dependencies]\n\
pwnd-bench.workspace = true\n";
        let d = parse_cargo_deps("bin", "Cargo.toml", toml);
        let names: Vec<&str> = d.deps.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["sim", "core"]);
        assert_eq!(d.deps[0].1, 6);
    }
}
