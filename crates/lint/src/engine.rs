//! The lint engine: pass 1 distills each source into a [`FileModel`]
//! (running the per-file rules on the way), pass 2 runs the workspace
//! rules over the models, then `lint:allow` suppressions are resolved.
//!
//! Pass 1 is deliberately independent of the `--rule` filter and of any
//! workspace context: its output is a pure function of `(path,
//! content)`, which is what makes [`crate::cache`] sound. Filtering by
//! rule id happens in [`lint_models`], on findings the models already
//! carry.

use crate::findings::{Finding, LintReport};
use crate::lexer::{has_segment, Token, TokenKind};
use crate::model::{self, FileModel};
use crate::rules;
use crate::source::SourceFile;
pub use crate::workspace_rules::WorkspaceCtx;
use std::collections::BTreeSet;

/// Iterator-producing methods on hash containers: calling one of these
/// starts an order-dependent stream.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Chain terminals whose result does not depend on iteration order.
const ORDER_INSENSITIVE: &[&str] = &[
    "count",
    "sum",
    "product",
    "min",
    "max",
    "min_by_key",
    "max_by_key",
    "any",
    "all",
    "len",
    "is_empty",
];

/// Collect targets that neutralize iteration order: re-keyed maps/sets
/// (content equality is order-free) and explicitly ordered containers.
const ORDER_SAFE_COLLECT: &[&str] = &["BTreeMap", "BTreeSet", "HashMap", "HashSet"];

/// Keywords that cannot be the base of an indexing expression.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "in", "let", "mut", "return", "if", "else", "match", "loop", "while", "for", "move", "ref",
    "dyn", "impl", "where", "break", "continue", "as", "use", "pub", "unsafe", "async", "await",
    "static", "const", "type", "enum", "struct", "trait", "mod", "crate", "fn", "box",
];

/// Pass 1 for one file: lex, analyze, run the per-file rules, and
/// distill the result into a cacheable [`FileModel`]. Pure in `(path,
/// content)` — no rule filter, no workspace context.
pub fn analyze_file(path: &str, content: &str) -> FileModel {
    let sf = SourceFile::new(path, content);
    let mut raw: Vec<Finding> = Vec::new();
    check_token_bans(&sf, rules::WALL_CLOCK, wall_clock_ban, &mut raw);
    check_token_bans(&sf, rules::AMBIENT_RNG, ambient_rng_ban, &mut raw);
    check_token_bans(&sf, rules::ENV_IO, env_io_ban, &mut raw);
    check_panic_hazard(&sf, &mut raw);
    check_hash_order(&sf, &mut raw);
    raw.sort();
    raw.dedup();
    model::build(&sf, raw)
}

/// Pass 2 + resolution: run the workspace rules over the models, filter
/// by `only`, resolve `lint:allow` suppressions, and report. When
/// `only` is set, the `unused-allow` meta rule is skipped because an
/// allow for a filtered-out rule legitimately suppresses nothing in
/// that run.
pub fn lint_models(
    models: &[FileModel],
    ctx: &WorkspaceCtx,
    only: Option<&BTreeSet<String>>,
) -> LintReport {
    let enabled = |rule: &str| match only {
        Some(s) => s.contains(rule),
        None => true,
    };
    let mut raw: Vec<Finding> = Vec::new();
    for m in models {
        raw.extend(
            m.local_findings
                .iter()
                .filter(|f| enabled(&f.rule))
                .cloned(),
        );
        if enabled(rules::BAD_ALLOW) {
            for b in &m.bad_allows {
                raw.push(Finding {
                    path: m.path.clone(),
                    line: b.line,
                    rule: rules::BAD_ALLOW.to_string(),
                    message: b.why.clone(),
                });
            }
            for a in &m.allows {
                if !rules::is_known_rule(&a.rule) {
                    raw.push(Finding {
                        path: m.path.clone(),
                        line: a.line,
                        rule: rules::BAD_ALLOW.to_string(),
                        message: format!("lint:allow names unknown rule `{}`", a.rule),
                    });
                }
            }
        }
    }
    raw.extend(
        crate::workspace_rules::run(models, ctx)
            .into_iter()
            .filter(|f| enabled(&f.rule)),
    );

    // Resolve suppressions.
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    let mut used: BTreeSet<(String, u32, String)> = BTreeSet::new();
    for f in raw {
        let m = models.iter().find(|m| m.path == f.path);
        let allow = m.and_then(|m| {
            m.allows
                .iter()
                .find(|a| a.applies_to == f.line && a.rule == f.rule)
        });
        match allow {
            // Meta findings cannot be allowed away.
            Some(a) if f.rule != rules::BAD_ALLOW && f.rule != rules::UNUSED_ALLOW => {
                used.insert((f.path.clone(), a.line, a.rule.clone()));
                suppressed.push(f);
            }
            _ => findings.push(f),
        }
    }
    if only.is_none() {
        for m in models {
            for a in &m.allows {
                if rules::is_known_rule(&a.rule)
                    && !used.contains(&(m.path.clone(), a.line, a.rule.clone()))
                {
                    findings.push(Finding {
                        path: m.path.clone(),
                        line: a.line,
                        rule: rules::UNUSED_ALLOW.to_string(),
                        message: format!(
                            "lint:allow({}) suppresses nothing — remove it or fix the directive",
                            a.rule
                        ),
                    });
                }
            }
        }
    }
    findings.sort();
    findings.dedup();
    LintReport {
        findings,
        suppressed,
        files_scanned: models.len(),
    }
}

/// Lint a set of `(workspace-relative path, content)` sources with no
/// workspace context (no layering manifest, no Cargo metadata): the
/// per-file rules plus the context-free workspace rules.
pub fn lint_files(files: &[(String, String)], only: Option<&BTreeSet<String>>) -> LintReport {
    lint_files_with(files, &WorkspaceCtx::default(), only)
}

/// [`lint_files`] with an explicit workspace context (used by
/// `lint_workspace` and the fixture self-tests).
pub fn lint_files_with(
    files: &[(String, String)],
    ctx: &WorkspaceCtx,
    only: Option<&BTreeSet<String>>,
) -> LintReport {
    let models: Vec<FileModel> = files
        .iter()
        .map(|(path, content)| analyze_file(path, content))
        .collect();
    lint_models(&models, ctx, only)
}

/// Run a per-identifier ban rule over every non-test token in scope.
fn check_token_bans(
    sf: &SourceFile,
    rule: &'static str,
    ban: fn(&str) -> Option<String>,
    out: &mut Vec<Finding>,
) {
    if !rules::applies(rule, &sf.krate, &sf.path) {
        return;
    }
    for (i, t) in sf.tokens.iter().enumerate() {
        if sf.is_test_token(i) {
            continue;
        }
        let Some(id) = t.ident() else { continue };
        if let Some(message) = ban(id) {
            out.push(Finding {
                path: sf.path.clone(),
                line: t.line,
                rule: rule.to_string(),
                message,
            });
        }
    }
}

fn wall_clock_ban(id: &str) -> Option<String> {
    let hit = if has_segment(id, "Instant") {
        "std::time::Instant"
    } else if has_segment(id, "SystemTime") {
        "std::time::SystemTime"
    } else if id.ends_with("thread::sleep") {
        "std::thread::sleep"
    } else if has_segment(id, "chrono") || has_segment(id, "OffsetDateTime") {
        "a wall-clock date/time API"
    } else {
        return None;
    };
    Some(format!(
        "`{id}` reads the host clock ({hit}); deterministic crates must derive \
         all time from SimTime so a run is a pure function of (seed, config)"
    ))
}

fn ambient_rng_ban(id: &str) -> Option<String> {
    let banned = [
        "thread_rng",
        "from_entropy",
        "OsRng",
        "getrandom",
        "RandomState",
    ];
    if banned.iter().any(|b| has_segment(id, b)) || id.ends_with("rand::random") {
        Some(format!(
            "`{id}` draws ambient randomness; all randomness must flow from the \
             seeded xoshiro streams (pwnd_sim::Rng::seed_from / fork)"
        ))
    } else {
        None
    }
}

fn env_io_ban(id: &str) -> Option<String> {
    let prefixes = [
        "std::env",
        "std::fs",
        "std::process",
        "std::io::stdin",
        "std::io::stdout",
        "std::io::stderr",
        "env::",
        "fs::",
    ];
    let segments = ["TcpStream", "TcpListener", "UdpSocket", "OpenOptions"];
    if prefixes.iter().any(|p| id.starts_with(p)) || segments.iter().any(|s| has_segment(id, s)) {
        Some(format!(
            "`{id}` touches the environment/filesystem/network; pure crates compute, \
             the pwnd binary performs IO"
        ))
    } else {
        None
    }
}

/// `unwrap`/`expect`/panic-macros/indexing in the resilient monitor files.
fn check_panic_hazard(sf: &SourceFile, out: &mut Vec<Finding>) {
    if !rules::applies(rules::PANIC_HAZARD, &sf.krate, &sf.path) {
        return;
    }
    let toks = &sf.tokens;
    for i in 0..toks.len() {
        if sf.is_test_token(i) {
            continue;
        }
        let mut push = |line: u32, message: String| {
            out.push(Finding {
                path: sf.path.clone(),
                line,
                rule: rules::PANIC_HAZARD.to_string(),
                message,
            });
        };
        match &toks[i].kind {
            // `.unwrap()` / `.expect(`
            TokenKind::Ident(s)
                if (s == "unwrap" || s == "expect")
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) =>
            {
                push(
                    toks[i].line,
                    format!(
                        "`.{s}()` can panic; the resilient monitor paths must degrade \
                         gracefully (return an error, skip the record, or open a gap)"
                    ),
                );
            }
            // `panic!` family.
            TokenKind::Ident(s)
                if ["panic", "unreachable", "todo", "unimplemented"].contains(&s.as_str())
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) =>
            {
                push(
                    toks[i].line,
                    format!("`{s}!` aborts the monitoring pipeline; recover instead"),
                );
            }
            // Indexing `base[…]` — the base must be a value expression.
            TokenKind::Punct('[') if i > 0 => {
                let base_ok = match &toks[i - 1].kind {
                    TokenKind::Ident(s) => !NON_INDEX_KEYWORDS.contains(&s.as_str()),
                    TokenKind::Punct(')' | ']') => true,
                    _ => false,
                };
                if base_ok {
                    push(
                        toks[i].line,
                        "indexing can panic on a missing key or short slice; use \
                         `.get()` and handle the miss"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Statement-ish segmentation of a function body: split at `;` and at
/// block-closing `}` when the bracket depth returns to zero. A `for`
/// loop therefore forms one segment containing its header and body.
fn segments(toks: &[Token], body: (usize, usize)) -> Vec<(usize, usize)> {
    let (open, close) = body;
    let mut segs = Vec::new();
    let mut start = open + 1;
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().take(close).skip(open + 1) {
        match t.kind {
            TokenKind::Punct('(' | '[' | '{') => depth += 1,
            TokenKind::Punct(')' | ']') => depth -= 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth <= 0 {
                    segs.push((start, k));
                    start = k + 1;
                    depth = 0;
                }
            }
            TokenKind::Punct(';') if depth <= 0 => {
                segs.push((start, k));
                start = k + 1;
            }
            _ => {}
        }
    }
    if start < close {
        segs.push((start, close - 1));
    }
    segs.retain(|&(s, e)| s <= e);
    segs
}

/// The `let`-bound name of a segment, if it is a `let` statement.
fn let_binding(toks: &[Token], seg: (usize, usize)) -> Option<String> {
    let mut k = seg.0;
    if toks.get(k).and_then(Token::ident) != Some("let") {
        return None;
    }
    k += 1;
    if toks.get(k).and_then(Token::ident) == Some("mut") {
        k += 1;
    }
    toks.get(k).and_then(Token::ident).map(String::from)
}

/// Whether the segment's `let` ascription names an ordered container.
fn let_type_is_ordered(toks: &[Token], seg: (usize, usize)) -> bool {
    let Some(_) = let_binding(toks, seg) else {
        return false;
    };
    for k in seg.0..=seg.1.min(seg.0 + 12) {
        if !toks[k].is_punct(':') {
            continue;
        }
        // Type window until `=`.
        for t in toks[k + 1..=seg.1].iter() {
            match &t.kind {
                TokenKind::Punct('=') => return false,
                TokenKind::Ident(s) if has_segment(s, "BTreeMap") || has_segment(s, "BTreeSet") => {
                    return true
                }
                _ => {}
            }
        }
    }
    false
}

/// Whether tokens after `pos` within the segment make the iteration
/// order-safe: an order-insensitive terminal, or a collect into an
/// order-safe container (turbofish).
fn chain_is_safe(toks: &[Token], pos: usize, seg_end: usize) -> bool {
    for k in pos..=seg_end {
        if let Some(id) = toks[k].ident() {
            let last = id.rsplit("::").next().unwrap_or(id);
            if ORDER_INSENSITIVE.contains(&last) {
                return true;
            }
            if last == "collect" || id.ends_with("::collect") {
                // `collect::<Target<…>>` — look for the turbofish target.
                for t in toks[k + 1..=seg_end.min(k + 8)].iter() {
                    if let TokenKind::Ident(s) = &t.kind {
                        return ORDER_SAFE_COLLECT.iter().any(|c| has_segment(s, c));
                    }
                    if matches!(t.kind, TokenKind::Punct('(')) {
                        return false; // plain `.collect()` — target unknown
                    }
                }
            }
        }
    }
    false
}

/// Whether one of the next `n` segments sorts the binding `name`.
fn sorted_soon(
    toks: &[Token],
    segs: &[(usize, usize)],
    after: usize,
    name: &str,
    n: usize,
) -> bool {
    for &(s, e) in segs.iter().skip(after + 1).take(n) {
        for k in s..e {
            if toks[k].ident() == Some(name)
                && toks.get(k + 1).is_some_and(|t| t.is_punct('.'))
                && toks
                    .get(k + 2)
                    .and_then(Token::ident)
                    .is_some_and(|m| m.starts_with("sort"))
            {
                return true;
            }
        }
    }
    false
}

/// Hash-order hazard: iteration of a known hash container inside a
/// function that is `pub` or reaches a serialization/display/telemetry
/// sink, unless the chain is order-insensitive, collected into an
/// order-safe container, or sorted within the next two statements.
fn check_hash_order(sf: &SourceFile, out: &mut Vec<Finding>) {
    if !rules::applies(rules::HASH_ORDER, &sf.krate, &sf.path) {
        return;
    }
    for f in &sf.fns {
        if f.is_test || sf.is_test_token(f.body.0) {
            continue;
        }
        if !(f.is_pub || f.reaches_sink) {
            continue;
        }
        let segs = segments(&sf.tokens, f.body);
        for (si, &(s, e)) in segs.iter().enumerate() {
            for hit in iteration_sites(sf, s, e) {
                let safe = match hit.kind {
                    IterKind::Chain => {
                        chain_is_safe(&sf.tokens, hit.pos + 1, e)
                            || let_type_is_ordered(&sf.tokens, (s, e))
                            || let_binding(&sf.tokens, (s, e))
                                .is_some_and(|b| sorted_soon(&sf.tokens, &segs, si, &b, 2))
                    }
                    // A `for` loop body consumes elements in hash order.
                    IterKind::ForLoop => false,
                };
                if !safe {
                    out.push(Finding {
                        path: sf.path.clone(),
                        line: sf.tokens[hit.pos].line,
                        rule: rules::HASH_ORDER.to_string(),
                        message: format!(
                            "iteration over hash container `{}` in `{}` ({}) is \
                             observation-order-dependent; sort the items, use a BTree \
                             container, or collect into an order-safe target",
                            hit.name,
                            f.name,
                            if f.reaches_sink {
                                "reaches serialized/rendered output"
                            } else {
                                "pub — callers may serialize the result"
                            }
                        ),
                    });
                }
            }
        }
    }
}

enum IterKind {
    /// `name.iter()`-style chain.
    Chain,
    /// `for … in [&]name {` loop.
    ForLoop,
}

struct IterSite {
    pos: usize,
    name: String,
    kind: IterKind,
}

/// Find hash-container iteration sites within a segment.
fn iteration_sites(sf: &SourceFile, s: usize, e: usize) -> Vec<IterSite> {
    let toks = &sf.tokens;
    let mut sites = Vec::new();
    let is_for = toks.get(s).and_then(Token::ident) == Some("for");
    let in_pos = if is_for {
        (s..=e).find(|&k| toks[k].ident() == Some("in"))
    } else {
        None
    };
    let header_end = if is_for {
        (s..=e).find(|&k| toks[k].is_punct('{')).unwrap_or(e)
    } else {
        e
    };
    for k in s..=e {
        let Some(name) = toks[k].ident() else {
            continue;
        };
        let projected = k > 0 && toks[k - 1].is_punct('.');
        if !sf.is_hash_base(name, projected) {
            continue;
        }
        // `name.iter()` / `self.name.keys()` …
        if toks.get(k + 1).is_some_and(|t| t.is_punct('.')) {
            if let Some(m) = toks.get(k + 2).and_then(Token::ident) {
                if ITER_METHODS.contains(&m) && toks.get(k + 3).is_some_and(|t| t.is_punct('(')) {
                    // An iterator chain in a `for` header feeds the loop
                    // body element by element — that is loop consumption,
                    // not a chain with a terminal.
                    let kind = if is_for && k < header_end {
                        IterKind::ForLoop
                    } else {
                        IterKind::Chain
                    };
                    sites.push(IterSite {
                        pos: k,
                        name: name.to_string(),
                        kind,
                    });
                    continue;
                }
            }
        }
        // `for pat in &name {` — the hash name is the loop's iterated
        // expression (directly, or behind `&`/`&mut`/`self.`).
        if let Some(ip) = in_pos {
            if k > ip && k < header_end && toks.get(k + 1).is_some_and(|t| t.is_punct('{')) {
                sites.push(IterSite {
                    pos: k,
                    name: name.to_string(),
                    kind: IterKind::ForLoop,
                });
            }
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, src: &str) -> LintReport {
        lint_files(&[(path.to_string(), src.to_string())], None)
    }

    fn rules_of(r: &LintReport) -> Vec<&str> {
        r.findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn segments_split_statements_and_blocks() {
        let sf = SourceFile::new(
            "crates/x/src/lib.rs",
            "fn f() { let a = 1; for x in v { g(x); } let b = 2; }",
        );
        let f = &sf.fns[0];
        let segs = segments(&sf.tokens, f.body);
        assert_eq!(segs.len(), 3, "{segs:?}");
    }

    #[test]
    fn sink_gating_spares_private_pure_fns() {
        let src = "fn quiet(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                   m.values().copied().collect()\n}";
        let r = lint_one("crates/webmail/src/x.rs", src);
        assert!(rules_of(&r).is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn pub_fn_unsorted_hash_iteration_is_flagged() {
        let src = "pub fn leak(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                   m.values().copied().collect()\n}";
        let r = lint_one("crates/webmail/src/x.rs", src);
        assert_eq!(rules_of(&r), vec!["hash-order"]);
    }

    #[test]
    fn collect_then_sort_is_safe() {
        let src = "pub fn ordered(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                   let mut v: Vec<u32> = m.values().copied().collect();\n\
                   v.sort_unstable();\n v\n}";
        let r = lint_one("crates/webmail/src/x.rs", src);
        assert!(rules_of(&r).is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn order_insensitive_terminals_are_safe() {
        let src = "pub fn total(m: &HashMap<u32, u32>) -> u64 {\n\
                   m.values().map(|&v| v as u64).sum()\n}\n\
                   pub fn n(m: &HashSet<u32>) -> usize { m.iter().count() }";
        let r = lint_one("crates/webmail/src/x.rs", src);
        assert!(rules_of(&r).is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn span_instrumentation_is_clean_but_a_literal_clock_read_is_not() {
        // The span API keeps every clock read (including SpanGuard's
        // drop-timing) inside the exempt telemetry crate, so a fully
        // instrumented deterministic fn must produce no findings...
        let instrumented = "pub fn event_loop(sink: &TelemetrySink) {\n\
                            let span = sink.span(\"event-loop\");\n\
                            let _child = span.child(\"event\", &[(\"kind\", \"visit\")]);\n\
                            let _sub = sink.subspan(\"retry\", &[]);\n\
                            span.sim(42);\n}";
        let r = lint_one("crates/sim/src/x.rs", instrumented);
        assert!(rules_of(&r).is_empty(), "{:?}", r.findings);

        // ...while reading the clock directly at the call site is still
        // a wall-clock finding in the same crate.
        let literal = "pub fn event_loop() { let t = Instant::now(); drop(t); }";
        let r = lint_one("crates/sim/src/x.rs", literal);
        assert_eq!(rules_of(&r), vec!["wall-clock"]);
    }

    #[test]
    fn for_loop_over_hash_in_sink_fn_is_flagged() {
        let src = "fn render(m: &HashMap<u32, u32>) -> String {\n\
                   let mut out = String::new();\n\
                   for (k, v) in m { out.push_str(&format!(\"{k}{v}\")); }\n\
                   out\n}";
        let r = lint_one("crates/webmail/src/x.rs", src);
        assert_eq!(rules_of(&r), vec!["hash-order"]);
    }
}
