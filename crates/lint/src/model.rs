//! Pass 1 of the workspace engine: distill each [`SourceFile`] into a
//! compact, serializable [`FileModel`].
//!
//! The two-pass design exists for two reasons. First, the workspace
//! rules (`layering`, `alloc-hot`, `schema-drift`, `lock-discipline`)
//! need *cross-file* facts — who imports whom, which functions call
//! which, where record tags are defined versus used — that no single
//! token stream holds. Second, the incremental cache: a `FileModel`
//! carries everything pass 2 needs and nothing else (no tokens), so an
//! unchanged file's model can be replayed from the cache without
//! re-lexing, and the pass-2 verdict over the replayed models is
//! byte-identical to a cold run.
//!
//! Everything here is an over-approximation by design: a call edge that
//! does not really exist only makes `alloc-hot` stricter, and a missed
//! edge costs one explicit `lint:hot-root` closer to the allocation.

use crate::findings::Finding;
use crate::lexer::{Token, TokenKind};
use crate::source::{AllowDirective, BadAllow, Role, SourceFile};
use std::collections::BTreeSet;

/// One `const NAME: &str = "value";` inside the item marked
/// `lint:jsonl-tags` — a canonical record-kind tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TagDef {
    /// The const's identifier (`ACCESS`).
    pub name: String,
    /// The tag string (`access`).
    pub value: String,
    /// 1-based line of the const.
    pub line: u32,
}

/// The distilled view of one function.
#[derive(Clone, Debug, Default)]
pub struct FnModel {
    /// Function name (bare, no path).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Test code (skipped by every workspace rule).
    pub is_test: bool,
    /// Marked `lint:hot-root`: an `alloc-hot` reachability anchor.
    pub hot_root: bool,
    /// Marked `lint:jsonl-emit`.
    pub jsonl_emit: bool,
    /// Marked `lint:jsonl-consume`.
    pub jsonl_consume: bool,
    /// Bare names this body calls (stoplist-filtered, lowercase-initial
    /// only), each with whether the call site sits inside a loop — the
    /// cross-file call-graph edges, resolved in pass 2.
    pub calls: BTreeSet<(String, bool)>,
    /// `(line, what, in_loop)` candidate allocation sites in the body.
    /// `alloc-hot` only fires when the allocation repeats: the site is
    /// in a loop, or the fn was reached through an in-loop call edge.
    pub alloc_sites: Vec<(u32, String, bool)>,
    /// ALL_CAPS path tails referenced in the body (`tags::ACCESS` →
    /// `ACCESS`) — how emit/consume sites prove they use the tag table.
    pub tag_refs: BTreeSet<String>,
    /// `(value, line)` string literals in the body, for the inline-tag
    /// half of `schema-drift`.
    pub str_lits: Vec<(String, u32)>,
}

/// The distilled view of one source file: everything pass 2 reads.
#[derive(Clone, Debug, Default)]
pub struct FileModel {
    /// Workspace-relative path.
    pub path: String,
    /// Owning crate short name (`monitor`, `bin`, `tests`…).
    pub krate: String,
    /// First-party crates referenced from non-test code: `(short name,
    /// line of first reference)`.
    pub imports: Vec<(String, u32)>,
    /// First-party crates referenced from *anywhere*, including test
    /// code — the evidence that keeps a declared dep from being
    /// reported unused.
    pub all_refs: BTreeSet<String>,
    /// Functions, in source order.
    pub fns: Vec<FnModel>,
    /// Record tags defined by a `lint:jsonl-tags` item in this file.
    pub tag_defs: Vec<TagDef>,
    /// `(metric name, line)` telemetry emit sites with a literal name.
    pub metric_emits: Vec<(String, u32)>,
    /// `(metric name, line)` telemetry lookup sites with a literal name.
    pub metric_consumes: Vec<(String, u32)>,
    /// `(line, what)` lock/atomic/thread sites in non-test code.
    pub lock_sites: Vec<(u32, String)>,
    /// Raw pass-1 findings (per-file rules), before suppression.
    pub local_findings: Vec<Finding>,
    /// Valid `lint:allow` directives.
    pub allows: Vec<AllowDirective>,
    /// Malformed `lint:allow` directives.
    pub bad_allows: Vec<BadAllow>,
}

/// Telemetry sink methods that *emit* a metric; the literal first
/// argument is the metric name.
const METRIC_EMIT_METHODS: &[&str] = &[
    "count",
    "count_by",
    "count_labeled",
    "count_labeled_by",
    "gauge_set",
    "gauge_max",
    "observe",
    "observe_labeled",
];

/// Snapshot methods that *consume* a metric by name.
const METRIC_CONSUME_METHODS: &[&str] = &["counter", "gauge"];

/// Types/fns whose presence means the file holds locks, atomics, or
/// threads. Matched as `::`-path segments.
const LOCK_SEGMENTS: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI64",
    "AtomicIsize",
    "mpsc",
    "available_parallelism",
];

/// Call-graph stoplist: method names so ubiquitous that a bare-name
/// match would connect everything to everything. Edges through these
/// are dropped; a hot path through one of them needs its own
/// `lint:hot-root` on the callee.
const CALL_STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "fmt",
    "from",
    "into",
    "try_from",
    "try_into",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "and_then",
    "or_else",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "collect",
    "extend",
    "contains",
    "contains_key",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "binary_search",
    "binary_search_by",
    "min",
    "max",
    "min_by_key",
    "max_by_key",
    "sum",
    "count",
    "any",
    "all",
    "find",
    "position",
    "fold",
    "for_each",
    "rev",
    "take",
    "skip",
    "zip",
    "chain",
    "enumerate",
    "last",
    "first",
    "split",
    "join",
    "trim",
    "starts_with",
    "ends_with",
    "replace",
    "parse",
    "to_string",
    "to_owned",
    "to_vec",
    "as_str",
    "as_ref",
    "as_bytes",
    "as_slice",
    "entry",
    "or_insert",
    "or_insert_with",
    "keys",
    "values",
    "drain",
    "retain",
    "clear",
    "write",
    "writeln",
    "write_all",
    "flush",
    "push_str",
    "with_capacity",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "wrapping_add",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "checked_div",
    "cmp",
    "partial_cmp",
    "eq",
    "ne",
    "hash",
    "drop",
    "clamp",
    "abs",
    "floor",
    "ceil",
    "round",
    "sqrt",
    "ln",
    "exp",
    "powi",
    "powf",
    "pow",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "copied",
    "cloned",
    "windows",
    "chunks",
    "swap",
    "get_or_insert_with",
    "then",
    "then_some",
    "min_by",
    "max_by",
    "dedup",
    "truncate",
    "resize",
    "partition_point",
    "lock",
    "read",
    "read_to_string",
    "lines",
    "chars",
    "bytes",
    "splitn",
    "split_once",
    "strip_prefix",
    "strip_suffix",
    "to_ascii_lowercase",
    "to_lowercase",
    "to_uppercase",
    "finish",
    "finalize",
    "update",
];

/// Allocation shapes `alloc-hot` flags in hot-reachable code: the
/// remedies (reused buffers, `with_capacity` hoisted out of the loop,
/// borrowing) are deliberately *not* in this list.
const ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "to_vec", "clone"];
const ALLOC_CTORS: &[(&str, &str)] = &[
    ("String", "new"),
    ("String", "from"),
    ("Vec", "new"),
    ("VecDeque", "new"),
    ("HashMap", "new"),
    ("HashSet", "new"),
    ("BTreeMap", "new"),
    ("BTreeSet", "new"),
    ("Box", "new"),
];

/// Distill a lexed+analyzed file into its model. `local_findings` are
/// the pass-1 per-file findings, stored so a cached model replays them.
pub fn build(sf: &SourceFile, local_findings: Vec<Finding>) -> FileModel {
    let mut m = FileModel {
        path: sf.path.clone(),
        krate: sf.krate.clone(),
        local_findings,
        allows: sf.allows.clone(),
        bad_allows: sf.bad_allows.clone(),
        ..FileModel::default()
    };
    collect_imports(sf, &mut m);
    collect_metrics(sf, &mut m);
    collect_locks(sf, &mut m);
    collect_fns(sf, &mut m);
    collect_tag_defs(sf, &mut m);
    m
}

/// First-party crate references: any `pwnd_*` path head.
fn collect_imports(sf: &SourceFile, m: &mut FileModel) {
    let mut seen = BTreeSet::new();
    for (i, t) in sf.tokens.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        let head = id.split("::").next().unwrap_or(id);
        let Some(short) = head.strip_prefix("pwnd_") else {
            continue;
        };
        m.all_refs.insert(short.to_string());
        if !sf.is_test_token(i) && seen.insert(short.to_string()) {
            m.imports.push((short.to_string(), t.line));
        }
    }
}

/// Telemetry metric emit/consume sites with literal names.
fn collect_metrics(sf: &SourceFile, m: &mut FileModel) {
    let toks = &sf.tokens;
    for i in 0..toks.len() {
        if sf.is_test_token(i) {
            continue;
        }
        let Some(id) = toks[i].ident() else { continue };
        let last = id.rsplit("::").next().unwrap_or(id);
        let is_method = i > 0 && toks[i - 1].is_punct('.');
        if !is_method || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let Some(name) = toks.get(i + 2).and_then(Token::str_lit) else {
            continue;
        };
        if METRIC_EMIT_METHODS.contains(&last) {
            m.metric_emits.push((name.to_string(), toks[i].line));
        } else if METRIC_CONSUME_METHODS.contains(&last) {
            m.metric_consumes.push((name.to_string(), toks[i].line));
        }
    }
}

/// Lock/atomic/thread sites in non-test code.
fn collect_locks(sf: &SourceFile, m: &mut FileModel) {
    let mut seen = BTreeSet::new();
    for (i, t) in sf.tokens.iter().enumerate() {
        if sf.is_test_token(i) {
            continue;
        }
        let Some(id) = t.ident() else { continue };
        let hit = if id.ends_with("thread::spawn") || id.ends_with("thread::scope") {
            Some(id.rsplit("::").next().unwrap_or(id))
        } else {
            id.split("::").find(|s| LOCK_SEGMENTS.contains(s))
        };
        if let Some(what) = hit {
            if seen.insert((t.line, what.to_string())) {
                m.lock_sites.push((t.line, what.to_string()));
            }
        }
    }
}

/// Whether a bare callee name survives the call-graph filter.
fn is_call_candidate(last: &str) -> bool {
    !CALL_STOPLIST.contains(&last)
        && last
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
}

/// Per-fn distillation: roles, calls, allocation sites, tag references,
/// string literals.
fn collect_fns(sf: &SourceFile, m: &mut FileModel) {
    // A role directive marks the first fn at or just below its
    // `applies_to` line (a small gap tolerates attributes between the
    // directive and the `fn`).
    let role_for = |fn_line: u32, role: Role| {
        sf.roles.iter().any(|r| {
            r.role == role
                && r.applies_to <= fn_line
                && fn_line.saturating_sub(r.applies_to) <= 3
                && !sf
                    .fns
                    .iter()
                    .any(|o| o.line >= r.applies_to && o.line < fn_line)
        })
    };
    for f in &sf.fns {
        let mut fm = FnModel {
            name: f.name.clone(),
            line: f.line,
            is_test: f.is_test || sf.is_test_token(f.body.0),
            hot_root: role_for(f.line, Role::HotRoot),
            jsonl_emit: role_for(f.line, Role::JsonlEmit),
            jsonl_consume: role_for(f.line, Role::JsonlConsume),
            ..FnModel::default()
        };
        let toks = &sf.tokens;
        // Loop-region tracking: a brace stack where each frame remembers
        // whether its `{` was opened by `for`/`while`/`loop`. An
        // allocation only *repeats* when some enclosing frame is a loop.
        let mut frames: Vec<bool> = Vec::new();
        let mut pending_loop = false;
        for k in f.body.0 + 1..f.body.1 {
            match &toks[k].kind {
                TokenKind::Punct('{') => {
                    frames.push(pending_loop);
                    pending_loop = false;
                }
                TokenKind::Punct('}') => {
                    frames.pop();
                }
                _ => {}
            }
            let in_loop = frames.iter().any(|&l| l);
            match &toks[k].kind {
                TokenKind::Str(s) => fm.str_lits.push((s.clone(), toks[k].line)),
                TokenKind::Ident(id) => {
                    if matches!(id.as_str(), "for" | "while" | "loop") {
                        pending_loop = true;
                    }
                    let last = id.rsplit("::").next().unwrap_or(id);
                    let is_method = k > 0 && toks[k - 1].is_punct('.');
                    let after_fn_kw = k > 0 && toks[k - 1].ident() == Some("fn");
                    let called = toks.get(k + 1).is_some_and(|t| t.is_punct('('));
                    let is_macro = toks.get(k + 1).is_some_and(|t| t.is_punct('!'));
                    // ALL_CAPS path tails (tag-table references).
                    if last.len() > 1
                        && last
                            .chars()
                            .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
                    {
                        fm.tag_refs.insert(last.to_string());
                    }
                    // Allocation sites.
                    if is_macro && (last == "format" || last == "vec") {
                        fm.alloc_sites
                            .push((toks[k].line, format!("{last}!"), in_loop));
                    } else if is_method && called && ALLOC_METHODS.contains(&last) {
                        fm.alloc_sites
                            .push((toks[k].line, format!(".{last}()"), in_loop));
                    } else if called {
                        let mut segs = id.rsplit("::");
                        let (tail, head) = (segs.next().unwrap_or(id), segs.next());
                        if let Some(head) = head {
                            if ALLOC_CTORS.iter().any(|&(t, f)| t == head && f == tail) {
                                fm.alloc_sites.push((
                                    toks[k].line,
                                    format!("{head}::{tail}()"),
                                    in_loop,
                                ));
                            }
                        }
                    }
                    // Call-graph edges.
                    if called && !is_macro && !after_fn_kw && is_call_candidate(last) {
                        fm.calls.insert((last.to_string(), in_loop));
                    }
                }
                _ => {}
            }
        }
        m.fns.push(fm);
    }
}

/// Extract `const NAME: &str = "value";` defs from the item marked
/// `lint:jsonl-tags` (a `mod` block or a single const).
fn collect_tag_defs(sf: &SourceFile, m: &mut FileModel) {
    let toks = &sf.tokens;
    for r in &sf.roles {
        if r.role != Role::JsonlTags {
            continue;
        }
        let Some(start) = toks.iter().position(|t| t.line >= r.applies_to) else {
            continue;
        };
        // Item extent: matching brace of the first `{`, or the first `;`.
        let mut depth = 0i32;
        let mut end = toks.len();
        for (k, t) in toks.iter().enumerate().skip(start) {
            match t.kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth <= 0 {
                        end = k;
                        break;
                    }
                }
                TokenKind::Punct(';') if depth == 0 => {
                    end = k;
                    break;
                }
                _ => {}
            }
        }
        for k in start..end {
            if toks[k].ident() != Some("const") {
                continue;
            }
            let Some(name) = toks.get(k + 1).and_then(Token::ident) else {
                continue;
            };
            // `const NAME: &str = "value"` — find the string before the
            // terminating `;`.
            for t in toks.iter().skip(k + 2).take(8) {
                if t.is_punct(';') {
                    break;
                }
                if let Some(v) = t.str_lit() {
                    m.tag_defs.push(TagDef {
                        name: name.to_string(),
                        value: v.to_string(),
                        line: toks[k].line,
                    });
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(path: &str, src: &str) -> FileModel {
        build(&SourceFile::new(path, src), Vec::new())
    }

    #[test]
    fn imports_and_all_refs_split_by_test_context() {
        let src = "use pwnd_sim::Rng;\n\
                   #[cfg(test)]\nmod tests { use pwnd_corpus::words; }\n";
        let m = model_of("crates/net/src/lib.rs", src);
        assert_eq!(m.imports, vec![("sim".to_string(), 1)]);
        assert!(m.all_refs.contains("sim") && m.all_refs.contains("corpus"));
    }

    #[test]
    fn fn_roles_calls_and_alloc_sites() {
        let src = "\
// lint:hot-root
pub fn hot(&self) -> String {
    let s = self.name.to_string();
    helper(s);
    format!(\"{s}\")
}
fn helper(x: String) { drop(x); }
";
        let m = model_of("crates/webmail/src/x.rs", src);
        let hot = &m.fns[0];
        assert!(hot.hot_root);
        assert!(hot.calls.contains(&("helper".to_string(), false)));
        assert_eq!(hot.alloc_sites.len(), 2, "{:?}", hot.alloc_sites);
        assert!(!m.fns[1].hot_root);
    }

    #[test]
    fn stoplist_drops_ubiquitous_names() {
        let src = "fn f(v: Vec<u32>) { v.len(); v.sort(); scrape_once(); }";
        let m = model_of("crates/monitor/src/x.rs", src);
        assert_eq!(
            m.fns[0].calls.iter().collect::<Vec<_>>(),
            vec![&("scrape_once".to_string(), false)]
        );
    }

    #[test]
    fn loop_regions_mark_repeating_sites() {
        let src = "\
fn f(xs: &[u32]) -> String {
    let once = String::new();
    for x in xs {
        let each = x.to_string();
        step(each);
    }
    finishing_touch();
    once
}
";
        let m = model_of("crates/webmail/src/x.rs", src);
        let f = &m.fns[0];
        assert_eq!(
            f.alloc_sites,
            vec![
                (2, "String::new()".to_string(), false),
                (4, ".to_string()".to_string(), true),
            ]
        );
        assert!(f.calls.contains(&("step".to_string(), true)));
        assert!(f.calls.contains(&("finishing_touch".to_string(), false)));
    }

    #[test]
    fn tag_defs_and_refs_are_extracted() {
        let src = "\
// lint:jsonl-tags
pub mod tags {
    /// doc
    pub const ACCESS: &str = \"access\";
    pub const GAP: &str = \"gap\";
}
// lint:jsonl-emit
fn emit() { line(tags::ACCESS); }
";
        let m = model_of("crates/monitor/src/x.rs", src);
        assert_eq!(m.tag_defs.len(), 2);
        assert_eq!(m.tag_defs[0].name, "ACCESS");
        assert_eq!(m.tag_defs[0].value, "access");
        let emit = m.fns.iter().find(|f| f.name == "emit").unwrap();
        assert!(emit.jsonl_emit);
        assert!(emit.tag_refs.contains("ACCESS"));
    }

    #[test]
    fn metrics_and_locks_are_collected() {
        let src = "\
fn f(sink: &Sink, snap: &Snap) {
    sink.count(\"fleet.accounts\");
    sink.gauge_set(\"fleet.rss\", 1);
    let n = snap.counter(\"fleet.accounts\");
    let m = std::sync::Mutex::new(n);
    drop(m);
}
";
        let m = model_of("src/store.rs", src);
        assert_eq!(m.metric_emits.len(), 2);
        assert_eq!(m.metric_consumes, vec![("fleet.accounts".to_string(), 4)]);
        assert_eq!(m.lock_sites, vec![(5, "Mutex".to_string())]);
    }
}
