//! The `pwnd-lint` binary: lint the workspace, print findings, gate CI.
//!
//! ```text
//! cargo run -p pwnd-lint --            # report findings, exit 0
//! cargo run -p pwnd-lint -- --deny     # exit 1 if any finding (CI gate)
//! cargo run -p pwnd-lint -- --json     # machine-readable report
//! cargo run -p pwnd-lint -- --rule hash-order --rule wall-clock
//! cargo run -p pwnd-lint -- --list-rules
//! ```

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
pwnd-lint: workspace determinism & invariant linter

USAGE:
    pwnd-lint [OPTIONS]

OPTIONS:
    --deny            exit 1 when any finding survives suppression (CI gate)
    --json            emit the report as JSON
    --root DIR        lint the workspace rooted at DIR (default: discovered
                      from the current directory)
    --rule ID         check only this rule (repeatable)
    --cache PATH      incremental cache file: pass-1 models of files whose
                      SHA-256 is unchanged are replayed instead of
                      re-analyzed; the report stays byte-identical to a
                      cold run (reuse stats go to stderr)
    --list-rules      print every rule id and its contract, then exit
    -h, --help        show this help

Suppress a finding at its site, with a mandatory reason:
    // lint:allow(rule-id): why this is safe
A trailing comment applies to its own line; a comment on its own line
applies to the next line. Unknown rules and missing reasons are
`bad-allow` findings; directives that suppress nothing are
`unused-allow`.
";

struct Args {
    deny: bool,
    json: bool,
    root: Option<PathBuf>,
    rules: BTreeSet<String>,
    cache: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        json: false,
        root: None,
        rules: BTreeSet::new(),
        cache: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => args.deny = true,
            "--json" => args.json = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                let d = it.next().ok_or("--root needs a directory")?;
                args.root = Some(PathBuf::from(d));
            }
            "--cache" => {
                let p = it.next().ok_or("--cache needs a file path")?;
                args.cache = Some(PathBuf::from(p));
            }
            "--rule" => {
                let r = it.next().ok_or("--rule needs a rule id")?;
                if !pwnd_lint::rules::is_known_rule(&r) {
                    return Err(format!("unknown rule `{r}` (see --list-rules)"));
                }
                args.rules.insert(r);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pwnd-lint: {e}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for r in pwnd_lint::ALL_RULES {
            println!(
                "{:<13} {}",
                r.id,
                r.summary.split_whitespace().collect::<Vec<_>>().join(" ")
            );
        }
        return ExitCode::SUCCESS;
    }
    let root = match args.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| pwnd_lint::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("pwnd-lint: no workspace root found (pass --root DIR)");
            return ExitCode::from(2);
        }
    };
    let only = (!args.rules.is_empty()).then_some(&args.rules);
    let report = match &args.cache {
        Some(cache_path) => match pwnd_lint::lint_workspace_cached(&root, only, cache_path) {
            Ok((r, stats)) => {
                eprintln!(
                    "pwnd-lint: cache {}: {} reused, {} analyzed",
                    cache_path.display(),
                    stats.reused,
                    stats.analyzed
                );
                r
            }
            Err(e) => {
                eprintln!("pwnd-lint: scan failed under {}: {e}", root.display());
                return ExitCode::from(2);
            }
        },
        None => match pwnd_lint::lint_workspace(&root, only) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("pwnd-lint: scan failed under {}: {e}", root.display());
                return ExitCode::from(2);
            }
        },
    };
    if args.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render());
    }
    if args.deny && !report.findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
