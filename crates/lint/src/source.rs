//! Per-file analysis context built on top of the token stream: crate
//! attribution, `#[cfg(test)]` region tracking, function spans with
//! visibility and sink-reachability, hash-container name inference, and
//! `lint:allow` directive parsing.

use crate::lexer::{self, has_segment, Comment, Lexed, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// A parsed `// lint:allow(rule-id): reason` directive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowDirective {
    /// Line the directive's comment starts on.
    pub line: u32,
    /// Line the directive applies to: its own line if the comment trails
    /// code, otherwise the next line.
    pub applies_to: u32,
    /// The rule being suppressed.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
}

/// A malformed `lint:allow` (reported by the `bad-allow` meta rule).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BadAllow {
    /// Line of the broken directive.
    pub line: u32,
    /// What is wrong with it.
    pub why: String,
}

/// What a role directive marks an item as.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// `lint:hot-root` — this `fn` anchors `alloc-hot` reachability.
    HotRoot,
    /// `lint:jsonl-tags` — this item is the canonical record-tag table.
    JsonlTags,
    /// `lint:jsonl-emit` — this `fn` writes tagged JSONL records.
    JsonlEmit,
    /// `lint:jsonl-consume` — this `fn` reads tagged JSONL records.
    JsonlConsume,
}

impl Role {
    /// The directive spelling, as written in comments.
    pub fn name(self) -> &'static str {
        match self {
            Role::HotRoot => "hot-root",
            Role::JsonlTags => "jsonl-tags",
            Role::JsonlEmit => "jsonl-emit",
            Role::JsonlConsume => "jsonl-consume",
        }
    }
}

/// A parsed `// lint:<role>` directive. Placement follows `lint:allow`:
/// trailing a code line it marks that line's item; on its own line it
/// marks the next line that holds code (doc comments between the
/// directive and the item are skipped).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoleDirective {
    /// Line the directive's comment starts on.
    pub line: u32,
    /// First code line at or below the directive — the marked item.
    pub applies_to: u32,
    /// What the item is marked as.
    pub role: Role,
}

/// One `fn` item found in the file.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether it is `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// Whether it is test code (`#[test]` fn or inside `#[cfg(test)]`).
    pub is_test: bool,
    /// Token index range of the body, inclusive of both braces.
    pub body: (usize, usize),
    /// Whether the body directly contains a serialization/display/export
    /// marker (before call-closure propagation).
    pub direct_sink: bool,
    /// Whether this function reaches a sink, after propagating through
    /// same-file calls. Filled by [`SourceFile::new`].
    pub reaches_sink: bool,
    /// Whether the return type mentions `HashMap`/`HashSet`.
    pub returns_hash: bool,
    /// Names of same-file functions this body calls.
    pub calls: BTreeSet<String>,
}

/// One analyzed source file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path.
    pub path: String,
    /// Owning crate short name (`monitor`), `"bin"` for `src/`, or
    /// `"tests"` / `"examples"` for the root test and example trees.
    pub krate: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// All comments.
    pub comments: Vec<Comment>,
    /// Per-token flag: inside test code.
    pub in_test: Vec<bool>,
    /// Functions in the file.
    pub fns: Vec<FnInfo>,
    /// Identifiers known (or inferred) to hold `HashMap`/`HashSet`.
    pub hash_names: BTreeSet<String>,
    /// The subset of [`Self::hash_names`] whose only evidence is a
    /// `let` binding. A local cannot be reached through a projection, so
    /// `self.accounts.iter()` is not tainted by a `let accounts:
    /// HashSet` elsewhere in the file.
    pub hash_locals: BTreeSet<String>,
    /// Valid suppression directives.
    pub allows: Vec<AllowDirective>,
    /// Malformed suppression directives.
    pub bad_allows: Vec<BadAllow>,
    /// Role directives (`lint:hot-root`, `lint:jsonl-…`).
    pub roles: Vec<RoleDirective>,
}

/// Derive the short crate name from a workspace-relative path.
pub fn crate_of(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("unknown").to_string()
    } else if path.starts_with("tests/") {
        "tests".to_string()
    } else if path.starts_with("examples/") {
        "examples".to_string()
    } else if path.starts_with("src/") {
        "bin".to_string()
    } else {
        "unknown".to_string()
    }
}

/// Sink markers: an identifier (last path segment) that means "this
/// function renders, serializes, or exports data whose order an observer
/// can see". Deliberately over-approximate — marking too much only makes
/// the hash-order rule stricter.
const SINK_IDENTS: &[&str] = &[
    "format",
    "write",
    "writeln",
    "print",
    "println",
    "eprint",
    "eprintln",
    "push_str",
    "to_json",
    "to_json_value",
    "pretty",
    "render",
    "trace_with",
    "trace_jsonl",
    "serialize",
    "fmt",
];

/// Function-name fragments that make a function a sink by declaration.
const SINK_FN_NAME_FRAGMENTS: &[&str] = &["json", "render", "export", "report", "fmt", "table"];

impl SourceFile {
    /// Analyze one file.
    pub fn new(path: &str, src: &str) -> SourceFile {
        let Lexed { tokens, comments } = lexer::lex(src);
        let in_test = mark_test_regions(&tokens, path);
        let mut fns = find_fns(&tokens, &in_test);
        let (hash_names, hash_locals) = collect_hash_names(&tokens, &fns);
        propagate_sinks(&mut fns);
        let (allows, bad_allows) = parse_allows(&comments, &tokens);
        let roles = parse_roles(&comments, &tokens);
        SourceFile {
            path: path.to_string(),
            krate: crate_of(path),
            tokens,
            comments,
            in_test,
            fns,
            hash_names,
            hash_locals,
            allows,
            bad_allows,
            roles,
        }
    }

    /// Whether the token at `idx` is inside test code.
    pub fn is_test_token(&self, idx: usize) -> bool {
        self.in_test.get(idx).copied().unwrap_or(false)
    }

    /// Whether `name` is a hash-typed iteration base at a given site.
    /// `projected` means the base is reached through `.` (e.g.
    /// `self.name`), which a `let`-bound local can never be.
    pub fn is_hash_base(&self, name: &str, projected: bool) -> bool {
        self.hash_names.contains(name) && !(projected && self.hash_locals.contains(name))
    }
}

/// Mark which tokens are test code: whole-file for `tests/`, `examples/`
/// and bench crates, `#[cfg(test)] mod …` regions, `#[test]`-attributed
/// functions, and `proptest! { … }` macro blocks.
fn mark_test_regions(tokens: &[Token], path: &str) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    if path.starts_with("tests/")
        || path.starts_with("examples/")
        || path.starts_with("crates/bench/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
    {
        flags.iter_mut().for_each(|f| *f = true);
        return flags;
    }
    let mut i = 0usize;
    while i < tokens.len() {
        // An attribute `#[…]`; remember whether it mentions `test`.
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let (attr_end, mentions_test) = scan_attr(tokens, i + 1);
            if mentions_test {
                // Skip any further attributes, then mark the next item.
                let mut j = attr_end;
                while j < tokens.len()
                    && tokens[j].is_punct('#')
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    j = scan_attr(tokens, j + 1).0;
                }
                if let Some(body_end) = item_end(tokens, j) {
                    for f in flags.iter_mut().take(body_end + 1).skip(i) {
                        *f = true;
                    }
                    i = body_end + 1;
                    continue;
                }
            }
            i = attr_end;
            continue;
        }
        // `proptest! { … }` blocks are test code.
        if tokens[i].ident() == Some("proptest")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            if let Some(open) = (i..tokens.len()).find(|&k| tokens[k].is_punct('{')) {
                if let Some(close) = matching_brace(tokens, open) {
                    for f in flags.iter_mut().take(close + 1).skip(i) {
                        *f = true;
                    }
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    flags
}

/// Scan an attribute starting at its `[`; return (index past `]`,
/// whether it marks test-only code). `#[cfg(not(test))]` guards *live*
/// code, so a `not` anywhere in the attribute disqualifies it.
fn scan_attr(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut has_test = false;
    let mut has_not = false;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match &t.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (k + 1, has_test && !has_not);
                }
            }
            TokenKind::Ident(s) if s == "test" || s.ends_with("::test") => has_test = true,
            TokenKind::Ident(s) if s == "not" => has_not = true,
            _ => {}
        }
    }
    (tokens.len(), has_test && !has_not)
}

/// Find the end of the item starting at `i` (a `mod`/`fn`/`impl` header):
/// the matching `}` of its first `{`, or the terminating `;`.
fn item_end(tokens: &[Token], i: usize) -> Option<usize> {
    for k in i..tokens.len() {
        if tokens[k].is_punct('{') {
            return matching_brace(tokens, k);
        }
        if tokens[k].is_punct(';') {
            return Some(k);
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

fn find_fns(tokens: &[Token], in_test: &[bool]) -> Vec<FnInfo> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].ident() == Some("fn") {
            let Some(name) = tokens.get(i + 1).and_then(Token::ident) else {
                i += 1;
                continue;
            };
            // Visibility: a `pub` in the few tokens before `fn`, stopping
            // at the previous item boundary.
            let mut is_pub = false;
            for k in (i.saturating_sub(8)..i).rev() {
                match &tokens[k].kind {
                    TokenKind::Punct(';' | '{' | '}') => break,
                    TokenKind::Ident(s) if s == "pub" => {
                        is_pub = true;
                        break;
                    }
                    _ => {}
                }
            }
            // Return type between `->` and the body `{` (or `;`).
            let mut returns_hash = false;
            let mut body_open = None;
            let mut saw_arrow = false;
            for k in i + 2..tokens.len() {
                match &tokens[k].kind {
                    TokenKind::Punct('{') => {
                        body_open = Some(k);
                        break;
                    }
                    TokenKind::Punct(';') => break,
                    TokenKind::Punct('>') if tokens[k.saturating_sub(1)].is_punct('-') => {
                        saw_arrow = true;
                    }
                    TokenKind::Ident(s)
                        if saw_arrow
                            && (has_segment(s, "HashMap") || has_segment(s, "HashSet")) =>
                    {
                        returns_hash = true;
                    }
                    _ => {}
                }
            }
            let Some(open) = body_open else {
                i += 2;
                continue;
            };
            let Some(close) = matching_brace(tokens, open) else {
                i += 2;
                continue;
            };
            fns.push(FnInfo {
                name: name.to_string(),
                line: tokens[i].line,
                is_pub,
                is_test: in_test.get(i).copied().unwrap_or(false),
                body: (open, close),
                direct_sink: false,
                reaches_sink: false,
                returns_hash,
                calls: BTreeSet::new(),
            });
            i += 2; // keep scanning inside the body: nested fns are items too
        } else {
            i += 1;
        }
    }
    // Fill direct sinks and the call lists.
    let names: BTreeSet<String> = fns.iter().map(|f| f.name.clone()).collect();
    for f in &mut fns {
        if SINK_FN_NAME_FRAGMENTS.iter().any(|p| f.name.contains(p)) {
            f.direct_sink = true;
        }
        for k in f.body.0..=f.body.1 {
            if let Some(id) = tokens[k].ident() {
                let last = id.rsplit("::").next().unwrap_or(id);
                if SINK_IDENTS.contains(&last) {
                    f.direct_sink = true;
                }
                if names.contains(last)
                    && tokens.get(k + 1).is_some_and(|t| t.is_punct('('))
                    && last != f.name
                {
                    f.calls.insert(last.to_string());
                }
            }
        }
    }
    fns
}

/// Propagate sink-reachability through same-file calls to a fixpoint.
fn propagate_sinks(fns: &mut [FnInfo]) {
    let mut reach: BTreeMap<String, bool> = fns
        .iter()
        .map(|f| (f.name.clone(), f.direct_sink))
        .collect();
    loop {
        let mut changed = false;
        for f in fns.iter() {
            if reach.get(&f.name) == Some(&true) {
                continue;
            }
            if f.calls.iter().any(|c| reach.get(c) == Some(&true)) {
                reach.insert(f.name.clone(), true);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for f in fns.iter_mut() {
        f.reaches_sink = reach.get(&f.name).copied().unwrap_or(f.direct_sink);
    }
}

/// Infer identifiers that hold hash containers:
/// * `name: …HashMap<…>` anywhere (struct fields, fn params, let
///   ascriptions, struct-literal fields initialized from a constructor);
/// * `let [mut] name = …HashMap::new()/…collect::<HashMap…>` and
///   `let [mut] name = hash_returning_fn(…)`.
fn collect_hash_names(tokens: &[Token], fns: &[FnInfo]) -> (BTreeSet<String>, BTreeSet<String>) {
    let hash_fns: BTreeSet<&str> = fns
        .iter()
        .filter(|f| f.returns_hash)
        .map(|f| f.name.as_str())
        .collect();
    let mut decls = BTreeSet::new();
    let mut locals = BTreeSet::new();
    for i in 0..tokens.len() {
        // `name : Type` — require a plain identifier, a single `:` (not
        // `::`), and a type window mentioning a hash container.
        if let Some(name) = tokens[i].ident() {
            if name.contains("::") {
                continue;
            }
            let colon = tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && !tokens.get(i + 2).is_some_and(|t| t.is_punct(':'));
            if colon && type_window_has_hash(tokens, i + 2) {
                // `let [mut] name: Hash…` is a local; anything else
                // (struct field, fn param) is a declaration reachable
                // through projections like `self.name`.
                let before = |k: usize| {
                    i.checked_sub(k)
                        .and_then(|j| tokens.get(j))
                        .and_then(Token::ident)
                };
                let is_let = before(1) == Some("let")
                    || (before(1) == Some("mut") && before(2) == Some("let"));
                if is_let {
                    locals.insert(name.to_string());
                } else {
                    decls.insert(name.to_string());
                }
                continue;
            }
            // `let [mut] name = rhs ;`
            if tokens[i].ident() == Some("let") {
                let mut j = i + 1;
                if tokens.get(j).and_then(Token::ident) == Some("mut") {
                    j += 1;
                }
                let Some(bound) = tokens.get(j).and_then(Token::ident) else {
                    continue;
                };
                // Skip over a type ascription (possibly an alias hiding a
                // hash type) to the `=`, so the rhs still gets scanned.
                let mut eq = j + 1;
                if tokens.get(eq).is_some_and(|t| t.is_punct(':')) {
                    while eq < tokens.len().min(j + 40)
                        && !tokens[eq].is_punct('=')
                        && !tokens[eq].is_punct(';')
                    {
                        eq += 1;
                    }
                }
                if tokens.get(eq).is_some_and(|t| t.is_punct('=')) {
                    let j = eq; // rhs scan starts after the `=`
                    let mut depth = 0i32;
                    let window = tokens.len().min(j + 80);
                    for t in tokens.iter().take(window).skip(j + 1) {
                        match &t.kind {
                            TokenKind::Punct('(' | '[' | '{') => depth += 1,
                            TokenKind::Punct(')' | ']' | '}') => depth -= 1,
                            TokenKind::Punct(';') if depth <= 0 => break,
                            TokenKind::Ident(s)
                                if has_segment(s, "HashMap")
                                    || has_segment(s, "HashSet")
                                    || hash_fns.contains(s.as_str()) =>
                            {
                                locals.insert(bound.to_string());
                                break;
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
    }
    let names: BTreeSet<String> = decls.union(&locals).cloned().collect();
    let locals_only: BTreeSet<String> = locals.difference(&decls).cloned().collect();
    (names, locals_only)
}

/// Scan a type window after `name:` for `HashMap`/`HashSet`, stopping at
/// separators outside angle brackets.
fn type_window_has_hash(tokens: &[Token], start: usize) -> bool {
    let mut angle = 0i32;
    for t in tokens.iter().skip(start).take(30) {
        match &t.kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle -= 1,
            TokenKind::Punct(',' | ')') if angle <= 0 => return false,
            TokenKind::Punct(';' | '{' | '}' | '=') => return false,
            TokenKind::Ident(s) if has_segment(s, "HashMap") || has_segment(s, "HashSet") => {
                return true
            }
            _ => {}
        }
    }
    false
}

/// Parse `lint:allow(rule): reason` directives out of comments. A
/// directive on a line with code applies to that line; a directive on a
/// comment-only line applies to the next line.
fn parse_allows(comments: &[Comment], tokens: &[Token]) -> (Vec<AllowDirective>, Vec<BadAllow>) {
    let code_lines: BTreeSet<u32> = tokens.iter().map(|t| t.line).collect();
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // Directives live in regular `//` comments only. Doc comments
        // (`///` → text starting with `/`, `//!` → starting with `!`)
        // are prose and may *mention* the syntax without invoking it.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let Some(pos) = c.text.find("lint:allow") else {
            continue;
        };
        let rest = &c.text[pos + "lint:allow".len()..];
        let parsed = (|| {
            let rest = rest.strip_prefix('(')?;
            let close = rest.find(')')?;
            let rule = rest[..close].trim().to_string();
            let after = rest[close + 1..].trim_start();
            let reason = after.strip_prefix(':')?.trim().to_string();
            Some((rule, reason))
        })();
        match parsed {
            Some((rule, _)) if rule.is_empty() => bad.push(BadAllow {
                line: c.line,
                why: "empty rule id".to_string(),
            }),
            Some((rule, reason)) if reason.is_empty() => bad.push(BadAllow {
                line: c.line,
                why: format!("lint:allow({rule}) has no reason — every suppression must say why"),
            }),
            Some((rule, reason)) => {
                let applies_to = if code_lines.contains(&c.line) {
                    c.line
                } else {
                    c.line + 1
                };
                allows.push(AllowDirective {
                    line: c.line,
                    applies_to,
                    rule,
                    reason,
                });
            }
            None => bad.push(BadAllow {
                line: c.line,
                why: "expected `lint:allow(rule-id): reason`".to_string(),
            }),
        }
    }
    (allows, bad)
}

/// Parse role directives (`lint:hot-root`, `lint:jsonl-tags`,
/// `lint:jsonl-emit`, `lint:jsonl-consume`) out of regular comments. An
/// optional `: reason` tail is tolerated and ignored. The directive
/// marks the first line at or below it that holds code, so it can sit
/// above an item's doc comment or directly above the item.
fn parse_roles(comments: &[Comment], tokens: &[Token]) -> Vec<RoleDirective> {
    let code_lines: BTreeSet<u32> = tokens.iter().map(|t| t.line).collect();
    const ROLES: &[(&str, Role)] = &[
        ("lint:hot-root", Role::HotRoot),
        ("lint:jsonl-tags", Role::JsonlTags),
        ("lint:jsonl-emit", Role::JsonlEmit),
        ("lint:jsonl-consume", Role::JsonlConsume),
    ];
    let mut roles = Vec::new();
    for c in comments {
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue; // doc comments are prose
        }
        for &(spelling, role) in ROLES {
            let Some(pos) = c.text.find(spelling) else {
                continue;
            };
            // The directive must end the word there (`lint:hot-rooted`
            // is not a directive; `lint:hot-root: reason` is).
            let after = &c.text[pos + spelling.len()..];
            if after
                .chars()
                .next()
                .is_some_and(|ch| ch.is_ascii_alphanumeric() || ch == '-')
            {
                continue;
            }
            let applies_to = if code_lines.contains(&c.line) {
                c.line
            } else {
                code_lines
                    .range(c.line + 1..)
                    .next()
                    .copied()
                    .unwrap_or(c.line + 1)
            };
            roles.push(RoleDirective {
                line: c.line,
                applies_to,
                role,
            });
        }
    }
    roles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_attribution() {
        assert_eq!(crate_of("crates/monitor/src/scraper.rs"), "monitor");
        assert_eq!(crate_of("src/bin/pwnd.rs"), "bin");
        assert_eq!(crate_of("tests/determinism.rs"), "tests");
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn helper() {} }\n";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        let live = f.fns.iter().find(|f| f.name == "live").unwrap();
        let helper = f.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(!live.is_test);
        assert!(helper.is_test);
    }

    #[test]
    fn hash_names_from_field_param_and_let() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(set: &HashSet<u8>) { let mut local: HashMap<u8,u8> = HashMap::new();\n\
                   let built = HashSet::new(); let plain = 3; }";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        for n in ["m", "set", "local", "built"] {
            assert!(f.hash_names.contains(n), "missing {n}");
        }
        assert!(!f.hash_names.contains("plain"));
    }

    #[test]
    fn hash_returning_fn_taints_let() {
        let src = "fn counts() -> HashMap<String, u64> { HashMap::new() }\n\
                   fn g() { let ca = counts(); }";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert!(f.hash_names.contains("ca"));
    }

    #[test]
    fn sink_propagates_through_calls() {
        let src = "fn emit(s: &str) { println!(\"{s}\"); }\n\
                   fn outer() { emit(\"x\"); }\n\
                   fn pure_helper() -> u32 { 1 }";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert!(
            f.fns
                .iter()
                .find(|x| x.name == "emit")
                .unwrap()
                .reaches_sink
        );
        assert!(
            f.fns
                .iter()
                .find(|x| x.name == "outer")
                .unwrap()
                .reaches_sink
        );
        assert!(
            !f.fns
                .iter()
                .find(|x| x.name == "pure_helper")
                .unwrap()
                .reaches_sink
        );
    }

    #[test]
    fn role_directives_attach_past_doc_comments() {
        let src = "\
// lint:hot-root: the search hot loop
/// Doc prose that must not absorb the directive.
pub fn search() {}
pub fn emit() {} // lint:jsonl-emit
// lint:hot-rooted is not a directive
fn other() {}
";
        let f = SourceFile::new("crates/webmail/src/x.rs", src);
        assert_eq!(f.roles.len(), 2, "{:?}", f.roles);
        assert_eq!(f.roles[0].role, Role::HotRoot);
        // Skips the doc-comment line and lands on the fn itself.
        assert_eq!(f.roles[0].applies_to, 3);
        assert_eq!(f.roles[1].role, Role::JsonlEmit);
        assert_eq!(f.roles[1].applies_to, 4);
        let search = f.fns.iter().find(|x| x.name == "search").unwrap();
        assert_eq!(search.line, 3);
    }

    #[test]
    fn allow_parsing_good_and_bad() {
        let src = "\
// lint:allow(hash-order): keys re-sorted downstream
let a = 1;
let b = 2; // lint:allow(panic-hazard): bounded by construction
// lint:allow(env-io)
// lint:allow(wall-clock):
";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].rule, "hash-order");
        assert_eq!(f.allows[0].applies_to, 2);
        assert_eq!(f.allows[1].applies_to, 3);
        assert_eq!(f.bad_allows.len(), 2);
    }
}
