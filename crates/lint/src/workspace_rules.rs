//! Pass 2 of the workspace engine: rules that need cross-file facts.
//!
//! These run over the distilled [`FileModel`]s (never over tokens), so
//! they behave identically whether the models came from a cold analysis
//! or from the incremental cache:
//!
//! - `layering` — every declared `pwnd-*` dependency and every
//!   `pwnd_*` reference in non-test code must be an edge the
//!   `LAYERING.toml` manifest allows; declared deps must be used.
//! - `alloc-hot` — no fresh allocation in functions reachable from a
//!   `lint:hot-root` anchor over the cross-crate call graph.
//! - `schema-drift` — every JSONL record tag in the `lint:jsonl-tags`
//!   table is both written and read; no emit/consume site re-inlines a
//!   tag literal; no telemetry metric is read under a name nothing
//!   emits.
//! - `lock-discipline` — locks, atomics, and threads only in the
//!   modules the manifest's `[locks]` section approves.

use crate::findings::Finding;
use crate::manifest::LayeringManifest;
use crate::model::FileModel;
use crate::rules;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Workspace-level inputs for pass 2.
#[derive(Clone, Debug, Default)]
pub struct WorkspaceCtx {
    /// The parsed `LAYERING.toml`, when one was found and valid.
    pub manifest: Option<LayeringManifest>,
    /// Per-crate `Cargo.toml` dependency declarations.
    pub cargo: Vec<crate::manifest::CrateDeps>,
    /// Findings produced while loading the context itself (a missing or
    /// unparseable manifest), reported under `layering`.
    pub extra: Vec<Finding>,
}

/// Crate kinds pass 2 never applies to: free-floating test trees.
fn is_test_crate(krate: &str) -> bool {
    matches!(krate, "tests" | "examples" | "unknown" | "bench")
}

/// Run every workspace rule; the engine filters by enabled rule ids.
pub fn run(models: &[FileModel], ctx: &WorkspaceCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(ctx.extra.iter().cloned());
    check_layering(models, ctx, &mut out);
    check_alloc_hot(models, ctx, &mut out);
    check_schema_drift(models, &mut out);
    check_lock_discipline(models, ctx, &mut out);
    out
}

/// Enforce the manifest DAG over Cargo declarations and source imports.
fn check_layering(models: &[FileModel], ctx: &WorkspaceCtx, out: &mut Vec<Finding>) {
    let Some(manifest) = &ctx.manifest else {
        return;
    };
    let finding = |path: &str, line: u32, message: String| Finding {
        path: path.to_string(),
        line,
        rule: rules::LAYERING.to_string(),
        message,
    };
    // Cargo.toml side: declared edges must be allowed, and used.
    for cd in &ctx.cargo {
        let Some(allowed) = manifest.allowed_deps(&cd.krate) else {
            out.push(finding(
                &cd.manifest_path,
                1,
                format!(
                    "crate `{}` is not listed in LAYERING.toml [deps]; every crate's \
                     place in the architecture must be declared",
                    cd.krate
                ),
            ));
            continue;
        };
        for (dep, line) in &cd.deps {
            if !allowed.contains(dep) {
                out.push(finding(
                    &cd.manifest_path,
                    *line,
                    format!(
                        "`pwnd-{dep}` is not an allowed dependency of `{}` per \
                         LAYERING.toml — adding this edge requires editing the manifest",
                        cd.krate
                    ),
                ));
            }
            // Usage: any reference anywhere in the crate's files,
            // including test code (a test-only use still justifies the
            // Cargo edge). The root package's integration tests and
            // examples live in their own trees but link against the root
            // `[dependencies]`, so they count toward `bin`.
            let used = models.iter().any(|m| {
                (m.krate == cd.krate
                    || (cd.krate == "bin" && matches!(m.krate.as_str(), "tests" | "examples")))
                    && m.all_refs.contains(dep)
            });
            if !used {
                out.push(finding(
                    &cd.manifest_path,
                    *line,
                    format!(
                        "`pwnd-{dep}` is declared but `{}` never references \
                         `pwnd_{dep}` — remove the dead edge",
                        cd.krate
                    ),
                ));
            }
        }
    }
    // Source side: non-test references must be allowed edges.
    for m in models {
        if is_test_crate(&m.krate) {
            continue;
        }
        let Some(allowed) = manifest.allowed_deps(&m.krate) else {
            continue; // the missing-crate finding already covers this
        };
        for (short, line) in &m.imports {
            if *short != m.krate && !allowed.contains(short) {
                out.push(finding(
                    &m.path,
                    *line,
                    format!(
                        "`pwnd_{short}` is not an allowed dependency of `{}` per \
                         LAYERING.toml",
                        m.krate
                    ),
                ));
            }
        }
    }
}

/// Flag allocation in functions reachable from `lint:hot-root` anchors.
fn check_alloc_hot(models: &[FileModel], ctx: &WorkspaceCtx, out: &mut Vec<Finding>) {
    // Callable index: bare name → (model idx, fn idx), non-test only.
    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (mi, m) in models.iter().enumerate() {
        if is_test_crate(&m.krate) {
            continue;
        }
        for (fi, f) in m.fns.iter().enumerate() {
            if !f.is_test {
                by_name.entry(&f.name).or_default().push((mi, fi));
            }
        }
    }
    // A crate may call into itself and its allowed deps (manifest first,
    // declared Cargo deps as fallback when no manifest is loaded).
    let deps_of = |krate: &str| -> BTreeSet<String> {
        let mut s = BTreeSet::new();
        s.insert(krate.to_string());
        if let Some(allowed) = ctx.manifest.as_ref().and_then(|m| m.allowed_deps(krate)) {
            s.extend(allowed.iter().cloned());
        } else if let Some(cd) = ctx.cargo.iter().find(|c| c.krate == krate) {
            s.extend(cd.deps.iter().map(|(d, _)| d.clone()));
        }
        s
    };
    // BFS from every hot root, remembering which root reached each fn
    // and whether the path crossed an in-loop call edge. A fn reached
    // once-per-event stays cold until a loop appears on the path — only
    // *repeating* allocation is a finding: the site sits in a loop, or
    // the whole fn is invoked from inside one.
    let mut reached: BTreeMap<(usize, usize), (String, bool)> = BTreeMap::new();
    let mut queue = VecDeque::new();
    for (mi, m) in models.iter().enumerate() {
        for (fi, f) in m.fns.iter().enumerate() {
            if f.hot_root && !f.is_test && !is_test_crate(&m.krate) {
                reached.insert((mi, fi), (f.name.clone(), false));
                queue.push_back((mi, fi));
            }
        }
    }
    while let Some((mi, fi)) = queue.pop_front() {
        let (root, looped) = reached[&(mi, fi)].clone();
        let callers_deps = deps_of(&models[mi].krate);
        for (callee, edge_in_loop) in &models[mi].fns[fi].calls {
            let callee_looped = looped || *edge_in_loop;
            for &(tmi, tfi) in by_name.get(callee.as_str()).into_iter().flatten() {
                if !callers_deps.contains(&models[tmi].krate) {
                    continue;
                }
                match reached.entry((tmi, tfi)) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert((root.clone(), callee_looped));
                        queue.push_back((tmi, tfi));
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        // Upgrade cold→looped and re-propagate.
                        if callee_looped && !e.get().1 {
                            e.get_mut().1 = true;
                            queue.push_back((tmi, tfi));
                        }
                    }
                }
            }
        }
    }
    for (&(mi, fi), (root, looped)) in &reached {
        let m = &models[mi];
        let f = &m.fns[fi];
        for (line, what, in_loop) in &f.alloc_sites {
            if !(*looped || *in_loop) {
                continue;
            }
            let via = if &f.name == root {
                String::new()
            } else if *looped {
                format!(" (called in a loop reachable from hot root `{root}`)")
            } else {
                format!(" (reachable from hot root `{root}`)")
            };
            out.push(Finding {
                path: m.path.clone(),
                line: *line,
                rule: rules::ALLOC_HOT.to_string(),
                message: format!(
                    "`{what}` allocates every iteration in hot-path fn `{}`{via}; \
                     hoist the allocation out of the loop, reuse a buffer, or borrow",
                    f.name
                ),
            });
        }
    }
}

/// JSONL record tags and telemetry metric names: emit and consume sites
/// must agree.
fn check_schema_drift(models: &[FileModel], out: &mut Vec<Finding>) {
    let finding = |path: &str, line: u32, message: String| Finding {
        path: path.to_string(),
        line,
        rule: rules::SCHEMA_DRIFT.to_string(),
        message,
    };
    // --- record tags ---------------------------------------------------
    let defs: Vec<(&FileModel, &crate::model::TagDef)> = models
        .iter()
        .flat_map(|m| m.tag_defs.iter().map(move |d| (m, d)))
        .collect();
    let prod_fns = || {
        models.iter().flat_map(|m| {
            m.fns
                .iter()
                .filter(move |f| !f.is_test && !is_test_crate(&m.krate))
                .map(move |f| (m, f))
        })
    };
    if defs.is_empty() {
        // Emit/consume markers without any tag table are themselves
        // drift: the writer half of the contract is unverifiable.
        for (m, f) in prod_fns() {
            if f.jsonl_emit || f.jsonl_consume {
                out.push(finding(
                    &m.path,
                    f.line,
                    format!(
                        "`{}` is marked lint:jsonl-{} but no lint:jsonl-tags table \
                         exists in the file set",
                        f.name,
                        if f.jsonl_emit { "emit" } else { "consume" }
                    ),
                ));
            }
        }
    }
    for (dm, d) in &defs {
        let refs_tag = |f: &crate::model::FnModel| {
            f.tag_refs.contains(&d.name) || f.str_lits.iter().any(|(s, _)| s == &d.value)
        };
        let emitted = prod_fns().any(|(_, f)| f.jsonl_emit && refs_tag(f));
        let consumed = prod_fns().any(|(_, f)| f.jsonl_consume && refs_tag(f));
        if !emitted {
            out.push(finding(
                &dm.path,
                d.line,
                format!(
                    "record tag `{}` ({}) is never written by any lint:jsonl-emit \
                     site — dead schema, or an unmarked writer",
                    d.value, d.name
                ),
            ));
        }
        if !consumed {
            out.push(finding(
                &dm.path,
                d.line,
                format!(
                    "record tag `{}` ({}) is never read by any lint:jsonl-consume \
                     site — emit-only records silently drop on the floor",
                    d.value, d.name
                ),
            ));
        }
    }
    // Inline literals equal to a table value inside marked fns.
    for (m, f) in prod_fns() {
        if !(f.jsonl_emit || f.jsonl_consume) {
            continue;
        }
        for (s, line) in &f.str_lits {
            if let Some((_, d)) = defs.iter().find(|(_, d)| &d.value == s) {
                out.push(finding(
                    &m.path,
                    *line,
                    format!(
                        "inline record-tag literal \"{s}\" — use the `{}` const from \
                         the tag table so renames stay atomic",
                        d.name
                    ),
                ));
            }
        }
    }
    // --- telemetry metric names ----------------------------------------
    let emitted: BTreeSet<&str> = models
        .iter()
        .filter(|m| !is_test_crate(&m.krate))
        .flat_map(|m| m.metric_emits.iter().map(|(n, _)| n.as_str()))
        .collect();
    for m in models {
        if is_test_crate(&m.krate) {
            continue;
        }
        for (name, line) in &m.metric_consumes {
            if !emitted.contains(name.as_str()) {
                out.push(finding(
                    &m.path,
                    *line,
                    format!(
                        "metric `{name}` is read here but nothing emits it — stale \
                         name, or the emitter renamed it"
                    ),
                ));
            }
        }
    }
}

/// Locks/atomics/threads only in manifest-approved modules.
fn check_lock_discipline(models: &[FileModel], ctx: &WorkspaceCtx, out: &mut Vec<Finding>) {
    let Some(manifest) = &ctx.manifest else {
        return;
    };
    for m in models {
        if is_test_crate(&m.krate) || manifest.allows_lock(&m.krate, &m.path) {
            continue;
        }
        for (line, what) in &m.lock_sites {
            out.push(Finding {
                path: m.path.clone(),
                line: *line,
                rule: rules::LOCK_DISCIPLINE.to_string(),
                message: format!(
                    "`{what}` in a module not approved for concurrency; the \
                     simulation is single-threaded by contract — add the module to \
                     LAYERING.toml [locks] only with a determinism argument"
                ),
            });
        }
    }
}
