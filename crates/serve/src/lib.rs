#![warn(missing_docs)]

//! # pwnd-serve — the breach-intelligence query daemon
//!
//! Everything below the serving layer answers questions by *re-running*
//! something: a full experiment, a streaming report pass. This crate
//! turns a durable fleet store (`pwnd fleet --out-dir`, format
//! `pwnd-fleet-store/1`) into a long-lived query service:
//!
//! 1. [`store::VerifiedStore`] opens a store directory, verifies every
//!    shard file against the manifest's SHA-256 claims, and streams the
//!    JSONL records — the same trust boundary the offline readers use
//!    (they share this module).
//! 2. [`index::QueryIndex`] ingests those records once into an
//!    in-memory indexed form: interned-symbol string storage, a
//!    per-account timeline index, per-outlet and attacker-class
//!    aggregate tables, and HIBP-style k-anonymity credential-hash
//!    range buckets.
//! 3. [`http::Server`] serves the versioned `/v1` JSON API over plain
//!    HTTP/1.1 (std `TcpListener`, a bounded worker-thread pool,
//!    keep-alive, token-bucket rate limiting with `Retry-After`, and
//!    graceful shutdown). See `API.md` at the workspace root for the
//!    full endpoint reference.
//! 4. [`loadgen`] hammers a running server with concurrent closed-loop
//!    clients and reports throughput and latency percentiles — the
//!    `pwnd serve-bench` workload.
//!
//! ## Determinism contract
//!
//! The simulation crates are held to byte-identical replay by
//! `pwnd-lint`; the serving layer is deliberately outside that regime
//! (it may read the wall clock and the network — a daemon cannot not).
//! The contract it keeps instead: **every response body is a pure
//! function of (store bytes, request path)**. Ingest order is shard
//! order, symbol ids are insertion-ordered, every observable map is a
//! `BTreeMap`, and no response contains a timestamp, duration, or
//! anything else host-dependent — so restarting the daemon over the
//! same store reproduces every response byte for byte
//! (`tests/serve_queries.rs` proves it).

pub mod http;
pub mod index;
pub mod loadgen;
pub mod store;

pub use http::{RateLimit, Route, ServeOptions, Server, ROUTES};
pub use index::{QueryIndex, StoreMeta};
pub use loadgen::{LoadgenOptions, LoadgenReport};
pub use store::{
    shard_file_name, Manifest, ShardEntry, ShardState, VerifiedStore, MANIFEST_FILE,
    MANIFEST_FORMAT,
};
