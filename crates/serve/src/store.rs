//! The read side of the `pwnd-fleet-store/1` on-disk format.
//!
//! The fleet *writer* (crash-safe shard persistence, resume, recovery)
//! lives in the root crate's `store` module; this module owns the parts
//! every reader needs — the manifest model, the shard-file naming rule,
//! hash verification — and [`VerifiedStore`], the one verified entry
//! point all consumers go through: the offline merge and report paths
//! of `pwnd report`, and the [`QueryIndex`](crate::index::QueryIndex)
//! ingest of the serve daemon. Centralizing the reader here means a
//! mutated shard file or manifest entry can never be silently served:
//! every byte is re-hashed against the manifest's SHA-256 claims before
//! a single record is parsed.

use pwnd_core::fleet::ShardSpec;
use pwnd_core::hash::{hex, Sha256};
use pwnd_telemetry::json::Json;
use std::fs::{self, File};
use std::io::{self, BufRead, BufReader, Read};
use std::path::{Path, PathBuf};

/// Manifest format tag; bump on any incompatible layout change so old
/// stores are rejected loudly instead of misread.
pub const MANIFEST_FORMAT: &str = "pwnd-fleet-store/1";

/// The manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// The on-disk file name of shard `index`.
pub fn shard_file_name(index: usize) -> String {
    format!("shard-{index:05}.jsonl")
}

/// One verified-shard claim in the manifest: the shard's identity plus
/// the exact bytes its file must hash to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardEntry {
    /// The shard's identity (seed, size, account range, config hash).
    pub spec: ShardSpec,
    /// File name inside the store directory.
    pub file: String,
    /// SHA-256 of the shard file's bytes.
    pub sha256: String,
    /// JSONL records in the file.
    pub records: u64,
}

impl ShardEntry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("index".to_string(), Json::U(self.spec.index as u64)),
            ("seed".to_string(), Json::U(self.spec.seed)),
            (
                "accounts".to_string(),
                Json::U(u64::from(self.spec.accounts)),
            ),
            (
                "account_base".to_string(),
                Json::U(u64::from(self.spec.account_base)),
            ),
            (
                "config_sha256".to_string(),
                Json::Str(self.spec.config_fingerprint.clone()),
            ),
            (
                "fault_profile".to_string(),
                Json::Str(self.spec.fault_profile.clone()),
            ),
            ("file".to_string(), Json::Str(self.file.clone())),
            ("sha256".to_string(), Json::Str(self.sha256.clone())),
            ("records".to_string(), Json::U(self.records)),
        ])
    }

    fn from_json(v: &Json) -> Option<ShardEntry> {
        let str_of = |key: &str| v.get(key).and_then(Json::as_str).map(String::from);
        Some(ShardEntry {
            spec: ShardSpec {
                index: usize::try_from(v.get("index")?.as_u64()?).ok()?,
                seed: v.get("seed")?.as_u64()?,
                accounts: u32::try_from(v.get("accounts")?.as_u64()?).ok()?,
                account_base: u32::try_from(v.get("account_base")?.as_u64()?).ok()?,
                config_fingerprint: str_of("config_sha256")?,
                fault_profile: str_of("fault_profile")?,
            },
            file: str_of("file")?,
            sha256: str_of("sha256")?,
            records: v.get("records")?.as_u64()?,
        })
    }
}

/// The versioned store manifest: which fleet this store belongs to and
/// which shards are durably on disk.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Manifest {
    /// The fleet's master seed.
    pub seed: u64,
    /// `FleetConfig::template_fingerprint` of the fleet's config shape
    /// — "same seed, different experiment" is refused up front.
    pub template_sha256: String,
    /// Verified shard claims, sorted by shard index, at most one per
    /// index.
    pub shards: Vec<ShardEntry>,
}

impl Manifest {
    /// Serialize as pretty JSON (the manifest is small and hand-read
    /// during debugging; shard files carry the bulk).
    pub fn to_json(&self) -> String {
        let obj = Json::Obj(vec![
            ("format".to_string(), Json::Str(MANIFEST_FORMAT.to_string())),
            ("seed".to_string(), Json::U(self.seed)),
            (
                "template_config_sha256".to_string(),
                Json::Str(self.template_sha256.clone()),
            ),
            (
                "shards".to_string(),
                Json::Arr(self.shards.iter().map(ShardEntry::to_json).collect()),
            ),
        ]);
        let mut text = obj.pretty();
        text.push('\n');
        text
    }

    /// Parse a manifest; `None` for anything malformed or of a foreign
    /// format (callers treat that as corruption, not an error to
    /// propagate — the store quarantines and rebuilds).
    pub fn parse(text: &str) -> Option<Manifest> {
        let v = Json::parse(text).ok()?;
        if v.get("format")?.as_str()? != MANIFEST_FORMAT {
            return None;
        }
        let mut shards = v
            .get("shards")?
            .as_array()?
            .iter()
            .map(ShardEntry::from_json)
            .collect::<Option<Vec<_>>>()?;
        shards.sort_by_key(|e| e.spec.index);
        if shards
            .windows(2)
            .any(|w| w[0].spec.index == w[1].spec.index)
        {
            return None;
        }
        Some(Manifest {
            seed: v.get("seed")?.as_u64()?,
            template_sha256: v.get("template_config_sha256")?.as_str()?.to_string(),
            shards,
        })
    }

    /// The shard claim at `index`, if any.
    pub fn entry(&self, index: usize) -> Option<&ShardEntry> {
        self.shards.iter().find(|e| e.spec.index == index)
    }

    /// Insert or replace the claim for `entry`'s index, keeping the
    /// list sorted.
    pub fn upsert(&mut self, entry: ShardEntry) {
        match self
            .shards
            .binary_search_by_key(&entry.spec.index, |e| e.spec.index)
        {
            Ok(pos) => self.shards[pos] = entry,
            Err(pos) => self.shards.insert(pos, entry),
        }
    }

    /// Total JSONL records claimed across every shard.
    pub fn records(&self) -> u64 {
        self.shards.iter().map(|e| e.records).sum()
    }
}

/// How a claimed shard file checked out on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardState {
    /// File present, hash matches the claim.
    Verified,
    /// File absent (crash before it landed, or deleted).
    Missing,
    /// File present but its bytes don't hash to the claim.
    Corrupt,
}

/// Streaming SHA-256 of a file; `Ok(None)` when it does not exist.
pub fn file_sha256(path: &Path) -> io::Result<Option<String>> {
    let mut f = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut hasher = Sha256::new();
    let mut buf = [0u8; 65536];
    loop {
        let n = f.read(&mut buf)?;
        if n == 0 {
            break;
        }
        hasher.update(&buf[..n]);
    }
    Ok(Some(hex(&hasher.finalize())))
}

/// Verify one shard claim against the file it names inside `dir`.
pub fn shard_state(dir: &Path, entry: &ShardEntry) -> io::Result<ShardState> {
    Ok(match file_sha256(&dir.join(&entry.file))? {
        None => ShardState::Missing,
        Some(actual) if actual == entry.sha256 => ShardState::Verified,
        Some(_) => ShardState::Corrupt,
    })
}

/// A fleet store opened for reading: the manifest parsed and every
/// shard file re-hashed against its claim. Construction fails — with an
/// actionable message naming the repair command — on a missing or
/// corrupt manifest, a gap in the shard range, or any hash mismatch, so
/// no reader can consume tampered or truncated data.
#[derive(Debug)]
pub struct VerifiedStore {
    dir: PathBuf,
    manifest: Manifest,
}

impl VerifiedStore {
    /// Open and fully verify the store at `dir`: the manifest must
    /// exist, parse, and claim a contiguous shard range `0..n` whose
    /// files all hash clean.
    pub fn open(dir: &Path) -> io::Result<VerifiedStore> {
        let text = fs::read_to_string(dir.join(MANIFEST_FILE)).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!(
                    "{}: not a fleet store (no readable {MANIFEST_FILE}): {e}",
                    dir.display()
                ),
            )
        })?;
        let manifest = Manifest::parse(&text).ok_or_else(|| {
            io::Error::other(format!(
                "{}: {MANIFEST_FILE} is corrupt or of an unknown format; \
                 re-run `pwnd fleet --out-dir` to rebuild the store",
                dir.display()
            ))
        })?;
        for (i, e) in manifest.shards.iter().enumerate() {
            if e.spec.index != i {
                return Err(io::Error::other(format!(
                    "{}: store is incomplete (no verified shard {i}); \
                     re-run `pwnd fleet --out-dir` to fill it",
                    dir.display()
                )));
            }
            match shard_state(dir, e)? {
                ShardState::Verified => {}
                ShardState::Missing => {
                    return Err(io::Error::other(format!(
                        "{}: shard file {} is missing; re-run `pwnd fleet --out-dir`",
                        dir.display(),
                        e.file
                    )))
                }
                ShardState::Corrupt => {
                    return Err(io::Error::other(format!(
                        "{}: shard file {} does not match its manifest hash \
                         (corrupt or tampered); re-run `pwnd fleet --out-dir` to recover",
                        dir.display(),
                        e.file
                    )))
                }
            }
        }
        Ok(VerifiedStore {
            dir: dir.to_path_buf(),
            manifest,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The verified manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Stream every line of every shard file in shard order, calling
    /// `f(shard entry, 1-based line number, line)`. Peak memory is one
    /// line; callers filter by record tag themselves.
    pub fn for_each_line(
        &self,
        mut f: impl FnMut(&ShardEntry, usize, &str) -> io::Result<()>,
    ) -> io::Result<()> {
        for e in &self.manifest.shards {
            let reader = BufReader::new(File::open(self.dir.join(&e.file))?);
            for (lineno, line) in reader.lines().enumerate() {
                f(e, lineno + 1, &line?)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> Manifest {
        Manifest {
            seed: 11,
            template_sha256: "t".repeat(64),
            shards: vec![ShardEntry {
                spec: ShardSpec {
                    index: 0,
                    seed: 11,
                    accounts: 100,
                    account_base: 0,
                    config_fingerprint: "c".repeat(64),
                    fault_profile: "none".to_string(),
                },
                file: shard_file_name(0),
                sha256: "a".repeat(64),
                records: 42,
            }],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample_manifest();
        let text = m.to_json();
        assert!(text.contains(MANIFEST_FORMAT));
        assert_eq!(Manifest::parse(&text), Some(m));
    }

    #[test]
    fn foreign_or_malformed_manifests_rejected() {
        assert_eq!(Manifest::parse("not json"), None);
        assert_eq!(Manifest::parse("{}"), None);
        let other = sample_manifest()
            .to_json()
            .replace(MANIFEST_FORMAT, "pwnd-fleet-store/999");
        assert_eq!(Manifest::parse(&other), None);
        // Duplicate shard indices are structural corruption.
        let mut dup = sample_manifest();
        dup.shards.push(dup.shards[0].clone());
        assert_eq!(Manifest::parse(&dup.to_json()), None);
    }

    #[test]
    fn upsert_replaces_by_index_and_keeps_order() {
        let mut m = sample_manifest();
        let mut later = m.shards[0].clone();
        later.spec.index = 2;
        later.file = shard_file_name(2);
        m.upsert(later.clone());
        let mut replacement = m.shards[0].clone();
        replacement.sha256 = "b".repeat(64);
        m.upsert(replacement.clone());
        assert_eq!(m.shards.len(), 2);
        assert_eq!(m.shards[0], replacement);
        assert_eq!(m.shards[1], later);
        assert_eq!(m.records(), 84);
    }

    #[test]
    fn shard_file_names_sort_with_their_indices() {
        assert_eq!(shard_file_name(0), "shard-00000.jsonl");
        assert_eq!(shard_file_name(12345), "shard-12345.jsonl");
        assert!(shard_file_name(9) < shard_file_name(10));
    }

    #[test]
    fn open_refuses_a_directory_with_no_manifest() {
        let dir = std::env::temp_dir().join(format!("pwnd-serve-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let err = VerifiedStore::open(&dir).unwrap_err();
        assert!(err.to_string().contains("not a fleet store"), "{err}");
    }
}
